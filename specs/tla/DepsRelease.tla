---- MODULE DepsRelease ----
(***************************************************************************)
(* The dependency tracker's CLOSED-swap release protocol, as implemented   *)
(* by crates/runtime/src/deps.rs. Tasks register in a total order (the     *)
(* map mutex) and each task depends on every earlier task — the densest    *)
(* declared graph, which maximises the edge-CAS-vs-retire races without    *)
(* changing their structure. Registration is multi-step per edge; retire   *)
(* is lock-free and runs concurrently with any registration.               *)
(*                                                                         *)
(* Line mapping (deps.rs):                                                 *)
(*   RegBegin       -> alloc_block: pending = 1, the registration guard    *)
(*   EdgeCount      -> edge(): succ.pending.fetch_add(1, AcqRel)           *)
(*   EdgePush       -> edge(): the CAS push onto pred.succ, or the CLOSED  *)
(*                     take-back [failpoint site `dep_edge_cas`]           *)
(*   RegEnd         -> register_inner: the guard's fetch_sub outside the   *)
(*                     lock; hitting zero queues the task (ready path)     *)
(*   RetireClose    -> retire(): succ.swap(CLOSED, AcqRel)                 *)
(*                     [failpoint site `dep_retire`]                       *)
(*   RetireRelease  -> retire(): the drain walk's pending.fetch_sub;       *)
(*                     hitting zero queues the successor                   *)
(*                                                                         *)
(* Invariants:                                                             *)
(*   W1NoLostTasks       -- pending is an exact ledger: every unit of a    *)
(*                          task's pending count is backed by a live       *)
(*                          obligation (guard, in-flight edge, or an edge  *)
(*                          some retire will drain), so every Deferred     *)
(*                          task is eventually released.                   *)
(*   W2NoDoubleExecution -- a task is queued for execution at most once.   *)
(*   W6BoundedPending    -- pending never goes negative and never exceeds  *)
(*                          the declared predecessor count plus the guard. *)
(***************************************************************************)
EXTENDS Naturals, FiniteSets

CONSTANT MaxTasks

Tasks == 1..MaxTasks

(* Task t's declared predecessors: every earlier registrant. *)
Preds(t) == 1..(t - 1)

VARIABLES
  phase,    \* task -> "new" | "reg" | "registered"
  estate,   \* [t][p] -> "none" | "counted" | "pushed" | "skipped"
  pending,  \* task -> the release counter (guard + unretired predecessors)
  succ,     \* task -> set of successors on its (open) successor list
  sstate,   \* task -> "open" | "closed": the CLOSED-swap terminal state
  drain,    \* task -> successors swapped out by retire, not yet decremented
  queued,   \* task -> times the task was handed to a deque (must be <= 1)
  executed  \* set of tasks whose bodies ran

vars == <<phase, estate, pending, succ, sstate, drain, queued, executed>>

Init ==
  /\ phase = [t \in Tasks |-> "new"]
  /\ estate = [t \in Tasks |-> [p \in Tasks |-> "none"]]
  /\ pending = [t \in Tasks |-> 0]
  /\ succ = [t \in Tasks |-> {}]
  /\ sstate = [t \in Tasks |-> "open"]
  /\ drain = [t \in Tasks |-> {}]
  /\ queued = [t \in Tasks |-> 0]
  /\ executed = {}

(* Registration order is total (the map mutex): task t may begin only
   after every earlier task finished registering. pending starts at 1 —
   the registration guard — so no concurrent retire can release t early. *)
RegBegin(t) ==
  /\ phase[t] = "new"
  /\ \A p \in Preds(t) : phase[p] = "registered"
  /\ phase' = [phase EXCEPT ![t] = "reg"]
  /\ pending' = [pending EXCEPT ![t] = 1]
  /\ UNCHANGED <<estate, succ, sstate, drain, queued, executed>>

(* Count the edge in the successor's pending FIRST... *)
EdgeCount(t, p) ==
  /\ phase[t] = "reg"
  /\ estate[t][p] = "none"
  /\ pending' = [pending EXCEPT ![t] = @ + 1]
  /\ estate' = [estate EXCEPT ![t][p] = "counted"]
  /\ UNCHANGED <<phase, succ, sstate, drain, queued, executed>>

(* ...then push it onto the predecessor's successor list — unless the
   predecessor retired meanwhile (CLOSED): then take the count back;
   nothing to wait for. This pair is the race the protocol is built
   around. *)
EdgePush(t, p) ==
  /\ phase[t] = "reg"
  /\ estate[t][p] = "counted"
  /\ IF sstate[p] = "closed"
       THEN /\ pending' = [pending EXCEPT ![t] = @ - 1]
            /\ succ' = succ
            /\ estate' = [estate EXCEPT ![t][p] = "skipped"]
       ELSE /\ succ' = [succ EXCEPT ![p] = @ \cup {t}]
            /\ pending' = pending
            /\ estate' = [estate EXCEPT ![t][p] = "pushed"]
  /\ UNCHANGED <<phase, sstate, drain, queued, executed>>

(* Drop the registration guard (outside the lock). Hitting zero means no
   unretired predecessor: the spawner queues the task itself. *)
RegEnd(t) ==
  /\ phase[t] = "reg"
  /\ \A p \in Preds(t) : estate[t][p] \in {"pushed", "skipped"}
  /\ phase' = [phase EXCEPT ![t] = "registered"]
  /\ pending' = [pending EXCEPT ![t] = @ - 1]
  /\ queued' = IF pending[t] = 1
                 THEN [queued EXCEPT ![t] = @ + 1]
                 ELSE queued
  /\ UNCHANGED <<estate, succ, sstate, drain, executed>>

(* A queued task's body runs (exactly the queue hand-off makes it
   runnable; W2 checks the hand-off happens at most once). *)
Exec(t) ==
  /\ queued[t] >= 1
  /\ t \notin executed
  /\ executed' = executed \cup {t}
  /\ UNCHANGED <<phase, estate, pending, succ, sstate, drain, queued>>

(* Retire, phase 1: the terminal CLOSED swap. Later edge attempts see
   CLOSED and skip; the swapped-out successor set is drained exclusively
   by this retiring worker. *)
RetireClose(t) ==
  /\ t \in executed
  /\ sstate[t] = "open"
  /\ sstate' = [sstate EXCEPT ![t] = "closed"]
  /\ drain' = [drain EXCEPT ![t] = succ[t]]
  /\ succ' = [succ EXCEPT ![t] = {}]
  /\ UNCHANGED <<phase, estate, pending, queued, executed>>

(* Retire, phase 2: decrement one drained successor's pending; the
   decrement that hits zero queues the successor on the retiring worker's
   deque. *)
RetireRelease(t) ==
  /\ drain[t] # {}
  /\ \E s \in drain[t] :
       /\ drain' = [drain EXCEPT ![t] = @ \ {s}]
       /\ pending' = [pending EXCEPT ![s] = @ - 1]
       /\ queued' = IF pending[s] = 1
                      THEN [queued EXCEPT ![s] = @ + 1]
                      ELSE queued
  /\ UNCHANGED <<phase, estate, succ, sstate, executed>>

Next ==
  \E t \in Tasks :
    \/ RegBegin(t)
    \/ \E p \in Preds(t) : EdgeCount(t, p) \/ EdgePush(t, p)
    \/ RegEnd(t)
    \/ Exec(t)
    \/ RetireClose(t)
    \/ RetireRelease(t)

Spec == Init /\ [][Next]_vars

----
(* The guard unit, while registration is in flight. *)
Guard(t) == IF phase[t] = "reg" THEN 1 ELSE 0

(* Edges of t still counted but not yet resolved by a push/skip. *)
InFlight(t) == Cardinality({p \in Preds(t) : estate[t][p] = "counted"})

(* Edges of t sitting on some predecessor's open list or drain set —
   obligations a retire WILL decrement. *)
Owed(t) == Cardinality({p \in Preds(t) : t \in succ[p] \/ t \in drain[p]})

(* W1: pending is an exact ledger of live obligations. Nothing leaks: a
   Deferred task's counter is fully backed by retires still to come, so
   it cannot be stranded. *)
W1NoLostTasks ==
  \A t \in Tasks : pending[t] = Guard(t) + InFlight(t) + Owed(t)

(* W2: the ready hand-off fires at most once per task. *)
W2NoDoubleExecution ==
  \A t \in Tasks : queued[t] <= 1

(* W6: pending is bounded by the declared clause count plus the guard and
   never negative (pending is in Nat by construction; TLC would flag a
   negative as an out-of-domain subtraction). *)
W6BoundedPending ==
  \A t \in Tasks : pending[t] <= Cardinality(Preds(t)) + 1
====
