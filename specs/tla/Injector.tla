---- MODULE Injector ----
(***************************************************************************)
(* The sharded injector's swap-drain protocol, as implemented by           *)
(* crates/runtime/src/injector.rs. One shard is modelled (shards are      *)
(* independent by construction: a push targets exactly one shard and a    *)
(* pop owns whatever chain it swaps out).                                  *)
(*                                                                         *)
(* Line mapping (injector.rs):                                             *)
(*   PushBump      -> shard.len.fetch_add(1, Release)      [push]          *)
(*   PushLink      -> the publish CAS on shard.head         [push,         *)
(*                    failpoint site `injector_push_cas`]                  *)
(*   PopSwap       -> shard.head.swap(null, Acquire)        [pop,          *)
(*                    failpoint site `injector_pop_swap`]                  *)
(*   PopRepublish  -> tail-sever walk + republish CAS       [pop,          *)
(*                    failpoint site `injector_pop_republish`]             *)
(*   PopDone       -> shard.len.fetch_sub(1, Release) + return oldest      *)
(*                                                                         *)
(* Invariants (the axebergos WorkStealing.tla naming):                     *)
(*   W1NoLostTasks      -- every published record is in the stack, in     *)
(*                         some popper's swapped-out chain, severed, or   *)
(*                         handed over: nothing vanishes.                  *)
(*   W2NoDoubleExecution - no record is ever reachable twice.              *)
(*   W6BoundedMirror    -- the length mirror is an exact ledger of        *)
(*                         bumped-but-unpopped records; in particular it  *)
(*                         can over-count the visible stack but never     *)
(*                         under-count it (a probe that sees 0 may trust  *)
(*                         it).                                            *)
(***************************************************************************)
EXTENDS Naturals, Sequences, FiniteSets

CONSTANTS NumWorkers, MaxTasks

Tasks == 1..MaxTasks
Workers == 1..NumWorkers
NoTask == 0

VARIABLES
  stack,   \* the shard's Treiber stack, newest first (Shard.head chain)
  len,     \* the shard's length mirror (Shard.len)
  pstate,  \* task -> "unpushed" | "bumped" | "linked": the two-phase push
  held,    \* worker -> the swapped-out chain it owns exclusively
  taken,   \* worker -> the severed oldest root, before the len decrement
  popped   \* records handed to the worker main loop

vars == <<stack, len, pstate, held, taken, popped>>

Init ==
  /\ stack = <<>>
  /\ len = 0
  /\ pstate = [t \in Tasks |-> "unpushed"]
  /\ held = [w \in Workers |-> <<>>]
  /\ taken = [w \in Workers |-> NoTask]
  /\ popped = {}

(* Length first: over-counting is benign, a probe seeing 0 while a record
   is published would be a missed wake-up. *)
PushBump(t) ==
  /\ pstate[t] = "unpushed"
  /\ len' = len + 1
  /\ pstate' = [pstate EXCEPT ![t] = "bumped"]
  /\ UNCHANGED <<stack, held, taken, popped>>

(* The publish CAS: the record becomes reachable to every popper. *)
PushLink(t) ==
  /\ pstate[t] = "bumped"
  /\ stack' = <<t>> \o stack
  /\ pstate' = [pstate EXCEPT ![t] = "linked"]
  /\ UNCHANGED <<len, held, taken, popped>>

(* The whole-stack swap: ABA-free because pop never CASes head->next on
   shared memory — it exchanges the head for null and owns the chain. A
   swap that finds the stack already empty (raced popper, or a pusher that
   bumped but has not linked) is a stutter here. *)
PopSwap(w) ==
  /\ held[w] = <<>>
  /\ taken[w] = NoTask
  /\ len > 0
  /\ stack # <<>>
  /\ held' = [held EXCEPT ![w] = stack]
  /\ stack' = <<>>
  /\ UNCHANGED <<len, pstate, taken, popped>>

Front(s) == SubSeq(s, 1, Len(s) - 1)
Last(s) == s[Len(s)]

(* Sever the chain's tail — the shard's oldest root, preserving FIFO — and
   re-publish the remainder on top of whatever was pushed meanwhile (a
   plain push-side CAS: the held chain is unreachable to anyone else). *)
PopRepublish(w) ==
  /\ held[w] # <<>>
  /\ taken' = [taken EXCEPT ![w] = Last(held[w])]
  /\ stack' = Front(held[w]) \o stack
  /\ held' = [held EXCEPT ![w] = <<>>]
  /\ UNCHANGED <<len, pstate, popped>>

(* Decrement the mirror by the exact pop count (one) and hand the root to
   the worker main loop. *)
PopDone(w) ==
  /\ taken[w] # NoTask
  /\ popped' = popped \cup {taken[w]}
  /\ taken' = [taken EXCEPT ![w] = NoTask]
  /\ len' = len - 1
  /\ UNCHANGED <<stack, pstate, held>>

Next ==
  \/ \E t \in Tasks : PushBump(t) \/ PushLink(t)
  \/ \E w \in Workers : PopSwap(w) \/ PopRepublish(w) \/ PopDone(w)

Spec == Init /\ [][Next]_vars

----
(* How many times task t is reachable anywhere in the protocol. *)
OccSeq(t, s) == Cardinality({i \in 1..Len(s) : s[i] = t})

Count(t) ==
  OccSeq(t, stack)
  + Cardinality({<<w, i>> \in Workers \X (1..MaxTasks) :
                   i <= Len(held[w]) /\ held[w][i] = t})
  + Cardinality({w \in Workers : taken[w] = t})
  + (IF t \in popped THEN 1 ELSE 0)

(* W1: a published record is never lost. *)
W1NoLostTasks ==
  \A t \in Tasks : pstate[t] = "linked" => Count(t) = 1

(* W2: a record is never reachable (hence never executable) twice. *)
W2NoDoubleExecution ==
  \A t \in Tasks : Count(t) <= 1

(* W6: the mirror is an exact ledger — every bumped-but-unpopped record is
   counted exactly once, so len >= Len(stack) always (never under-counts)
   and len <= MaxTasks (bounded). *)
Unpopped ==
  Len(stack)
  + Cardinality({<<w, i>> \in Workers \X (1..MaxTasks) : i <= Len(held[w])})
  + Cardinality({w \in Workers : taken[w] # NoTask})
  + Cardinality({t \in Tasks : pstate[t] = "bumped"})

W6BoundedMirror ==
  /\ len = Unpopped
  /\ len >= Len(stack)
  /\ len <= MaxTasks
====
