//! The `bots` command-line driver: run any application × version × input
//! class, like the original suite's per-app binaries.
//!
//! ```text
//! bots list
//! bots run <app> [--class C] [--version V] [--threads N] [--reps R]
//!          [--check] [--serial] [--stats]
//! bots check [--class C] [--threads N]
//! bots versions <app>
//! ```
//!
//! `check` verifies every application × version with their regions
//! overlapped on one worker team (each combination submits from its own
//! client thread), so a full-suite verification costs roughly the longest
//! single entry instead of the sum.

use std::process::ExitCode;

use bots::runtime::RegionBudget;
use bots::suite::runner;
use bots::{find_benchmark, registry, InputClass, Runtime, RuntimeConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bots list\n  bots versions <app>\n  bots run <app> [flags]\n  \
         bots check [--class C] [--threads N] [--budget B] [--deps]\n             \
         [--cancel-after MS] [--deadline MS] [--replay] [--adversarial]\n\nflags:\n  \
         --class test|small|medium|large   input class (default medium)\n  \
         --version LABEL                   version label (default: best; see `bots versions`)\n  \
         --threads N                       team size (default: machine)\n  \
         --budget B                        per-region cut-off budget: each region may queue\n  \
                                    at most B of its own tasks before spawning serially\n  \
         --deps                            check: verify only the dependency-driven (deps-*)\n  \
                                    versions — the data-flow integrity job\n  \
         --replay                          check: add a record-and-replay row — SparseLU deps\n  \
                                    factorised repeatedly under one shape token, every\n  \
                                    round bit-identical to the serial reference\n  \
         --adversarial                     check: add the adversarial scenario rows (spawn\n  \
                                    storm, deep recursion, barrier chains, if(0) floods,\n  \
                                    fine-grained loops) overlapped with the kernel rows\n  \
         --cancel-after MS                 check: add a spawn-storm row cancelled after MS ms;\n  \
                                    the row passes when the storm drains to quiescence\n  \
         --deadline MS                     check: add a spawn-storm row submitted with an MS-ms\n  \
                                    deadline, cancelled by the workers' coarse clock\n  \
         --reps R                          repetitions, median reported (default 1)\n  \
         --serial                          run the sequential reference instead\n  \
         --check                           verify the output (default on; --no-check disables)\n  \
         --stats                           print runtime counters"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<10}  {:<22}  input classes", "app", "domain");
            for b in registry() {
                let m = b.meta();
                let classes: Vec<String> = InputClass::ALL
                    .iter()
                    .map(|&c| format!("{c}: {}", b.input_desc(c)))
                    .collect();
                println!("{:<10}  {:<22}  {}", m.name, m.domain, classes.join(" | "));
            }
            ExitCode::SUCCESS
        }
        Some("versions") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(b) = find_benchmark(name) else {
                eprintln!("unknown app '{name}' (try `bots list`)");
                return ExitCode::from(2);
            };
            let best = b.best_version();
            for v in b.versions() {
                let marker = if v == best {
                    "  (best — Figure 3)"
                } else {
                    ""
                };
                println!("{}{}", v.label(), marker);
            }
            ExitCode::SUCCESS
        }
        Some("run") => run_command(&args[1..]),
        Some("check") => check_command(&args[1..]),
        _ => usage(),
    }
}

/// `bots check`: overlapped whole-suite verification on one team.
fn check_command(args: &[String]) -> ExitCode {
    let mut class = InputClass::Test;
    let mut threads = bots::runtime::default_threads();
    let mut budget = RegionBudget::Inherit;
    let mut deps_only = false;
    let mut replay = false;
    let mut adversarial = false;
    let mut cancel_after: Option<u64> = None;
    let mut deadline: Option<u64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--class" | "-c" => match value().parse() {
                Ok(c) => class = c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--threads" | "-t" => match value().parse::<usize>() {
                Ok(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--budget" | "-b" => match value().parse::<usize>() {
                Ok(n) if n >= 1 => budget = RegionBudget::MaxQueued(n),
                _ => {
                    eprintln!("--budget wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--deps" => deps_only = true,
            "--replay" => replay = true,
            "--adversarial" => adversarial = true,
            "--cancel-after" => match value().parse::<u64>() {
                Ok(ms) if ms >= 1 => cancel_after = Some(ms),
                _ => {
                    eprintln!("--cancel-after wants a positive number of milliseconds");
                    return ExitCode::from(2);
                }
            },
            "--deadline" => match value().parse::<u64>() {
                Ok(ms) if ms >= 1 => deadline = Some(ms),
                _ => {
                    eprintln!("--deadline wants a positive number of milliseconds");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }

    let benches = registry();
    // The budget applies per region: every kernel's own regions get it,
    // exercising the serialise-yourself path against real task graphs
    // while the overlapped siblings keep their own budgets.
    let rt = Runtime::new(RuntimeConfig::new(threads).with_region_budget(budget));
    let t0 = std::time::Instant::now();
    // --deps narrows the sweep to the dependency-driven versions: the
    // data-flow integrity job, cross-verifying every deps-* kernel against
    // its serial reference while the rows overlap on one team.
    //
    // The storm rows run *concurrently* with the kernel rows on the same
    // team: cancelling an unbounded storm must drain cleanly while real
    // regions are in flight, and must not perturb a single checksum.
    let (outcomes, storm_rows, replay_row, adversarial_rows) = std::thread::scope(|sc| {
        let rt = &rt;
        let storms = sc.spawn(move || {
            let mut rows: Vec<(String, runner::StormOutcome)> = Vec::new();
            if let Some(ms) = cancel_after {
                let o = runner::cancel_storm(rt, std::time::Duration::from_millis(ms));
                rows.push((format!("cancel-after-{ms}ms"), o));
            }
            if let Some(ms) = deadline {
                let o = runner::deadline_storm(rt, std::time::Duration::from_millis(ms));
                rows.push((format!("deadline-{ms}ms"), o));
            }
            rows
        });
        let replays = sc.spawn(move || replay.then(|| verify_replay(rt, class)));
        // The adversarial rows deliberately share the team with the kernel
        // rows: a spawn storm or a grain-1 loop must not perturb a single
        // checksum to pass.
        let adversarials =
            sc.spawn(move || adversarial.then(|| bots::suite::adversarial::run_all(rt)));
        let outcomes = runner::verify_overlapping_where(&benches, rt, class, |v| {
            !deps_only || v.generator == bots::suite::Generator::Deps
        });
        (
            outcomes,
            storms.join().expect("storm rows panicked"),
            replays.join().expect("replay row panicked"),
            adversarials.join().expect("adversarial rows panicked"),
        )
    });
    let elapsed = t0.elapsed();
    if deps_only && outcomes.is_empty() {
        eprintln!("no dependency-driven versions registered");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut slowest: Option<&runner::OverlapOutcome> = None;
    for o in &outcomes {
        match &o.result {
            Ok(()) => println!("ok      {:<10} {}", o.name, o.version.label()),
            Err(e) => {
                failures += 1;
                println!("FAILED  {:<10} {} — {e}", o.name, o.version.label());
            }
        }
        if slowest.is_none_or(|s| o.elapsed > s.elapsed) {
            slowest = Some(o);
        }
    }
    for (label, o) in &storm_rows {
        match o.verified() {
            Ok(()) => println!(
                "ok      {:<10} {label} — {} tasks skipped, quiescent {:.3} ms after the signal",
                "storm",
                o.skipped_tasks,
                o.cancel_latency.as_secs_f64() * 1e3
            ),
            Err(e) => {
                failures += 1;
                println!("FAILED  {:<10} {label} — {e}", "storm");
            }
        }
    }
    for row in adversarial_rows.iter().flatten() {
        match &row.result {
            Ok(()) => println!(
                "ok      {:<10} {} — {:.3} s",
                "adverse",
                row.name,
                row.elapsed.as_secs_f64()
            ),
            Err(e) => {
                failures += 1;
                println!("FAILED  {:<10} {} — {e}", "adverse", row.name);
            }
        }
    }
    if let Some(r) = &replay_row {
        match r {
            Ok((recorded, hit, diverged)) => println!(
                "ok      {:<10} {REPLAY_ROUNDS} rounds bit-identical to serial — \
                 recorded {recorded}, replayed {hit}, diverged {diverged}",
                "replay"
            ),
            Err(e) => {
                failures += 1;
                println!("FAILED  {:<10} — {e}", "replay");
            }
        }
    }
    let budget_note = match budget {
        RegionBudget::Inherit => String::new(),
        RegionBudget::MaxQueued(n) => format!(", region budget {n}"),
        RegionBudget::Adaptive { low, high } => format!(", adaptive budget {low}/{high}"),
    };
    println!(
        "{} combinations verified with overlapped regions in {:.3} s on {} threads{} ({} failed)",
        outcomes.len(),
        elapsed.as_secs_f64(),
        threads,
        budget_note,
        failures
    );
    if let Some(s) = slowest {
        println!(
            "slowest entry: {} {} at {:.3} s (bounds the overlapped pass)",
            s.name,
            s.version.label(),
            s.elapsed.as_secs_f64()
        );
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Rounds the `--replay` row factorises under one shape token.
const REPLAY_ROUNDS: usize = 5;

/// `bots check --replay`: the record-and-replay integrity row. SparseLU's
/// dependency-driven factorisation runs [`REPLAY_ROUNDS`] times under one
/// shape token on the shared team — the first round records the block
/// DAG, warm rounds re-execute the frozen graph with zero tracker
/// traffic — and every round's digest must be bit-identical to the serial
/// reference. Returns `(recorded, hit, diverged)` on success.
fn verify_replay(rt: &Runtime, class: InputClass) -> Result<(u64, u64, u64), String> {
    use bots::profile::NullProbe;
    use bots::sparselu::{dims_for, sparselu_parallel_replay, sparselu_serial, BlockMatrix};

    const TOKEN: u64 = 0xB075;
    let (nb, bs) = dims_for(class);
    let reference = BlockMatrix::generate(nb, bs, 42);
    sparselu_serial(&NullProbe, &reference);
    let want = reference.digest();

    let before = rt.stats();
    for round in 0..REPLAY_ROUNDS {
        // A fresh matrix every round: the blocks live at new addresses,
        // so warm rounds also prove the graph's address renaming.
        let m = BlockMatrix::generate(nb, bs, 42);
        sparselu_parallel_replay(rt, &m, TOKEN, false);
        let got = m.digest();
        if got != want {
            return Err(format!(
                "round {round}: digest {got:#018x} != serial {want:#018x}"
            ));
        }
    }
    let d = rt.stats().since(&before);
    if d.replays_hit + d.replays_diverged + d.replays_recorded != REPLAY_ROUNDS as u64 {
        return Err(format!(
            "replay ledger broken: recorded {} + hit {} + diverged {} != {REPLAY_ROUNDS} submits",
            d.replays_recorded, d.replays_hit, d.replays_diverged
        ));
    }
    if d.replays_hit == 0 {
        return Err("no round replayed the frozen graph".into());
    }
    Ok((d.replays_recorded, d.replays_hit, d.replays_diverged))
}

fn run_command(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(bench) = find_benchmark(name) else {
        eprintln!("unknown app '{name}' (try `bots list`)");
        return ExitCode::from(2);
    };

    let mut class = InputClass::Medium;
    let mut version = bench.best_version();
    let mut threads = bots::runtime::default_threads();
    let mut reps = 1usize;
    let mut serial = false;
    let mut check = true;
    let mut stats = false;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--class" | "-c" => match value().parse() {
                Ok(c) => class = c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--version" | "-v" => {
                let label = value().to_string();
                match bench.versions().into_iter().find(|v| v.label() == label) {
                    Some(v) => version = v,
                    None => {
                        eprintln!(
                            "unknown version '{label}' for {name} (try `bots versions {name}`)"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--threads" | "-t" => match value().parse::<usize>() {
                Ok(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--reps" | "-r" => match value().parse::<usize>() {
                Ok(n) if n >= 1 => reps = n,
                _ => {
                    eprintln!("--reps wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--serial" => serial = true,
            "--check" => check = true,
            "--no-check" => check = false,
            "--stats" => stats = true,
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }

    let meta = bench.meta();
    if serial {
        println!(
            "{} (serial) — {} class: {}",
            meta.name,
            class,
            bench.input_desc(class)
        );
        let m = runner::time_serial(bench.as_ref(), class, reps);
        println!("time   : {:.6} s (median of {reps})", m.time.as_secs_f64());
        println!("result : {}", m.output.summary);
        if check {
            match runner::verify(bench.as_ref(), class, &m.output) {
                Ok(()) => println!("verify : OK"),
                Err(e) => {
                    println!("verify : FAILED — {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "{} ({}) — {} class on {} threads: {}",
        meta.name,
        version.label(),
        class,
        threads,
        bench.input_desc(class)
    );
    let rt = Runtime::new(RuntimeConfig::new(threads));
    let before = rt.stats();
    let m = runner::time_parallel(bench.as_ref(), &rt, class, version, reps);
    println!("time   : {:.6} s (median of {reps})", m.time.as_secs_f64());
    println!("result : {}", m.output.summary);
    if let Some(rate) = m.work_rate() {
        println!("rate   : {rate:.0} work units/s");
    }
    if stats {
        println!("stats  : {}", rt.stats().since(&before));
    }
    if check {
        match runner::verify(bench.as_ref(), class, &m.output) {
            Ok(()) => println!("verify : OK"),
            Err(e) => {
                println!("verify : FAILED — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
