//! # bots — the Barcelona OpenMP Tasks Suite, reproduced in Rust
//!
//! A full reproduction of *"Barcelona OpenMP Tasks Suite: A Set of
//! Benchmarks Targeting the Exploitation of Task Parallelism in OpenMP"*
//! (Duran, Teruel, Ferrer, Martorell, Ayguadé — ICPP 2009), built on a
//! from-scratch work-stealing tasking runtime that models the OpenMP 3.0
//! task execution model.
//!
//! This facade crate re-exports every piece and provides the [`registry`]
//! of all nine applications, each with its tied/untied × cut-off ×
//! generator version matrix, four input classes, self-verification and
//! instrumented characterisation.
//!
//! ```
//! use bots::{registry, InputClass, Runtime};
//!
//! let rt = Runtime::with_threads(2);
//! for bench in registry() {
//!     let version = bench.best_version();
//!     let out = bench.run_parallel(&rt, InputClass::Test, version);
//!     bots::suite::runner::verify(bench.as_ref(), InputClass::Test, &out).unwrap();
//! }
//! ```
//!
//! See `DESIGN.md` for the system inventory and the paper-experiment →
//! code index, and `EXPERIMENTS.md` for measured results.

#![warn(missing_docs)]

pub use bots_inputs as inputs;
pub use bots_profile as profile;
pub use bots_runtime as runtime;
pub use bots_suite as suite;

pub use bots_alignment as alignment;
pub use bots_fft as fft;
pub use bots_fib as fib;
pub use bots_floorplan as floorplan;
pub use bots_health as health;
pub use bots_nqueens as nqueens;
pub use bots_sort as sort;
pub use bots_sparselu as sparselu;
pub use bots_strassen as strassen;

pub use bots_inputs::InputClass;
pub use bots_runtime::{
    LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff, Scope, TaskAttrs, WorkerCounter,
};
pub use bots_suite::{Benchmark, CutoffMode, Generator, RunOutput, Tiedness, VersionSpec};

/// All nine BOTS applications, in the paper's Table I order.
pub fn registry() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(bots_alignment::AlignmentBench),
        Box::new(bots_fft::FftBench),
        Box::new(bots_fib::FibBench),
        Box::new(bots_floorplan::FloorplanBench),
        Box::new(bots_health::HealthBench),
        Box::new(bots_nqueens::NQueensBench),
        Box::new(bots_sort::SortBench),
        Box::new(bots_sparselu::SparseLuBench),
        Box::new(bots_strassen::StrassenBench),
    ]
}

/// Looks an application up by (case-insensitive) name.
pub fn find_benchmark(name: &str) -> Option<Box<dyn Benchmark>> {
    registry()
        .into_iter()
        .find(|b| b.meta().name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nine_apps_in_table1_order() {
        let names: Vec<&str> = registry().iter().map(|b| b.meta().name).collect();
        assert_eq!(
            names,
            vec![
                "Alignment",
                "FFT",
                "Fib",
                "Floorplan",
                "Health",
                "NQueens",
                "Sort",
                "SparseLU",
                "Strassen"
            ]
        );
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find_benchmark("sparselu").is_some());
        assert!(find_benchmark("SPARSELU").is_some());
        assert!(find_benchmark("nosuch").is_none());
    }
}
