//! Thorough (slow) verification sweep on the `small` class: every app ×
//! every version × several runtime configurations. Ignored by default;
//! run with `cargo test --release -- --ignored` before releases.

use bots::suite::runner;
use bots::{registry, InputClass, LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff};

#[test]
#[ignore = "minutes-long; run with --ignored for release validation"]
fn small_class_every_version_verifies() {
    let rt = Runtime::with_threads(bots::runtime::default_threads());
    for bench in registry() {
        for version in bench.versions() {
            let out = bench.run_parallel(&rt, InputClass::Small, version);
            runner::verify(bench.as_ref(), InputClass::Small, &out)
                .unwrap_or_else(|e| panic!("{} {version}: {e}", bench.meta().name));
        }
    }
}

#[test]
#[ignore = "minutes-long; run with --ignored for release validation"]
fn small_class_exotic_runtime_configs() {
    let configs = [
        RuntimeConfig::new(2).with_local_order(LocalOrder::Fifo),
        RuntimeConfig::new(16).with_cutoff(RuntimeCutoff::MaxLocalQueue { max_len: 4 }),
        RuntimeConfig::new(3)
            .with_cutoff(RuntimeCutoff::Adaptive { low: 1, high: 2 })
            .with_tied_constraint(false),
    ];
    for config in configs {
        let rt = Runtime::new(config);
        for bench in registry() {
            let out = bench.run_parallel(&rt, InputClass::Small, bench.best_version());
            runner::verify(bench.as_ref(), InputClass::Small, &out)
                .unwrap_or_else(|e| panic!("{} under {config:?}: {e}", bench.meta().name));
        }
    }
}
