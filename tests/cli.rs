//! End-to-end tests of the `bots` command-line driver.

use std::process::Command;

fn bots() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bots"))
}

#[test]
fn list_shows_all_nine_apps() {
    let out = bots().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for app in [
        "Alignment",
        "FFT",
        "Fib",
        "Floorplan",
        "Health",
        "NQueens",
        "Sort",
        "SparseLU",
        "Strassen",
    ] {
        assert!(text.contains(app), "missing {app} in:\n{text}");
    }
}

#[test]
fn versions_marks_the_best_one() {
    let out = bots().args(["versions", "nqueens"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("manual-untied  (best — Figure 3)"), "{text}");
}

#[test]
fn run_executes_and_verifies() {
    let out = bots()
        .args(["run", "fib", "--class", "test", "--threads", "2", "--stats"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("fib(20) = 6765"), "{text}");
    assert!(text.contains("verify : OK"), "{text}");
    assert!(text.contains("stats  :"), "{text}");
}

#[test]
fn run_serial_mode() {
    let out = bots()
        .args(["run", "sort", "--class", "test", "--serial"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("(serial)"), "{text}");
    assert!(text.contains("verify : OK"), "{text}");
}

#[test]
fn run_with_explicit_version() {
    let out = bots()
        .args([
            "run",
            "sparselu",
            "--class",
            "test",
            "--version",
            "for-nocutoff-untied",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("for-nocutoff-untied"), "{text}");
}

#[test]
fn work_metric_apps_report_rate() {
    let out = bots()
        .args(["run", "floorplan", "--class", "test", "--threads", "4"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{text}");
    assert!(
        text.contains("rate   :"),
        "floorplan must report nodes/s: {text}"
    );
}

#[test]
fn unknown_app_fails_cleanly() {
    let out = bots().args(["run", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown app"), "{err}");
}

#[test]
fn unknown_version_fails_cleanly() {
    let out = bots()
        .args(["run", "fib", "--version", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown version"), "{err}");
}

#[test]
fn no_args_prints_usage() {
    let out = bots().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage"), "{err}");
}
