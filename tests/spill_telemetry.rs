//! Spill telemetry: the zero-allocation spawn property holds only while
//! every spawned closure fits the task record's 64 inline bytes. This test
//! pins that down for the whole suite — if a kernel grows its captures past
//! the inline budget, `closure_spilled` moves and the test names it.

use bots::{registry, InputClass, Runtime};

#[test]
fn bots_kernels_never_spill_spawn_closures() {
    let rt = Runtime::with_threads(4);
    for bench in registry() {
        for version in bench.versions() {
            let before = rt.stats();
            let _ = bench.run_parallel(&rt, InputClass::Test, version);
            let d = rt.stats().since(&before);
            assert_eq!(
                d.closure_spilled,
                0,
                "{} {} spilled {} closures past the inline budget \
                 (spawned {}, executed {})",
                bench.meta().name,
                version,
                d.closure_spilled,
                d.spawned,
                d.executed
            );
        }
    }
}

#[test]
fn oversized_closures_are_counted_as_spills() {
    // The counter itself must work: a deliberately fat capture (> 64 bytes)
    // spills exactly once per spawn.
    let rt = Runtime::with_threads(2);
    let before = rt.stats();
    rt.parallel(move |s| {
        // Built inside the region so the *root* closure stays inline; only
        // the ten spawns below carry the fat capture.
        let fat = [7u8; 128];
        s.taskgroup(|s| {
            for _ in 0..10 {
                s.spawn(move |_| {
                    std::hint::black_box(fat);
                });
            }
        });
    });
    let d = rt.stats().since(&before);
    assert_eq!(d.closure_spilled, 10, "every fat spawn must be counted");
}
