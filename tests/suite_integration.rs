//! Cross-crate integration tests: every application × every version ×
//! verification, through the public suite API, on the `test` input class.

use bots::suite::runner;
use bots::{registry, InputClass, Runtime, RuntimeConfig};

#[test]
fn every_app_serial_run_verifies() {
    for bench in registry() {
        let out = bench.run_serial(InputClass::Test);
        runner::verify(bench.as_ref(), InputClass::Test, &out)
            .unwrap_or_else(|e| panic!("{} serial: {e}", bench.meta().name));
    }
}

#[test]
fn every_app_every_version_verifies_in_parallel() {
    let rt = Runtime::with_threads(4);
    for bench in registry() {
        for version in bench.versions() {
            let out = bench.run_parallel(&rt, InputClass::Test, version);
            runner::verify(bench.as_ref(), InputClass::Test, &out)
                .unwrap_or_else(|e| panic!("{} {version}: {e}", bench.meta().name));
        }
    }
}

#[test]
fn every_app_every_version_verifies_with_overlapped_regions() {
    // The concurrent-regions suite mode: all application × version
    // combinations submit their verification regions onto one team at
    // once. Every combination must still verify — regions are isolated.
    let rt = Runtime::with_threads(4);
    let benches = registry();
    let outcomes = runner::verify_overlapping(&benches, &rt, InputClass::Test);
    let expected: usize = benches.iter().map(|b| b.versions().len()).sum();
    assert_eq!(outcomes.len(), expected, "every combination reports back");
    for o in &outcomes {
        assert!(
            o.result.is_ok(),
            "{} {} failed under overlapped regions: {:?}",
            o.name,
            o.version,
            o.result
        );
    }
}

#[test]
fn every_app_works_on_a_single_thread_team() {
    let rt = Runtime::with_threads(1);
    for bench in registry() {
        let version = bench.best_version();
        let out = bench.run_parallel(&rt, InputClass::Test, version);
        runner::verify(bench.as_ref(), InputClass::Test, &out)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.meta().name));
    }
}

#[test]
fn best_versions_are_listed_versions() {
    for bench in registry() {
        let best = bench.best_version();
        assert!(
            bench.versions().contains(&best),
            "{}: best version {best} not in its version list",
            bench.meta().name
        );
    }
}

#[test]
fn characterization_produces_tasks_for_every_app() {
    for bench in registry() {
        let counts = bench.characterize(InputClass::Test);
        assert!(
            counts.tasks > 0,
            "{}: no potential tasks",
            bench.meta().name
        );
        assert!(counts.ops > 0, "{}: no operations", bench.meta().name);
    }
}

#[test]
fn input_descriptions_exist_for_all_classes() {
    for bench in registry() {
        for class in InputClass::ALL {
            let desc = bench.input_desc(class);
            assert!(!desc.is_empty(), "{} {class}", bench.meta().name);
        }
    }
}

#[test]
fn table1_metadata_is_complete() {
    for bench in registry() {
        let m = bench.meta();
        assert!(!m.name.is_empty());
        assert!(!m.domain.is_empty());
        assert!(
            ["Iterative", "At each node", "At leafs"].contains(&m.structure),
            "{}",
            m.name
        );
        assert!(m.task_directives >= 1);
        assert!(
            ["for", "single", "single/for", "single/for/deps"].contains(&m.tasks_inside),
            "{}",
            m.name
        );
        assert!(
            ["none", "depth-based"].contains(&m.app_cutoff),
            "{}",
            m.name
        );
    }
}

#[test]
fn runs_verify_under_fifo_policy_and_runtime_cutoffs() {
    use bots::{LocalOrder, RuntimeCutoff};
    let configs = [
        RuntimeConfig::new(4).with_local_order(LocalOrder::Fifo),
        RuntimeConfig::new(4).with_cutoff(RuntimeCutoff::MaxTasks { per_worker: 16 }),
        RuntimeConfig::new(4).with_cutoff(RuntimeCutoff::Adaptive { low: 4, high: 32 }),
        RuntimeConfig::new(4).with_tied_constraint(false),
    ];
    for config in configs {
        let rt = Runtime::new(config);
        for bench in registry() {
            let out = bench.run_parallel(&rt, InputClass::Test, bench.best_version());
            runner::verify(bench.as_ref(), InputClass::Test, &out)
                .unwrap_or_else(|e| panic!("{} under {config:?}: {e}", bench.meta().name));
        }
    }
}

#[test]
fn repeated_parallel_runs_have_stable_checksums() {
    let rt = Runtime::with_threads(8);
    for bench in registry() {
        let v = bench.best_version();
        let a = bench.run_parallel(&rt, InputClass::Test, v);
        let b = bench.run_parallel(&rt, InputClass::Test, v);
        assert_eq!(
            a.checksum,
            b.checksum,
            "{}: results must be deterministic across runs",
            bench.meta().name
        );
    }
}

#[test]
fn thread_sweep_api_works_end_to_end() {
    let bench = bots::find_benchmark("fib").unwrap();
    let (serial, points) = runner::thread_sweep(
        bench.as_ref(),
        InputClass::Test,
        bench.best_version(),
        &[1, 2, 4],
        1,
        RuntimeConfig::new,
    );
    assert!(serial.time.as_nanos() > 0);
    assert_eq!(points.len(), 3);
    for p in &points {
        assert!(p.speedup > 0.0);
    }
}
