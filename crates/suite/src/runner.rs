//! The measurement harness: timed runs, verification, speed-ups and thread
//! sweeps — the machinery behind Figures 3-5.

use std::time::Duration;

use bots_inputs::InputClass;
use bots_runtime::{Runtime, RuntimeConfig};

use crate::benchmark::{Benchmark, RunOutput, Verification};
use crate::version::VersionSpec;

/// A timed set of repetitions of one configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Median wall time across repetitions.
    pub time: Duration,
    /// All repetition times, in run order.
    pub times: Vec<Duration>,
    /// Output of the last repetition (all repetitions must verify).
    pub output: RunOutput,
}

impl Measurement {
    /// Throughput in work units per second if the app reports a work
    /// metric, else `None`.
    pub fn work_rate(&self) -> Option<f64> {
        self.output.work.map(|w| w as f64 / self.time.as_secs_f64())
    }
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the serial reference `reps` times.
pub fn time_serial(bench: &dyn Benchmark, class: InputClass, reps: usize) -> Measurement {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut output = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let out = bench.run_serial(class);
        times.push(t0.elapsed());
        output = Some(out);
    }
    Measurement {
        time: median(times.clone()),
        times,
        output: output.unwrap(),
    }
}

/// Runs one parallel version `reps` times on `rt`.
pub fn time_parallel(
    bench: &dyn Benchmark,
    rt: &Runtime,
    class: InputClass,
    version: VersionSpec,
    reps: usize,
) -> Measurement {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut output = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let out = bench.run_parallel(rt, class, version);
        times.push(t0.elapsed());
        output = Some(out);
    }
    Measurement {
        time: median(times.clone()),
        times,
        output: output.unwrap(),
    }
}

/// Verifies an output, running the serial reference when the kernel asks
/// for an against-serial comparison.
pub fn verify(bench: &dyn Benchmark, class: InputClass, output: &RunOutput) -> Result<(), String> {
    match bench.verify(class, output) {
        Verification::SelfChecked => Ok(()),
        Verification::Failed(why) => Err(why),
        Verification::AgainstSerial => {
            let reference = bench.run_serial(class);
            if reference.checksum == output.checksum {
                Ok(())
            } else {
                Err(format!(
                    "parallel checksum {:#x} != serial {:#x} ({} vs {})",
                    output.checksum, reference.checksum, output.summary, reference.summary
                ))
            }
        }
    }
}

/// Speed-up of `parallel` over `serial`.
///
/// Defined as the paper does: wall-time ratio, except for work-metric apps
/// (Floorplan) where it is the improvement in work units per second — the
/// pruning makes wall time indeterministic, nodes/second is not.
pub fn speedup(serial: &Measurement, parallel: &Measurement) -> f64 {
    match (serial.work_rate(), parallel.work_rate()) {
        (Some(s), Some(p)) if s > 0.0 => p / s,
        _ => serial.time.as_secs_f64() / parallel.time.as_secs_f64(),
    }
}

/// One point of a thread sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Team size.
    pub threads: usize,
    /// Speed-up vs the serial baseline.
    pub speedup: f64,
    /// Median parallel wall time.
    pub time: Duration,
}

/// Sweeps team sizes for one version, computing speed-ups against the
/// serial baseline. `configure` maps a team size to a runtime configuration
/// (letting experiments vary policy, cut-off, tiedness enforcement...).
pub fn thread_sweep(
    bench: &dyn Benchmark,
    class: InputClass,
    version: VersionSpec,
    threads: &[usize],
    reps: usize,
    configure: impl Fn(usize) -> RuntimeConfig,
) -> (Measurement, Vec<SweepPoint>) {
    let serial = time_serial(bench, class, reps);
    let mut points = Vec::with_capacity(threads.len());
    let mut reference_checksum = None;
    for &n in threads {
        let rt = Runtime::new(configure(n));
        let m = time_parallel(bench, &rt, class, version, reps);
        // Full verification once per series; later points must reproduce the
        // same checksum (all kernels are deterministic in their results).
        match reference_checksum {
            None => {
                verify(bench, class, &m.output).unwrap_or_else(|e| {
                    panic!("{} {} failed verification: {e}", bench.meta().name, version)
                });
                reference_checksum = Some(m.output.checksum);
            }
            Some(want) => assert_eq!(
                m.output.checksum,
                want,
                "{} {} changed its result at {n} threads",
                bench.meta().name,
                version
            ),
        }
        points.push(SweepPoint {
            threads: n,
            speedup: speedup(&serial, &m),
            time: m.time,
        });
    }
    (serial, points)
}

/// One entry of an overlapped-verification sweep.
#[derive(Debug, Clone)]
pub struct OverlapOutcome {
    /// Application name.
    pub name: String,
    /// Version that ran.
    pub version: VersionSpec,
    /// Verification outcome.
    pub result: Result<(), String>,
    /// Wall time of this entry (run + verify), regions overlapped with the
    /// rest of the sweep. The slowest entry bounds the whole pass, which is
    /// what CI's hard job timeout budgets against.
    pub elapsed: Duration,
}

/// Verifies many application × version combinations **concurrently on one
/// worker team**: every entry gets its own client thread, which runs the
/// parallel version and verifies it while the other entries' regions are
/// in flight on the same workers.
///
/// This is both a suite mode (verification wall time drops to roughly the
/// longest single entry) and a runtime stress: the kernels' regions
/// overlap arbitrarily, so any cross-region leakage — a stray panic, a
/// lost root, misattributed quiescence — surfaces as a verification
/// failure here long before a dedicated runtime test would catch it.
pub fn verify_overlapping(
    benches: &[Box<dyn Benchmark>],
    rt: &bots_runtime::Runtime,
    class: InputClass,
) -> Vec<OverlapOutcome> {
    verify_overlapping_where(benches, rt, class, |_| true)
}

/// [`verify_overlapping`] restricted to the versions `keep` selects —
/// e.g. only the dependency-driven (`Generator::Deps`) rows for the
/// focused `bots check --deps` integrity job.
pub fn verify_overlapping_where(
    benches: &[Box<dyn Benchmark>],
    rt: &bots_runtime::Runtime,
    class: InputClass,
    keep: impl Fn(&VersionSpec) -> bool,
) -> Vec<OverlapOutcome> {
    let outcomes = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|clients| {
        for bench in benches {
            for version in bench.versions() {
                if !keep(&version) {
                    continue;
                }
                let (outcomes, bench) = (&outcomes, bench.as_ref());
                clients.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let out = bench.run_parallel(rt, class, version);
                    let result = verify(bench, class, &out);
                    outcomes.lock().unwrap().push(OverlapOutcome {
                        name: bench.meta().name.to_string(),
                        version,
                        result,
                        elapsed: t0.elapsed(),
                    });
                });
            }
        }
    });
    let mut outcomes = outcomes.into_inner().unwrap();
    outcomes.sort_by(|a, b| (&a.name, a.version.label()).cmp(&(&b.name, b.version.label())));
    outcomes
}

/// Outcome of a cancellation/deadline spawn-storm integrity row.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Did the region report [`bots_runtime::RegionError::Cancelled`]? A
    /// storm deep enough to be effectively unbounded must.
    pub cancelled: bool,
    /// Queued tasks whose bodies were skipped by the drain (suppressed
    /// spawns included). A mid-flight cancel of a deep storm skips > 0.
    pub skipped_tasks: u64,
    /// Dispatches the region saw, the root included (skip-dispatches
    /// count): `1` means the cancel landed before the storm ever started —
    /// there was nothing to drain, which on a saturated team is a
    /// legitimate deadline outcome, not a drain failure.
    pub executed: u64,
    /// Submit → quiescence, whole row.
    pub elapsed: Duration,
    /// Cancel signal (or deadline expiry) → observed quiescence: the
    /// latency the cancellation machinery itself answers for.
    pub cancel_latency: Duration,
}

impl StormOutcome {
    /// The row passes when the storm was actually cancelled mid-flight
    /// (typed outcome + a non-empty drain) and the team survived.
    pub fn verified(&self) -> Result<(), String> {
        if !self.cancelled {
            return Err("storm region quiesced without reporting Cancelled".into());
        }
        if self.skipped_tasks == 0 && self.executed > 1 {
            return Err(format!(
                "storm ran {} tasks yet the drain skipped none — cancellation never engaged",
                self.executed
            ));
        }
        Ok(())
    }
}

/// An effectively unbounded binary spawn storm (2^depth tasks): only a
/// cancellation point can bring it to quiescence in test time.
fn storm_task(s: &bots_runtime::Scope<'_>, depth: u32) {
    if depth == 0 || s.is_cancelled() {
        return;
    }
    for _ in 0..2 {
        s.spawn(move |s| storm_task(s, depth - 1));
    }
}

const STORM_DEPTH: u32 = 50;

/// Drives the try_join loop after a cancel signal and folds the result
/// into a [`StormOutcome`].
fn drain_storm(
    mut handle: bots_runtime::RegionHandle<'_, ()>,
    t0: std::time::Instant,
    signalled: std::time::Instant,
) -> StormOutcome {
    let outcome = loop {
        if let Some(o) = handle.try_join(Duration::from_millis(20)) {
            break o;
        }
    };
    let cancel_latency = signalled.elapsed();
    let stats = handle.stats();
    StormOutcome {
        cancelled: matches!(outcome, Err(bots_runtime::RegionError::Cancelled)),
        skipped_tasks: stats.skipped_tasks,
        executed: stats.executed,
        elapsed: t0.elapsed(),
        cancel_latency,
    }
}

/// The `bots check --cancel-after <ms>` row: submits an unbounded spawn
/// storm on `rt` (overlap-safe: other regions may be in flight on the same
/// team), cancels it after `after` of wall clock, and measures the drain
/// to quiescence.
pub fn cancel_storm(rt: &Runtime, after: Duration) -> StormOutcome {
    let t0 = std::time::Instant::now();
    let handle = rt.submit(|s| {
        storm_task(s, STORM_DEPTH);
        s.taskwait();
    });
    std::thread::sleep(after);
    handle.cancel();
    drain_storm(handle, t0, std::time::Instant::now())
}

/// The `bots check --deadline <ms>` row: like [`cancel_storm`] but nobody
/// calls cancel — the region's armed deadline must fire on the workers'
/// coarse clock and drain the storm on its own.
pub fn deadline_storm(rt: &Runtime, deadline: Duration) -> StormOutcome {
    let t0 = std::time::Instant::now();
    let handle = rt.submit_with_deadline(deadline, |s| {
        storm_task(s, STORM_DEPTH);
        s.taskwait();
    });
    // The drain may begin any time after the deadline; latency is measured
    // from the instant the deadline armed itself to fire.
    let signalled = t0 + deadline;
    let outcome = drain_storm(handle, t0, std::time::Instant::now());
    StormOutcome {
        cancel_latency: outcome
            .elapsed
            .saturating_sub(signalled.saturating_duration_since(t0)),
        ..outcome
    }
}

/// The default ladder of team sizes used by the figures: 1, 2, 4, 8, ... up
/// to the machine (the paper uses 1..32 on its 32-cpu cpuset).
pub fn default_thread_ladder() -> Vec<usize> {
    let max = bots_runtime::default_threads();
    let mut ladder = vec![1usize];
    while *ladder.last().unwrap() * 2 <= max {
        ladder.push(ladder.last().unwrap() * 2);
    }
    if *ladder.last().unwrap() != max {
        ladder.push(max);
    }
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let a = median(vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(9),
        ]);
        assert_eq!(a, Duration::from_millis(5));
    }

    #[test]
    fn speedup_from_time_ratio() {
        let s = Measurement {
            time: Duration::from_millis(100),
            times: vec![],
            output: RunOutput::new(0, ""),
        };
        let p = Measurement {
            time: Duration::from_millis(25),
            times: vec![],
            output: RunOutput::new(0, ""),
        };
        assert!((speedup(&s, &p) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_from_work_rate_when_present() {
        let s = Measurement {
            time: Duration::from_millis(100),
            times: vec![],
            output: RunOutput::with_work(0, 1000, ""),
        };
        // Twice the nodes in twice the time: rate unchanged → speed-up 1.
        let p = Measurement {
            time: Duration::from_millis(200),
            times: vec![],
            output: RunOutput::with_work(0, 2000, ""),
        };
        assert!((speedup(&s, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storm_rows_cancel_and_drain() {
        let rt = Runtime::new(RuntimeConfig::new(2));
        let o = cancel_storm(&rt, Duration::from_millis(5));
        assert!(o.verified().is_ok(), "explicit cancel row failed: {o:?}");
        let o = deadline_storm(&rt, Duration::from_millis(5));
        assert!(o.verified().is_ok(), "deadline row failed: {o:?}");
        // The team survives its storms: an ordinary region still works.
        assert_eq!(rt.parallel(|_| 3u32), 3);
    }

    #[test]
    fn ladder_is_monotonic_and_ends_at_max() {
        let l = default_thread_ladder();
        assert_eq!(l[0], 1);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.last().unwrap(), bots_runtime::default_threads());
    }
}
