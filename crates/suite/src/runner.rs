//! The measurement harness: timed runs, verification, speed-ups and thread
//! sweeps — the machinery behind Figures 3-5.

use std::time::Duration;

use bots_inputs::InputClass;
use bots_runtime::{Runtime, RuntimeConfig};

use crate::benchmark::{Benchmark, RunOutput, Verification};
use crate::version::VersionSpec;

/// A timed set of repetitions of one configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Median wall time across repetitions.
    pub time: Duration,
    /// All repetition times, in run order.
    pub times: Vec<Duration>,
    /// Output of the last repetition (all repetitions must verify).
    pub output: RunOutput,
}

impl Measurement {
    /// Throughput in work units per second if the app reports a work
    /// metric, else `None`.
    pub fn work_rate(&self) -> Option<f64> {
        self.output.work.map(|w| w as f64 / self.time.as_secs_f64())
    }
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs the serial reference `reps` times.
pub fn time_serial(bench: &dyn Benchmark, class: InputClass, reps: usize) -> Measurement {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut output = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let out = bench.run_serial(class);
        times.push(t0.elapsed());
        output = Some(out);
    }
    Measurement {
        time: median(times.clone()),
        times,
        output: output.unwrap(),
    }
}

/// Runs one parallel version `reps` times on `rt`.
pub fn time_parallel(
    bench: &dyn Benchmark,
    rt: &Runtime,
    class: InputClass,
    version: VersionSpec,
    reps: usize,
) -> Measurement {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut output = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let out = bench.run_parallel(rt, class, version);
        times.push(t0.elapsed());
        output = Some(out);
    }
    Measurement {
        time: median(times.clone()),
        times,
        output: output.unwrap(),
    }
}

/// Verifies an output, running the serial reference when the kernel asks
/// for an against-serial comparison.
pub fn verify(bench: &dyn Benchmark, class: InputClass, output: &RunOutput) -> Result<(), String> {
    match bench.verify(class, output) {
        Verification::SelfChecked => Ok(()),
        Verification::Failed(why) => Err(why),
        Verification::AgainstSerial => {
            let reference = bench.run_serial(class);
            if reference.checksum == output.checksum {
                Ok(())
            } else {
                Err(format!(
                    "parallel checksum {:#x} != serial {:#x} ({} vs {})",
                    output.checksum, reference.checksum, output.summary, reference.summary
                ))
            }
        }
    }
}

/// Speed-up of `parallel` over `serial`.
///
/// Defined as the paper does: wall-time ratio, except for work-metric apps
/// (Floorplan) where it is the improvement in work units per second — the
/// pruning makes wall time indeterministic, nodes/second is not.
pub fn speedup(serial: &Measurement, parallel: &Measurement) -> f64 {
    match (serial.work_rate(), parallel.work_rate()) {
        (Some(s), Some(p)) if s > 0.0 => p / s,
        _ => serial.time.as_secs_f64() / parallel.time.as_secs_f64(),
    }
}

/// One point of a thread sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Team size.
    pub threads: usize,
    /// Speed-up vs the serial baseline.
    pub speedup: f64,
    /// Median parallel wall time.
    pub time: Duration,
}

/// Sweeps team sizes for one version, computing speed-ups against the
/// serial baseline. `configure` maps a team size to a runtime configuration
/// (letting experiments vary policy, cut-off, tiedness enforcement...).
pub fn thread_sweep(
    bench: &dyn Benchmark,
    class: InputClass,
    version: VersionSpec,
    threads: &[usize],
    reps: usize,
    configure: impl Fn(usize) -> RuntimeConfig,
) -> (Measurement, Vec<SweepPoint>) {
    let serial = time_serial(bench, class, reps);
    let mut points = Vec::with_capacity(threads.len());
    let mut reference_checksum = None;
    for &n in threads {
        let rt = Runtime::new(configure(n));
        let m = time_parallel(bench, &rt, class, version, reps);
        // Full verification once per series; later points must reproduce the
        // same checksum (all kernels are deterministic in their results).
        match reference_checksum {
            None => {
                verify(bench, class, &m.output).unwrap_or_else(|e| {
                    panic!("{} {} failed verification: {e}", bench.meta().name, version)
                });
                reference_checksum = Some(m.output.checksum);
            }
            Some(want) => assert_eq!(
                m.output.checksum,
                want,
                "{} {} changed its result at {n} threads",
                bench.meta().name,
                version
            ),
        }
        points.push(SweepPoint {
            threads: n,
            speedup: speedup(&serial, &m),
            time: m.time,
        });
    }
    (serial, points)
}

/// One entry of an overlapped-verification sweep.
#[derive(Debug, Clone)]
pub struct OverlapOutcome {
    /// Application name.
    pub name: String,
    /// Version that ran.
    pub version: VersionSpec,
    /// Verification outcome.
    pub result: Result<(), String>,
    /// Wall time of this entry (run + verify), regions overlapped with the
    /// rest of the sweep. The slowest entry bounds the whole pass, which is
    /// what CI's hard job timeout budgets against.
    pub elapsed: Duration,
}

/// Verifies many application × version combinations **concurrently on one
/// worker team**: every entry gets its own client thread, which runs the
/// parallel version and verifies it while the other entries' regions are
/// in flight on the same workers.
///
/// This is both a suite mode (verification wall time drops to roughly the
/// longest single entry) and a runtime stress: the kernels' regions
/// overlap arbitrarily, so any cross-region leakage — a stray panic, a
/// lost root, misattributed quiescence — surfaces as a verification
/// failure here long before a dedicated runtime test would catch it.
pub fn verify_overlapping(
    benches: &[Box<dyn Benchmark>],
    rt: &bots_runtime::Runtime,
    class: InputClass,
) -> Vec<OverlapOutcome> {
    verify_overlapping_where(benches, rt, class, |_| true)
}

/// [`verify_overlapping`] restricted to the versions `keep` selects —
/// e.g. only the dependency-driven (`Generator::Deps`) rows for the
/// focused `bots check --deps` integrity job.
pub fn verify_overlapping_where(
    benches: &[Box<dyn Benchmark>],
    rt: &bots_runtime::Runtime,
    class: InputClass,
    keep: impl Fn(&VersionSpec) -> bool,
) -> Vec<OverlapOutcome> {
    let outcomes = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|clients| {
        for bench in benches {
            for version in bench.versions() {
                if !keep(&version) {
                    continue;
                }
                let (outcomes, bench) = (&outcomes, bench.as_ref());
                clients.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let out = bench.run_parallel(rt, class, version);
                    let result = verify(bench, class, &out);
                    outcomes.lock().unwrap().push(OverlapOutcome {
                        name: bench.meta().name.to_string(),
                        version,
                        result,
                        elapsed: t0.elapsed(),
                    });
                });
            }
        }
    });
    let mut outcomes = outcomes.into_inner().unwrap();
    outcomes.sort_by(|a, b| (&a.name, a.version.label()).cmp(&(&b.name, b.version.label())));
    outcomes
}

/// The default ladder of team sizes used by the figures: 1, 2, 4, 8, ... up
/// to the machine (the paper uses 1..32 on its 32-cpu cpuset).
pub fn default_thread_ladder() -> Vec<usize> {
    let max = bots_runtime::default_threads();
    let mut ladder = vec![1usize];
    while *ladder.last().unwrap() * 2 <= max {
        ladder.push(ladder.last().unwrap() * 2);
    }
    if *ladder.last().unwrap() != max {
        ladder.push(max);
    }
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let a = median(vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(9),
        ]);
        assert_eq!(a, Duration::from_millis(5));
    }

    #[test]
    fn speedup_from_time_ratio() {
        let s = Measurement {
            time: Duration::from_millis(100),
            times: vec![],
            output: RunOutput::new(0, ""),
        };
        let p = Measurement {
            time: Duration::from_millis(25),
            times: vec![],
            output: RunOutput::new(0, ""),
        };
        assert!((speedup(&s, &p) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_from_work_rate_when_present() {
        let s = Measurement {
            time: Duration::from_millis(100),
            times: vec![],
            output: RunOutput::with_work(0, 1000, ""),
        };
        // Twice the nodes in twice the time: rate unchanged → speed-up 1.
        let p = Measurement {
            time: Duration::from_millis(200),
            times: vec![],
            output: RunOutput::with_work(0, 2000, ""),
        };
        assert!((speedup(&s, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ladder_is_monotonic_and_ends_at_max() {
        let l = default_thread_ladder();
        assert_eq!(l[0], 1);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.last().unwrap(), bots_runtime::default_threads());
    }
}
