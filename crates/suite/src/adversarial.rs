//! Adversarial scheduling scenarios: the pathological task-graph shapes
//! that stress a tasking runtime where the BOTS kernels are gentle
//! (Tuft et al.'s taxonomy of OpenMP tasking stress patterns).
//!
//! Each scenario is **self-verifying by value** — it computes a closed-form
//! answer through the hostile graph shape and compares, never through
//! runtime telemetry — so the rows can overlap with the kernel rows on one
//! shared team without reading each other's counters:
//!
//! * **spawn-storm** — one producer publishes a flat wave of tasks from a
//!   single deque, the worst case for the injector and for steal pressure;
//! * **deep-recursion** — a left-deep spawn chain two hundred thousand
//!   tasks long: exactly one task runnable at any instant, maximal
//!   parent-chain bookkeeping, zero parallelism to hide overhead behind
//!   (each link runs on a pooled continuation, so the chain's depth is
//!   bounded by the record slab, not by any thread's stack);
//! * **chain-barrier** — many short waves each sealed by a `taskwait`, so
//!   the team spends its life entering and leaving barriers;
//! * **if-zero** — every other creation point carries `if(0)`: the runtime
//!   must inline half the graph without losing the other half;
//! * **waiter-migration** — rounds of deferred waiters whose child waves
//!   are stolen out from under them: each `taskwait` suspends its
//!   continuation and is resumed by whichever worker retires the last
//!   child, so blocked frames migrate across the team mid-wait;
//! * **fine-grain-loop** — worksharing sweeps at grain 1 (every claim is a
//!   cursor collision) up through modest grains, against the `Tasks` mode
//!   on the same space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bots_runtime::{LoopMode, Runtime, Scope};

/// The result of one adversarial scenario.
#[derive(Debug)]
pub struct AdversarialOutcome {
    /// Scenario name, as printed in the `bots check` row.
    pub name: &'static str,
    /// `Ok` when the scenario's self-check passed.
    pub result: Result<(), String>,
    /// Wall time of the scenario (its region(s), not the whole process).
    pub elapsed: Duration,
}

/// A named scenario entry: the row label and its self-checking body.
type Scenario = (&'static str, fn(&Runtime) -> Result<(), String>);

/// Runs every adversarial scenario on `rt` and returns one row each.
///
/// The scenarios run sequentially *within* this call but the call is meant
/// to overlap with other work on the same team (`bots check --adversarial`
/// runs it concurrently with the kernel verification rows).
pub fn run_all(rt: &Runtime) -> Vec<AdversarialOutcome> {
    let scenarios: [Scenario; 6] = [
        ("spawn-storm", spawn_storm),
        ("deep-recursion", deep_recursion),
        ("chain-barrier", chain_barrier),
        ("if-zero", if_zero),
        ("waiter-migration", waiter_migration),
        ("fine-grain-loop", fine_grain_loop),
    ];
    scenarios
        .iter()
        .map(|&(name, f)| {
            let t0 = Instant::now();
            let result = f(rt);
            AdversarialOutcome {
                name,
                result,
                elapsed: t0.elapsed(),
            }
        })
        .collect()
}

fn expect_sum(name: &str, got: u64, want: u64) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{name}: sum {got} != expected {want}"))
    }
}

/// One producer, twenty thousand flat tasks: the region root spawns the
/// entire wave from its own deque while every other worker can only steal.
fn spawn_storm(rt: &Runtime) -> Result<(), String> {
    const N: u64 = 20_000;
    let sum = AtomicU64::new(0);
    let sum_ref = &sum;
    rt.parallel(|s| {
        for i in 0..N {
            s.spawn(move |_| {
                sum_ref.fetch_add(i, Ordering::Relaxed);
            });
        }
    });
    expect_sum("spawn-storm", sum.load(Ordering::Relaxed), N * (N - 1) / 2)
}

/// A left-deep chain: each task spawns exactly one child, two hundred
/// thousand links deep. The schedule is forced serial — the scenario
/// measures that per-task bookkeeping (parent chains, record recycling)
/// survives extreme depth without a stack or slab blow-up. Every link is a
/// deferred task mounted on a pooled continuation, so no worker thread's
/// stack ever holds more than one link's frame; the depth that used to be
/// capped by a 64 MiB worker stack now runs on page-sized ones.
fn deep_recursion(rt: &Runtime) -> Result<(), String> {
    const DEPTH: u64 = 200_000;
    fn link<'e>(s: &Scope<'e>, remaining: u64, acc: &'e AtomicU64) {
        acc.fetch_add(remaining, Ordering::Relaxed);
        if remaining > 0 {
            s.spawn(move |s| link(s, remaining - 1, acc));
        }
    }
    let acc = AtomicU64::new(0);
    let acc_ref = &acc;
    rt.parallel(move |s| link(s, DEPTH, acc_ref));
    expect_sum(
        "deep-recursion",
        acc.load(Ordering::Relaxed),
        DEPTH * (DEPTH + 1) / 2,
    )
}

/// A hundred waves of sixty-four short tasks, each wave sealed by a
/// `taskwait`. Verifies the barrier each time: when a wave's `taskwait`
/// returns, every task of every wave so far must have run.
fn chain_barrier(rt: &Runtime) -> Result<(), String> {
    const WAVES: u64 = 100;
    const WIDTH: u64 = 64;
    let done = AtomicU64::new(0);
    let mut leak: Option<String> = None;
    rt.parallel(|s| {
        for wave in 0..WAVES {
            for _ in 0..WIDTH {
                s.spawn(|_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            s.taskwait();
            let seen = done.load(Ordering::Relaxed);
            if seen != (wave + 1) * WIDTH && leak.is_none() {
                leak = Some(format!(
                    "chain-barrier: taskwait of wave {wave} returned with {seen} tasks done, \
                     expected {}",
                    (wave + 1) * WIDTH
                ));
            }
        }
    });
    if let Some(e) = leak {
        return Err(e);
    }
    expect_sum("chain-barrier", done.load(Ordering::Relaxed), WAVES * WIDTH)
}

/// Half the creation points carry `if(0)` — the runtime must execute them
/// inline (undeferred) at the creation point — interleaved with real
/// deferred spawns contributing to the same sum.
fn if_zero(rt: &Runtime) -> Result<(), String> {
    const N: u64 = 10_000;
    let sum = AtomicU64::new(0);
    let sum_ref = &sum;
    rt.parallel(|s| {
        for i in 0..N {
            s.task(move |_| {
                sum_ref.fetch_add(i, Ordering::Relaxed);
            })
            .if_clause(i % 2 == 1)
            .spawn();
        }
    });
    expect_sum("if-zero", sum.load(Ordering::Relaxed), N * (N - 1) / 2)
}

/// Rounds of deferred waiters whose child waves get stolen out from under
/// them. Each round's waiter spawns a wave of children and immediately
/// `taskwait`s; with many rounds in flight at once the children scatter
/// across the team, the waiter's continuation suspends, and whichever
/// worker retires a round's last child resumes the waiter — frequently a
/// different thread than the one that started the frame. The check is by
/// value *and* by order: post-wait code must observe every child of its
/// own round complete, and the global sum must hit the closed form.
fn waiter_migration(rt: &Runtime) -> Result<(), String> {
    const ROUNDS: u64 = 64;
    const WIDTH: u64 = 32;
    let sum = AtomicU64::new(0);
    let round_done: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();
    let stragglers = AtomicU64::new(0);
    let (sum_ref, rounds_ref, stragglers_ref) = (&sum, &round_done, &stragglers);
    rt.parallel(|s| {
        for round in rounds_ref.iter() {
            s.spawn(move |s| {
                for i in 0..WIDTH {
                    s.spawn(move |_| {
                        round.fetch_add(1, Ordering::Relaxed);
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    });
                }
                s.taskwait();
                if round.load(Ordering::Relaxed) != WIDTH {
                    stragglers_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let leaked = stragglers.load(Ordering::Relaxed);
    if leaked != 0 {
        return Err(format!(
            "waiter-migration: {leaked} taskwaits returned before their round's children finished"
        ));
    }
    expect_sum(
        "waiter-migration",
        sum.load(Ordering::Relaxed),
        ROUNDS * WIDTH * (WIDTH - 1) / 2,
    )
}

/// Fine-grained loop sweep: the worksharing claim protocol at grain 1
/// (maximal cursor contention), 2 and 8 over ten thousand iterations, and
/// the task-per-chunk mode on the same space — all against the closed form.
fn fine_grain_loop(rt: &Runtime) -> Result<(), String> {
    const N: usize = 10_000;
    let want = (N as u64) * (N as u64 - 1) / 2;
    for mode in [LoopMode::Worksharing, LoopMode::Tasks] {
        for grain in [1usize, 2, 8] {
            let sum = AtomicU64::new(0);
            rt.parallel(|s| {
                s.for_each(0..N, |i, _| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                })
                .chunk(grain)
                .mode(mode)
                .run();
            });
            let got = sum.load(Ordering::Relaxed);
            if got != want {
                return Err(format!(
                    "fine-grain-loop: mode {mode:?} grain {grain}: sum {got} != expected {want}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_pass_on_a_small_team() {
        let rt = Runtime::with_threads(2);
        for o in run_all(&rt) {
            assert!(o.result.is_ok(), "{}: {:?}", o.name, o.result);
        }
    }
}
