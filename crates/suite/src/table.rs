//! Plain-text table and CSV emitters for the harness binaries.
//!
//! The harness prints each experiment twice: a human-readable aligned table
//! (what you compare against the paper) and a machine-readable CSV block
//! (what you plot).

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers; alignment defaults to Left for the first
    /// column and Right for the rest (name + numbers, the common shape).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns and a rule under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        line.push_str(&cells[i]);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(&cells[i]);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated, quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["app", "speedup"]);
        t.row(vec!["fib", "12.5"]);
        t.row(vec!["alignment", "25.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers share their last column.
        let c1 = lines[2].rfind('5').unwrap();
        let c2 = lines[3].rfind('0').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 1), "2.0");
    }
}
