//! The version matrix: every BOTS application ships in several variants
//! (§III-A "Multiple versions") and experiments select among them.

/// Tied vs untied task flavour of a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tiedness {
    /// `#pragma omp task` (the OpenMP default).
    #[default]
    Tied,
    /// `#pragma omp task untied`.
    Untied,
}

/// Application-level cut-off style of a version.
///
/// The runtime-side cut-offs (`RuntimeCutoff`) are orthogonal: they apply on
/// top of whatever the application does, and the `NoCutoff` version is the
/// one that exposes them (paper §IV-B: "no-cutoff: ... only the one
/// implemented by the runtime (if any) is in use").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CutoffMode {
    /// Unbounded task creation; all the burden on the runtime.
    #[default]
    NoCutoff,
    /// `#pragma omp task if(depth < D)`: beyond the cut-off the task is
    /// undeferred but the runtime still does its bookkeeping.
    IfClause,
    /// The application calls a plain (task-free) function beyond the
    /// cut-off; the runtime never hears about those "tasks".
    Manual,
}

/// Task generator construct of a version (§IV-D, SparseLU experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Generator {
    /// All tasks created from a `single` region by one thread.
    #[default]
    Single,
    /// Tasks created from inside an `omp for` worksharing loop by the whole
    /// team (multiple generators).
    For,
    /// Single generator with OpenMP 4.0-style `depend(in/out)` clauses
    /// instead of `taskwait` barriers: data-flow execution, the runtime's
    /// post-3.0 extension (not part of the paper's matrix; listed
    /// explicitly by the kernels that implement it).
    Deps,
}

/// A fully-specified benchmark version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VersionSpec {
    /// Tied or untied tasks.
    pub tiedness: Tiedness,
    /// Application cut-off style.
    pub cutoff: CutoffMode,
    /// Task generator construct.
    pub generator: Generator,
}

impl VersionSpec {
    /// Builder: set tiedness.
    pub fn tied(mut self, t: Tiedness) -> Self {
        self.tiedness = t;
        self
    }

    /// Builder: set cut-off mode.
    pub fn cutoff(mut self, c: CutoffMode) -> Self {
        self.cutoff = c;
        self
    }

    /// Builder: set generator construct.
    pub fn generator(mut self, g: Generator) -> Self {
        self.generator = g;
        self
    }

    /// The paper's naming convention, e.g. `manual-untied`, `for-tied`,
    /// `nocutoff-tied`, `if-untied-single`.
    pub fn label(&self) -> String {
        let cutoff = match self.cutoff {
            CutoffMode::NoCutoff => "nocutoff",
            CutoffMode::IfClause => "if",
            CutoffMode::Manual => "manual",
        };
        let tied = match self.tiedness {
            Tiedness::Tied => "tied",
            Tiedness::Untied => "untied",
        };
        match self.generator {
            Generator::Single => format!("{cutoff}-{tied}"),
            Generator::For => format!("for-{cutoff}-{tied}"),
            Generator::Deps => format!("deps-{cutoff}-{tied}"),
        }
    }

    /// The cross product of all eight single-generator variants plus, when
    /// `with_for` is set, the eight `for`-generator ones.
    pub fn matrix(with_for: bool) -> Vec<VersionSpec> {
        let mut out = Vec::new();
        let gens: &[Generator] = if with_for {
            &[Generator::Single, Generator::For]
        } else {
            &[Generator::Single]
        };
        for &generator in gens {
            for cutoff in [
                CutoffMode::NoCutoff,
                CutoffMode::IfClause,
                CutoffMode::Manual,
            ] {
                for tiedness in [Tiedness::Tied, Tiedness::Untied] {
                    out.push(VersionSpec {
                        tiedness,
                        cutoff,
                        generator,
                    });
                }
            }
        }
        out
    }
}

impl std::fmt::Display for VersionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_paper_convention() {
        let v = VersionSpec::default()
            .cutoff(CutoffMode::Manual)
            .tied(Tiedness::Untied);
        assert_eq!(v.label(), "manual-untied");
        let v = VersionSpec::default().generator(Generator::For);
        assert_eq!(v.label(), "for-nocutoff-tied");
        assert_eq!(VersionSpec::default().label(), "nocutoff-tied");
        let v = VersionSpec::default().generator(Generator::Deps);
        assert_eq!(v.label(), "deps-nocutoff-tied");
    }

    #[test]
    fn matrix_excludes_the_deps_extension() {
        // `deps` is a post-OpenMP-3.0 extension, not part of the paper's
        // version matrix: kernels opt in by listing it explicitly.
        assert!(VersionSpec::matrix(true)
            .iter()
            .all(|v| v.generator != Generator::Deps));
    }

    #[test]
    fn matrix_sizes() {
        assert_eq!(VersionSpec::matrix(false).len(), 6);
        assert_eq!(VersionSpec::matrix(true).len(), 12);
    }

    #[test]
    fn matrix_has_no_duplicates() {
        let m = VersionSpec::matrix(true);
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), m.len());
    }

    #[test]
    fn default_is_nocutoff_tied_single() {
        let v = VersionSpec::default();
        assert_eq!(v.tiedness, Tiedness::Tied);
        assert_eq!(v.cutoff, CutoffMode::NoCutoff);
        assert_eq!(v.generator, Generator::Single);
    }
}
