//! # bots-suite — the BOTS suite framework
//!
//! The methodology layer of the reproduction: everything about *how*
//! benchmarks are declared, versioned, run, verified and reported, with the
//! kernels themselves living in their own crates.
//!
//! * [`Benchmark`]: the per-application contract (serial reference, parallel
//!   versions, verification, instrumented characterisation);
//! * [`VersionSpec`]: the tied/untied × cut-off × generator version matrix
//!   of §III-A;
//! * [`runner`]: timed repetitions, speed-ups (wall-time or work-metric
//!   based), thread sweeps, verification driver;
//! * [`adversarial`]: pathological task-graph shapes (spawn storms, deep
//!   chains, barrier-heavy waves, `if(0)` floods, fine-grained loops) run
//!   as self-verifying integrity rows;
//! * [`Table`]: aligned-text + CSV emitters for the harness binaries.

#![warn(missing_docs)]

pub mod adversarial;
mod benchmark;
pub mod runner;
mod table;
mod version;

pub use benchmark::{fnv1a, fnv1a_f64, fnv1a_u64, BenchMeta, Benchmark, RunOutput, Verification};
pub use table::{f, Align, Table};
pub use version::{CutoffMode, Generator, Tiedness, VersionSpec};

// Re-export the pieces kernels and harnesses constantly need together.
pub use bots_inputs::InputClass;
