//! The `Benchmark` trait: the contract every BOTS kernel implements, plus
//! the static metadata that regenerates Table I.

use bots_inputs::InputClass;
use bots_profile::RawCounts;
use bots_runtime::Runtime;

use crate::version::VersionSpec;

/// Static summary of one application — the columns of the paper's Table I.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Application name (e.g. "Alignment").
    pub name: &'static str,
    /// Where the original code came from: "AKM", "Cilk", "Olden" or "-"
    /// (in-house).
    pub origin: &'static str,
    /// Problem domain (e.g. "Dynamic programming").
    pub domain: &'static str,
    /// Computation structure: "Iterative", "At each node", "At leafs".
    pub structure: &'static str,
    /// Number of `task` spawn sites in the kernel source.
    pub task_directives: u32,
    /// Construct the tasks are created inside: "for", "single",
    /// "single/for".
    pub tasks_inside: &'static str,
    /// Whether tasks spawn nested tasks.
    pub nested_tasks: bool,
    /// Application-provided cut-off: "none" or "depth-based".
    pub app_cutoff: &'static str,
}

/// Result of one benchmark run, carrying everything verification and
/// speed-up computation need.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Order-independent digest of the computed result; comparable between
    /// the serial and any parallel version of the same (app, class).
    pub checksum: u64,
    /// Optional work metric for indeterministic-search apps: Floorplan
    /// reports *nodes visited*, and its speed-up is measured in nodes/second
    /// rather than wall time (paper §III-B).
    pub work: Option<u64>,
    /// Human-readable summary of the result (best score, solution count...).
    pub summary: String,
}

impl RunOutput {
    /// Plain output with just a checksum.
    pub fn new(checksum: u64, summary: impl Into<String>) -> Self {
        RunOutput {
            checksum,
            work: None,
            summary: summary.into(),
        }
    }

    /// Output for work-metric apps.
    pub fn with_work(checksum: u64, work: u64, summary: impl Into<String>) -> Self {
        RunOutput {
            checksum,
            work: Some(work),
            summary: summary.into(),
        }
    }
}

/// How a benchmark validates a run (§III-A "Self-verification").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// The output was checked directly (e.g. sortedness + permutation
    /// checksum, known n-queens solution counts, LU residual).
    SelfChecked,
    /// The output must equal the serial run's output (the paper's third
    /// method); the runner performs the comparison.
    AgainstSerial,
    /// Verification failed, with an explanation.
    Failed(String),
}

/// One BOTS application. Implementations live in the kernel crates; the
/// registry in the facade crate collects them.
pub trait Benchmark: Send + Sync {
    /// Table I metadata.
    fn meta(&self) -> BenchMeta;

    /// Human description of a class's input (Table II "Input" column).
    fn input_desc(&self, class: InputClass) -> String;

    /// The versions this application ships (most: the 6-way
    /// single-generator matrix; SparseLU and Alignment add `for`-generator
    /// versions; FFT/Sort/Alignment/SparseLU have no app cut-off so their
    /// manual/if versions coincide with nocutoff — kernels list what is
    /// meaningful).
    fn versions(&self) -> Vec<VersionSpec>;

    /// Reference sequential run.
    fn run_serial(&self, class: InputClass) -> RunOutput;

    /// Parallel run of a given version on the provided runtime.
    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput;

    /// Validates an output. `AgainstSerial` defers to the runner, which
    /// compares with [`run_serial`](Self::run_serial).
    fn verify(&self, class: InputClass, output: &RunOutput) -> Verification;

    /// Instrumented serial run for Table II: returns the probe tallies.
    fn characterize(&self, class: InputClass) -> RawCounts;

    /// The version the paper found best on this app (Figure 3 legend), used
    /// as the default for the overall-evaluation figure.
    fn best_version(&self) -> VersionSpec {
        self.versions().into_iter().next().unwrap_or_default()
    }
}

/// FNV-1a accumulator for order-independent checksums built by XOR-folding
/// per-item hashes (so task completion order cannot change the digest).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes one `u64` through FNV-1a (for checksum folding).
pub fn fnv1a_u64(v: u64) -> u64 {
    fnv1a(&v.to_le_bytes())
}

/// Hashes an `f64` by total bit pattern, mapping `-0.0` to `0.0` so
/// algebraically-identical results hash identically.
pub fn fnv1a_f64(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    fnv1a(&v.to_bits().to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn f64_hash_normalises_negative_zero() {
        assert_eq!(fnv1a_f64(0.0), fnv1a_f64(-0.0));
        assert_ne!(fnv1a_f64(1.0), fnv1a_f64(-1.0));
    }

    #[test]
    fn run_output_constructors() {
        let a = RunOutput::new(42, "answer");
        assert_eq!(a.checksum, 42);
        assert!(a.work.is_none());
        let b = RunOutput::with_work(1, 999, "nodes");
        assert_eq!(b.work, Some(999));
    }
}
