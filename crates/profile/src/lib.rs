//! # bots-profile — instrumentation and per-task characterisation
//!
//! The machinery behind the paper's Table II ("application characteristics
//! with the medium input sets"): a zero-cost [`Probe`] trait that the
//! kernels' reference implementations are generic over, a [`CountingProbe`]
//! that tallies arithmetic operations / writes / captured-environment bytes /
//! taskwaits at the same program points the paper instrumented, a
//! [`CountingAlloc`] global allocator for the memory column, and the
//! [`Characteristics`] report with the paper's derived columns (ops per
//! task, % non-private writes, ops per (non-private) write, ...).
//!
//! ```
//! use bots_profile::{CountingProbe, Probe, Characteristics};
//!
//! fn kernel<P: Probe>(p: &P) -> u64 {
//!     let mut acc = 0;
//!     for i in 0..10u64 {
//!         p.task(8);          // a task-creation point capturing 8 bytes
//!         acc += i;           // one addition...
//!         p.ops(1);
//!         p.write_shared(1);  // ...written to shared memory
//!     }
//!     p.taskwait();
//!     acc
//! }
//!
//! let probe = CountingProbe::new();
//! kernel(&probe);
//! let counts = probe.counts();
//! assert_eq!(counts.tasks, 10);
//! assert_eq!(counts.ops, 10);
//! let row = Characteristics {
//!     app: "demo".into(), input: "10".into(),
//!     serial_time: std::time::Duration::from_millis(1),
//!     memory_bytes: 0, counts,
//! };
//! assert_eq!(row.ops_per_task(), 1.0);
//! ```

#![warn(missing_docs)]

mod alloc;
mod probe;
mod report;

pub use alloc::{alloc_calls, current_bytes, peak_bytes, reset_peak, CountingAlloc};
pub use probe::{CountingProbe, NullProbe, Probe, RawCounts};
pub use report::{fmt_bytes, fmt_count, fmt_duration, table2_header, Characteristics};

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let ((), d) = timed(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(d >= std::time::Duration::from_millis(4));
    }
}
