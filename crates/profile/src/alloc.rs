//! A counting global allocator for the Table II "Memory size" column.
//!
//! Wraps the system allocator and tracks current and peak live bytes. The
//! harness binary that produces Table II installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;
//! ```
//!
//! and brackets each kernel run with [`reset_peak`] / [`peak_bytes`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

/// A counting allocator wrapper around the system allocator; see the
/// module-level docs for usage.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            track_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            track_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            track_alloc(new_size as u64);
        }
        p
    }
}

#[inline]
fn track_alloc(size: u64) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
    CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Live heap bytes right now (as seen by the counting allocator).
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Number of allocation calls (`alloc`, `alloc_zeroed`, and the allocating
/// half of `realloc`) since process start. Monotonic; diff two readings to
/// count the allocations a code region performed — this is what the
/// runtime's zero-allocation-spawn test asserts on.
pub fn alloc_calls() -> u64 {
    CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests do not install the allocator globally (that would affect the
    // whole test binary); they exercise the raw GlobalAlloc entry points.
    #[test]
    fn tracks_alloc_and_dealloc() {
        let a = CountingAlloc;
        reset_peak();
        let before = current_bytes();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(current_bytes() - before, 4096);
        assert!(peak_bytes() >= before + 4096);
        unsafe { a.dealloc(p, layout) };
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn realloc_adjusts_current() {
        let a = CountingAlloc;
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let p = unsafe { a.alloc(layout) };
        let before = current_bytes();
        let q = unsafe { a.realloc(p, layout, 2048) };
        assert!(!q.is_null());
        assert_eq!(current_bytes(), before + 1024);
        unsafe { a.dealloc(q, Layout::from_size_align(2048, 8).unwrap()) };
    }

    #[test]
    fn peak_reset() {
        let a = CountingAlloc;
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        let p = unsafe { a.alloc(layout) };
        unsafe { a.dealloc(p, layout) };
        assert!(peak_bytes() >= current_bytes() + (1 << 16) - 64);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }
}
