//! The instrumentation probe: the paper's "specially profiled version where
//! the compiler added additional code", as a zero-cost abstraction.
//!
//! Every kernel's reference implementation is generic over a [`Probe`]. In
//! timing runs it is instantiated with [`NullProbe`], whose methods are empty
//! `#[inline(always)]` calls that vanish at `-O`; the characterisation run
//! (Table II) instantiates [`CountingProbe`], which tallies the same events
//! the paper counts:
//!
//! * arithmetic operations,
//! * writes, split into task-private and non-private ("writes that do not
//!   reference a task private variable and, thus, can be affected by
//!   locality decisions"),
//! * writes to the captured environment (the `firstprivate` copies),
//! * task-creation points and the bytes captured into each task,
//! * `taskwait`s.
//!
//! Counts are *actual operations ... independent of the architecture*
//! (paper, §III-B): they are emitted at fixed program points, not sampled
//! from hardware counters.

use std::cell::Cell;

/// Event sink threaded through the instrumented kernels.
pub trait Probe {
    /// `n` arithmetic operations happened.
    fn ops(&self, n: u64);
    /// `n` writes to task-private memory.
    fn write_private(&self, n: u64);
    /// `n` writes to non-private (shared / locality-sensitive) memory.
    fn write_shared(&self, n: u64);
    /// `n` writes into the captured environment (`firstprivate` copies).
    /// These are also private writes; implementations count them in both
    /// tallies.
    fn write_env(&self, n: u64);
    /// A task-creation point was reached; the task would capture
    /// `env_bytes` bytes from its parent.
    fn task(&self, env_bytes: u64);
    /// A `taskwait` (or equivalent barrier) was executed.
    fn taskwait(&self);
}

/// The do-nothing probe used by timing runs; optimises out entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn ops(&self, _n: u64) {}
    #[inline(always)]
    fn write_private(&self, _n: u64) {}
    #[inline(always)]
    fn write_shared(&self, _n: u64) {}
    #[inline(always)]
    fn write_env(&self, _n: u64) {}
    #[inline(always)]
    fn task(&self, _env_bytes: u64) {}
    #[inline(always)]
    fn taskwait(&self) {}
}

/// Tallying probe for the serial characterisation run (single-threaded, so
/// plain `Cell` counters suffice).
#[derive(Debug, Default)]
pub struct CountingProbe {
    ops: Cell<u64>,
    writes_private: Cell<u64>,
    writes_shared: Cell<u64>,
    writes_env: Cell<u64>,
    env_bytes: Cell<u64>,
    tasks: Cell<u64>,
    taskwaits: Cell<u64>,
}

impl CountingProbe {
    /// Fresh, zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the tallies into a [`RawCounts`].
    pub fn counts(&self) -> RawCounts {
        RawCounts {
            ops: self.ops.get(),
            writes_private: self.writes_private.get(),
            writes_shared: self.writes_shared.get(),
            writes_env: self.writes_env.get(),
            env_bytes: self.env_bytes.get(),
            tasks: self.tasks.get(),
            taskwaits: self.taskwaits.get(),
        }
    }
}

impl Probe for CountingProbe {
    #[inline]
    fn ops(&self, n: u64) {
        self.ops.set(self.ops.get() + n);
    }
    #[inline]
    fn write_private(&self, n: u64) {
        self.writes_private.set(self.writes_private.get() + n);
    }
    #[inline]
    fn write_shared(&self, n: u64) {
        self.writes_shared.set(self.writes_shared.get() + n);
    }
    #[inline]
    fn write_env(&self, n: u64) {
        // Environment copies are private memory of the new task.
        self.writes_env.set(self.writes_env.get() + n);
        self.writes_private.set(self.writes_private.get() + n);
    }
    #[inline]
    fn task(&self, env_bytes: u64) {
        self.tasks.set(self.tasks.get() + 1);
        self.env_bytes.set(self.env_bytes.get() + env_bytes);
    }
    #[inline]
    fn taskwait(&self) {
        self.taskwaits.set(self.taskwaits.get() + 1);
    }
}

/// Raw event totals from one instrumented run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RawCounts {
    /// Arithmetic operations.
    pub ops: u64,
    /// Writes to task-private memory (includes environment writes).
    pub writes_private: u64,
    /// Writes to non-private memory.
    pub writes_shared: u64,
    /// Writes to captured environments.
    pub writes_env: u64,
    /// Total bytes captured into task environments.
    pub env_bytes: u64,
    /// Potential tasks (task-creation points reached).
    pub tasks: u64,
    /// Taskwaits.
    pub taskwaits: u64,
}

impl RawCounts {
    /// All writes, private and not.
    pub fn writes_total(&self) -> u64 {
        self.writes_private + self.writes_shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy instrumented kernel used by several tests.
    fn toy_kernel<P: Probe>(p: &P, n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            p.task(16);
            acc = acc.wrapping_add(i * i);
            p.ops(2);
            p.write_private(1);
            if i % 4 == 0 {
                p.write_shared(1);
            }
        }
        p.taskwait();
        acc
    }

    #[test]
    fn null_probe_changes_nothing() {
        let a = toy_kernel(&NullProbe, 100);
        let p = CountingProbe::new();
        let b = toy_kernel(&p, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn counting_probe_tallies() {
        let p = CountingProbe::new();
        toy_kernel(&p, 100);
        let c = p.counts();
        assert_eq!(c.tasks, 100);
        assert_eq!(c.ops, 200);
        assert_eq!(c.writes_private, 100);
        assert_eq!(c.writes_shared, 25);
        assert_eq!(c.writes_total(), 125);
        assert_eq!(c.env_bytes, 1600);
        assert_eq!(c.taskwaits, 1);
    }

    #[test]
    fn env_writes_count_as_private() {
        let p = CountingProbe::new();
        p.write_env(7);
        let c = p.counts();
        assert_eq!(c.writes_env, 7);
        assert_eq!(c.writes_private, 7);
        assert_eq!(c.writes_shared, 0);
    }
}
