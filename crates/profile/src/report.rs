//! Table II row computation and formatting: turns [`RawCounts`] plus wall
//! time and peak memory into the paper's per-task characteristics.

use std::time::Duration;

use crate::probe::RawCounts;

/// One row of the paper's Table II ("Application characteristics with the
/// medium input sets"). Derived quantities are computed on demand so raw
/// counts stay exact.
#[derive(Debug, Clone)]
pub struct Characteristics {
    /// Application name.
    pub app: String,
    /// Human description of the input (e.g. "100 proteins").
    pub input: String,
    /// Serial wall-clock time of the (uninstrumented) reference run.
    pub serial_time: Duration,
    /// Peak heap in bytes during the serial run (counting allocator).
    pub memory_bytes: u64,
    /// Raw instrumentation totals.
    pub counts: RawCounts,
}

impl Characteristics {
    /// Number of potential tasks (task-creation points reached).
    pub fn potential_tasks(&self) -> u64 {
        self.counts.tasks
    }

    /// Average arithmetic operations per task.
    pub fn ops_per_task(&self) -> f64 {
        ratio(self.counts.ops, self.counts.tasks)
    }

    /// Average taskwaits per task.
    pub fn taskwaits_per_task(&self) -> f64 {
        ratio(self.counts.taskwaits, self.counts.tasks)
    }

    /// Average captured-environment size in bytes per task.
    pub fn env_bytes_per_task(&self) -> f64 {
        ratio(self.counts.env_bytes, self.counts.tasks)
    }

    /// Average writes to the captured environment per task.
    pub fn env_writes_per_task(&self) -> f64 {
        ratio(self.counts.writes_env, self.counts.tasks)
    }

    /// Percentage of writes that touch non-private data.
    pub fn pct_nonprivate_writes(&self) -> f64 {
        100.0 * ratio(self.counts.writes_shared, self.counts.writes_total())
    }

    /// Arithmetic operations per write (any kind). Low values mean
    /// memory-bound.
    pub fn ops_per_write(&self) -> f64 {
        ratio(self.counts.ops, self.counts.writes_total())
    }

    /// Arithmetic operations per non-private write; `None` when the kernel
    /// performs no non-private writes (the paper prints "-").
    pub fn ops_per_nonprivate_write(&self) -> Option<f64> {
        if self.counts.writes_shared == 0 {
            None
        } else {
            Some(self.counts.ops as f64 / self.counts.writes_shared as f64)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Formats a count the way the paper does: `4950`, `≃ 14 M`, `≃ 40 G`.
pub fn fmt_count(v: f64) -> String {
    let abs = v.abs();
    if abs >= 1e9 {
        format!("≃ {:.0} G", v / 1e9)
    } else if abs >= 1e6 {
        format!("≃ {:.0} M", v / 1e6)
    } else if abs >= 10_000.0 {
        format!("≃ {:.0} K", v / 1e3)
    } else if abs >= 100.0 || (v.fract() == 0.0 && abs >= 1.0) {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a byte count: `4 B`, `5.0 KB`, `3.2 MB`, `4.7 GB`.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration in the paper's style: `44.4 s`, `137 s`, `98.73 s`.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

impl std::fmt::Display for Characteristics {
    /// One pipe-separated Table II row.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} | {:<28} | {:>9} | {:>9} | {:>9} | {:>11} | {:>9} | {:>9} | {:>8} | {:>7} | {:>8} | {:>9}",
            self.app,
            self.input,
            fmt_duration(self.serial_time),
            fmt_bytes(self.memory_bytes),
            fmt_count(self.potential_tasks() as f64),
            fmt_count(self.ops_per_task()),
            format!("{:.2}", self.taskwaits_per_task()),
            fmt_count(self.env_bytes_per_task()),
            format!("{:.2}", self.env_writes_per_task()),
            format!("{:.2}%", self.pct_nonprivate_writes()),
            format!("{:.2}", self.ops_per_write()),
            match self.ops_per_nonprivate_write() {
                Some(v) => fmt_count(v),
                None => "-".to_string(),
            },
        )
    }
}

/// Header matching [`Characteristics`]'s `Display` columns.
pub fn table2_header() -> String {
    format!(
        "{:<10} | {:<28} | {:>9} | {:>9} | {:>9} | {:>11} | {:>9} | {:>9} | {:>8} | {:>7} | {:>8} | {:>9}",
        "App",
        "Input",
        "SerialT",
        "Memory",
        "#Tasks",
        "Ops/task",
        "Waits/t",
        "Env B/t",
        "EnvW/t",
        "%NonPriv",
        "Ops/W",
        "Ops/NPW",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Characteristics {
        Characteristics {
            app: "fib".into(),
            input: "30".into(),
            serial_time: Duration::from_millis(1500),
            memory_bytes: 3 * 1024 * 1024,
            counts: RawCounts {
                ops: 1000,
                writes_private: 0,
                writes_shared: 400,
                writes_env: 0,
                env_bytes: 1600,
                tasks: 400,
                taskwaits: 200,
            },
        }
    }

    #[test]
    fn derived_columns() {
        let c = sample();
        assert_eq!(c.potential_tasks(), 400);
        assert!((c.ops_per_task() - 2.5).abs() < 1e-12);
        assert!((c.taskwaits_per_task() - 0.5).abs() < 1e-12);
        assert!((c.env_bytes_per_task() - 4.0).abs() < 1e-12);
        assert!((c.pct_nonprivate_writes() - 100.0).abs() < 1e-12);
        assert!((c.ops_per_write() - 2.5).abs() < 1e-12);
        assert!((c.ops_per_nonprivate_write().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_shared_writes_prints_dash() {
        let mut c = sample();
        c.counts.writes_shared = 0;
        assert!(c.ops_per_nonprivate_write().is_none());
        assert!(format!("{c}").ends_with('-'));
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(4950.0), "4950");
        assert_eq!(fmt_count(14_000_000.0), "≃ 14 M");
        assert_eq!(fmt_count(40_000_000_000.0), "≃ 40 G");
        assert_eq!(fmt_count(2.5), "2.50");
        assert_eq!(fmt_count(463.7), "464");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(5 * 1024), "5.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 + 200 * 1024), "3.2 MB");
        assert_eq!(fmt_bytes(47 * 1024 * 1024 * 1024 / 10), "4.7 GB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(120)), "120.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(44.4)), "44.40 s");
        assert_eq!(fmt_duration(Duration::from_secs(137)), "137 s");
    }

    #[test]
    fn header_and_row_align() {
        let c = sample();
        let header = table2_header();
        let row = format!("{c}");
        assert_eq!(header.matches('|').count(), row.matches('|').count());
    }

    #[test]
    fn empty_counts_do_not_divide_by_zero() {
        let c = Characteristics {
            app: "x".into(),
            input: "y".into(),
            serial_time: Duration::ZERO,
            memory_bytes: 0,
            counts: RawCounts::default(),
        };
        assert_eq!(c.ops_per_task(), 0.0);
        assert_eq!(c.pct_nonprivate_writes(), 0.0);
        assert!(c.ops_per_nonprivate_write().is_none());
    }
}
