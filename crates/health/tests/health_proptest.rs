//! Property tests for Health: parallel determinism (exact serial equality)
//! and patient conservation over arbitrary parameter points.

use bots_health::{build_tree, simulate_parallel, simulate_serial, HealthMode, Params, Village};
use bots_profile::NullProbe;
use bots_runtime::Runtime;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = Params> {
    (
        2u32..4,
        2usize..4,
        20u32..120,
        2u32..20,
        20u32..80,
        (0.001f64..0.03),
        any::<u64>(),
    )
        .prop_map(
            |(levels, branch, population, personnel, sim_time, sick_p, seed)| {
                let mut p = Params::base();
                p.levels = levels;
                p.branch = branch;
                p.population = population;
                p.personnel = personnel;
                p.sim_time = sim_time;
                p.get_sick_p = sick_p;
                p.seed = seed;
                p
            },
        )
}

fn in_system(v: &Village) -> u64 {
    let d = &v.data;
    let own = (d.waiting.len() + d.assess.len() + d.inside.len() + d.realloc_up.len()) as u64;
    own + v.children.iter().map(in_system).sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_is_exactly_serial(
        params in params_strategy(),
        threads in 1usize..5,
        mode_pick in 0u8..3,
        untied in any::<bool>(),
        cutoff in 0u32..3,
    ) {
        let mut reference = build_tree(&params);
        let want = simulate_serial(&NullProbe, &params, &mut reference);

        let mode = match mode_pick {
            0 => HealthMode::NoCutoff,
            1 => HealthMode::IfClause,
            _ => HealthMode::Manual,
        };
        let rt = Runtime::with_threads(threads);
        let mut tree = build_tree(&params);
        let got = simulate_parallel(&rt, &params, &mut tree, mode, untied, cutoff);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sick_patients_are_conserved(params in params_strategy()) {
        let mut tree = build_tree(&params);
        let stats = simulate_serial(&NullProbe, &params, &mut tree);
        prop_assert_eq!(stats.total_sick, stats.discharged + in_system(&tree));
    }

    #[test]
    fn personnel_never_leak(params in params_strategy()) {
        // After the run, free + occupied staff must equal the configured
        // personnel in every village (occupied = assess + inside lists).
        let mut tree = build_tree(&params);
        simulate_serial(&NullProbe, &params, &mut tree);
        fn check(v: &Village, personnel: u32) -> bool {
            let d = &v.data;
            let occupied = (d.assess.len() + d.inside.len()) as u32;
            d.personnel_free + occupied == personnel
                && v.children.iter().all(|c| check(c, personnel))
        }
        prop_assert!(check(&tree, params.personnel));
    }
}
