//! Arena-backed doubly-linked patient lists.
//!
//! The Olden `health` kernel is a pointer-chasing, allocation-heavy
//! simulation built on doubly-linked lists. A Rust translation with
//! `Box`-per-node doubly-linked lists would be all `unsafe`; instead each
//! village owns a slab arena of patient nodes and the hospital lists link
//! node *indices*. This keeps the list traversal + unlink/append flavour
//! (and the per-village memory locality the paper's Table II discussion
//! cares about) in safe code.

/// Handle to a patient node within one arena.
pub type NodeId = u32;

const NIL: u32 = u32::MAX;

/// One patient's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Patient {
    /// Simulation ticks left in the current hospital list.
    pub remaining: u32,
    /// Hospitals this patient has entered.
    pub hosps_visited: u32,
    /// Total ticks spent in hospitals so far.
    pub time_in_system: u32,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    patient: Patient,
    prev: u32,
    next: u32,
    /// Guards against double-free/misuse in debug builds.
    live: bool,
}

/// Slab arena of patient nodes with an internal free list.
#[derive(Debug, Default)]
pub struct Arena {
    nodes: Vec<Node>,
    free: Vec<u32>,
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Allocates a node, reusing freed slots first.
    pub fn alloc(&mut self, patient: Patient) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = Node {
                patient,
                prev: NIL,
                next: NIL,
                live: true,
            };
            id
        } else {
            self.nodes.push(Node {
                patient,
                prev: NIL,
                next: NIL,
                live: true,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Releases a node back to the free list, returning its payload.
    pub fn release(&mut self, id: NodeId) -> Patient {
        let node = &mut self.nodes[id as usize];
        debug_assert!(node.live, "release of dead node");
        node.live = false;
        self.free.push(id);
        node.patient
    }

    /// Payload accessor.
    pub fn patient(&self, id: NodeId) -> &Patient {
        debug_assert!(self.nodes[id as usize].live);
        &self.nodes[id as usize].patient
    }

    /// Mutable payload accessor.
    pub fn patient_mut(&mut self, id: NodeId) -> &mut Patient {
        debug_assert!(self.nodes[id as usize].live);
        &mut self.nodes[id as usize].patient
    }

    /// Live node count (O(capacity); diagnostics only).
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.live).count()
    }
}

/// A doubly-linked list of nodes within some arena. The list itself holds
/// no arena reference — operations take `&mut Arena` — so a village can own
/// one arena and several lists over it.
#[derive(Debug, Clone, Copy)]
pub struct List {
    head: u32,
    tail: u32,
    len: usize,
}

impl Default for List {
    fn default() -> Self {
        List::new()
    }
}

impl List {
    /// Empty list.
    pub const fn new() -> Self {
        List {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First node, if any.
    pub fn head(&self) -> Option<NodeId> {
        (self.head != NIL).then_some(self.head)
    }

    /// Node after `id`.
    pub fn next(&self, arena: &Arena, id: NodeId) -> Option<NodeId> {
        let n = arena.nodes[id as usize].next;
        (n != NIL).then_some(n)
    }

    /// Appends a node at the tail.
    pub fn push_back(&mut self, arena: &mut Arena, id: NodeId) {
        let node = &mut arena.nodes[id as usize];
        debug_assert!(node.live);
        node.prev = self.tail;
        node.next = NIL;
        if self.tail != NIL {
            arena.nodes[self.tail as usize].next = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
    }

    /// Unlinks a node (which stays allocated).
    pub fn unlink(&mut self, arena: &mut Arena, id: NodeId) {
        let (prev, next) = {
            let n = &arena.nodes[id as usize];
            debug_assert!(n.live);
            (n.prev, n.next)
        };
        if prev != NIL {
            arena.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            arena.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let n = &mut arena.nodes[id as usize];
        n.prev = NIL;
        n.next = NIL;
        self.len -= 1;
    }

    /// Removes the head, returning it.
    pub fn pop_front(&mut self, arena: &mut Arena) -> Option<NodeId> {
        let id = self.head();
        if let Some(id) = id {
            self.unlink(arena, id);
        }
        id
    }

    /// Walks the list front to back, collecting ids (the traversal pattern
    /// of the simulation loop; collect-then-mutate keeps borrows simple).
    pub fn ids(&self, arena: &Arena) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(cur);
            cur = arena.nodes[cur as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_reuses_slots() {
        let mut a = Arena::new();
        let id1 = a.alloc(Patient::default());
        a.release(id1);
        let id2 = a.alloc(Patient {
            remaining: 5,
            ..Default::default()
        });
        assert_eq!(id1, id2, "freed slot must be reused");
        assert_eq!(a.patient(id2).remaining, 5);
        assert_eq!(a.live_count(), 1);
    }

    #[test]
    fn push_and_walk_order() {
        let mut a = Arena::new();
        let mut l = List::new();
        let ids: Vec<_> = (0..5u32)
            .map(|i| {
                let id = a.alloc(Patient {
                    remaining: i,
                    ..Default::default()
                });
                l.push_back(&mut a, id);
                id
            })
            .collect();
        assert_eq!(l.ids(&a), ids);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn unlink_middle_head_tail() {
        let mut a = Arena::new();
        let mut l = List::new();
        let ids: Vec<_> = (0..4u32)
            .map(|_| {
                let id = a.alloc(Patient::default());
                l.push_back(&mut a, id);
                id
            })
            .collect();
        l.unlink(&mut a, ids[1]); // middle
        assert_eq!(l.ids(&a), vec![ids[0], ids[2], ids[3]]);
        l.unlink(&mut a, ids[0]); // head
        assert_eq!(l.ids(&a), vec![ids[2], ids[3]]);
        l.unlink(&mut a, ids[3]); // tail
        assert_eq!(l.ids(&a), vec![ids[2]]);
        l.unlink(&mut a, ids[2]); // last
        assert!(l.is_empty());
        assert_eq!(l.ids(&a), Vec::<NodeId>::new());
    }

    #[test]
    fn pop_front_is_fifo() {
        let mut a = Arena::new();
        let mut l = List::new();
        for i in 0..3u32 {
            let id = a.alloc(Patient {
                remaining: i,
                ..Default::default()
            });
            l.push_back(&mut a, id);
        }
        let mut seen = Vec::new();
        while let Some(id) = l.pop_front(&mut a) {
            seen.push(a.release(id).remaining);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn relink_after_unlink() {
        let mut a = Arena::new();
        let mut l1 = List::new();
        let mut l2 = List::new();
        let id = a.alloc(Patient::default());
        l1.push_back(&mut a, id);
        l1.unlink(&mut a, id);
        l2.push_back(&mut a, id);
        assert!(l1.is_empty());
        assert_eq!(l2.ids(&a), vec![id]);
    }
}
