//! The village hierarchy and simulation parameters.

use bots_inputs::Rng;

use crate::arena::{Arena, List};

/// Simulation parameters (one struct per input class).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tree depth (root level = `levels`, leaves = 1).
    pub levels: u32,
    /// Children per non-leaf village.
    pub branch: usize,
    /// Healthy residents per village at start.
    pub population: u32,
    /// Hospital staff per village (bounds concurrent assessments).
    pub personnel: u32,
    /// Simulation length in ticks.
    pub sim_time: u32,
    /// Ticks an assessment takes.
    pub assess_time: u32,
    /// Ticks a convalescence treatment takes.
    pub convalescence_time: u32,
    /// Probability a healthy resident falls ill per tick.
    pub get_sick_p: f64,
    /// Probability an assessed patient needs convalescence treatment.
    pub convalescence_p: f64,
    /// Probability an assessed patient is reallocated to the next level up.
    pub realloc_p: f64,
    /// Master seed; village seeds derive from it (the paper's determinism
    /// fix: "instead of a single seed ... one seed for each village").
    pub seed: u64,
}

impl Params {
    /// The default parameter set, scaled by class elsewhere.
    pub fn base() -> Params {
        Params {
            levels: 4,
            branch: 4,
            population: 1000,
            personnel: 30,
            sim_time: 200,
            assess_time: 3,
            convalescence_time: 10,
            get_sick_p: 0.002,
            convalescence_p: 0.45,
            realloc_p: 0.3,
            seed: 0x4EA1_74D0,
        }
    }

    /// Number of villages in the whole tree.
    pub fn total_villages(&self) -> usize {
        // branch^0 + branch^1 + ... + branch^(levels-1)
        let mut total = 0usize;
        let mut layer = 1usize;
        for _ in 0..self.levels {
            total += layer;
            layer *= self.branch;
        }
        total
    }
}

/// Per-village accumulated statistics (the verification payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Residents who fell ill.
    pub total_sick: u64,
    /// Patients who finished treatment and went home.
    pub discharged: u64,
    /// Patients sent up the hierarchy.
    pub reallocated: u64,
    /// Sum over ticks of the waiting-list length (waiting pressure).
    pub waiting_ticks: u64,
    /// Sum over ticks of patients under assessment.
    pub assess_ticks: u64,
    /// Sum over ticks of patients in treatment.
    pub inside_ticks: u64,
}

impl Stats {
    /// Elementwise accumulation.
    pub fn add(&mut self, o: &Stats) {
        self.total_sick += o.total_sick;
        self.discharged += o.discharged;
        self.reallocated += o.reallocated;
        self.waiting_ticks += o.waiting_ticks;
        self.assess_ticks += o.assess_ticks;
        self.inside_ticks += o.inside_ticks;
    }

    /// Order-independent digest for verification.
    pub fn digest(&self) -> u64 {
        use bots_suite::fnv1a_u64;
        fnv1a_u64(self.total_sick)
            ^ fnv1a_u64(self.discharged).rotate_left(7)
            ^ fnv1a_u64(self.reallocated).rotate_left(17)
            ^ fnv1a_u64(self.waiting_ticks).rotate_left(27)
            ^ fnv1a_u64(self.assess_ticks).rotate_left(37)
            ^ fnv1a_u64(self.inside_ticks).rotate_left(47)
    }
}

/// The mutable core of one village: its arena, hospital lists, RNG and
/// counters. Split from the children so the borrow checker can hand the
/// children to tasks while the parent works on its own lists.
#[derive(Debug)]
pub struct VillageData {
    /// Level in the hierarchy (leaves = 1).
    pub level: u32,
    /// This village's own random stream.
    pub rng: Rng,
    /// Healthy residents.
    pub population: u32,
    /// Free hospital staff.
    pub personnel_free: u32,
    /// Patient node storage.
    pub arena: Arena,
    /// Queue for a free staff member.
    pub waiting: List,
    /// Under assessment.
    pub assess: List,
    /// Under convalescence treatment.
    pub inside: List,
    /// To be pushed to the parent at the end of the tick.
    pub realloc_up: List,
    /// Accumulated statistics.
    pub stats: Stats,
}

/// A village and its subtree.
#[derive(Debug)]
pub struct Village {
    /// Own state.
    pub data: VillageData,
    /// Child villages (empty at level 1).
    pub children: Vec<Village>,
}

/// Builds the village tree; each village derives its own seed from its
/// position (stream id) in the tree.
pub fn build_tree(params: &Params) -> Village {
    let root_rng = Rng::new(params.seed);
    let mut next_id = 0u64;
    build(params, params.levels, &root_rng, &mut next_id)
}

fn build(params: &Params, level: u32, root_rng: &Rng, next_id: &mut u64) -> Village {
    let id = *next_id;
    *next_id += 1;
    let data = VillageData {
        level,
        rng: root_rng.derive(id),
        population: params.population,
        personnel_free: params.personnel,
        arena: Arena::new(),
        waiting: List::new(),
        assess: List::new(),
        inside: List::new(),
        realloc_up: List::new(),
        stats: Stats::default(),
    };
    let children = if level > 1 {
        (0..params.branch)
            .map(|_| build(params, level - 1, root_rng, next_id))
            .collect()
    } else {
        Vec::new()
    };
    Village { data, children }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let mut p = Params::base();
        p.levels = 3;
        p.branch = 4;
        let tree = build_tree(&p);
        assert_eq!(tree.data.level, 3);
        assert_eq!(tree.children.len(), 4);
        assert_eq!(tree.children[0].children.len(), 4);
        assert!(tree.children[0].children[0].children.is_empty());
        assert_eq!(p.total_villages(), 1 + 4 + 16);
    }

    #[test]
    fn villages_have_distinct_seeds() {
        let mut p = Params::base();
        p.levels = 2;
        let mut tree = build_tree(&p);
        let r0 = tree.data.rng.next_u64();
        let r1 = tree.children[0].data.rng.next_u64();
        let r2 = tree.children[1].data.rng.next_u64();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn build_is_deterministic() {
        let p = Params::base();
        let mut a = build_tree(&p);
        let mut b = build_tree(&p);
        assert_eq!(a.data.rng.next_u64(), b.data.rng.next_u64());
        assert_eq!(
            a.children[2].data.rng.next_u64(),
            b.children[2].data.rng.next_u64()
        );
    }

    #[test]
    fn stats_digest_changes_with_content() {
        let a = Stats {
            total_sick: 5,
            ..Default::default()
        };
        let b = Stats {
            discharged: 5,
            ..Default::default()
        };
        assert_ne!(a.digest(), b.digest());
        let mut c = a;
        c.add(&b);
        assert_eq!(c.total_sick, 5);
        assert_eq!(c.discharged, 5);
    }
}
