//! The simulation proper: per-tick village dynamics, the serial driver and
//! the task-parallel driver with the level-based cut-off.
//!
//! Determinism: every probabilistic decision draws from the *village's own*
//! RNG (the paper's fix), decisions are taken in list order, and children's
//! reallocation lists merge into the parent in child order after the
//! synchronisation point — so serial and parallel runs produce identical
//! statistics, which verification exploits.

use bots_profile::Probe;
use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::arena::Patient;
use crate::village::{Params, Stats, Village, VillageData};

/// One tick of a village's local dynamics (hospital lists + population).
pub fn local_step<P: Probe>(p: &P, params: &Params, v: &mut VillageData) {
    // 1. Treatment beds: tick down, discharge the done.
    for id in v.inside.ids(&v.arena) {
        let patient = v.arena.patient_mut(id);
        patient.remaining -= 1;
        patient.time_in_system += 1;
        if patient.remaining == 0 {
            v.inside.unlink(&mut v.arena, id);
            v.arena.release(id);
            v.population += 1;
            v.personnel_free += 1;
            v.stats.discharged += 1;
            p.write_private(4);
        }
        p.ops(2);
        p.write_private(2);
    }

    // 2. Assessments: tick down; at zero decide what happens next.
    for id in v.assess.ids(&v.arena) {
        let patient = v.arena.patient_mut(id);
        patient.remaining -= 1;
        patient.time_in_system += 1;
        p.ops(2);
        p.write_private(2);
        if patient.remaining == 0 {
            v.assess.unlink(&mut v.arena, id);
            let is_root = v.level == params_levels(params);
            if !is_root && v.rng.chance(params.realloc_p) {
                // Send upward; the staff member is freed here.
                v.personnel_free += 1;
                v.stats.reallocated += 1;
                v.realloc_up.push_back(&mut v.arena, id);
                p.write_shared(2); // parent-visible hand-off
            } else if v.rng.chance(params.convalescence_p) {
                // Keep the bed and the staff member for the treatment.
                v.arena.patient_mut(id).remaining = params.convalescence_time;
                v.inside.push_back(&mut v.arena, id);
                p.write_private(2);
            } else {
                // Healthy after assessment.
                v.arena.release(id);
                v.population += 1;
                v.personnel_free += 1;
                v.stats.discharged += 1;
                p.write_private(3);
            }
        }
    }

    // 3. Waiting room: staff pick up patients FIFO.
    while v.personnel_free > 0 && !v.waiting.is_empty() {
        let id = v.waiting.pop_front(&mut v.arena).expect("non-empty");
        v.arena.patient_mut(id).remaining = params.assess_time;
        v.assess.push_back(&mut v.arena, id);
        v.personnel_free -= 1;
        p.write_private(3);
    }
    for id in v.waiting.ids(&v.arena) {
        v.arena.patient_mut(id).time_in_system += 1;
        p.write_private(1);
    }

    // 4. Sickness: every healthy resident rolls the dice.
    let healthy = v.population;
    let mut fell_sick = 0u32;
    for _ in 0..healthy {
        if v.rng.chance(params.get_sick_p) {
            fell_sick += 1;
        }
    }
    p.ops(healthy as u64);
    for _ in 0..fell_sick {
        v.population -= 1;
        v.stats.total_sick += 1;
        let id = v.arena.alloc(Patient {
            remaining: 0,
            hosps_visited: 1,
            time_in_system: 0,
        });
        v.waiting.push_back(&mut v.arena, id);
        p.write_private(3);
    }

    // 5. Pressure statistics.
    v.stats.waiting_ticks += v.waiting.len() as u64;
    v.stats.assess_ticks += v.assess.len() as u64;
    v.stats.inside_ticks += v.inside.len() as u64;
    p.write_private(3);
}

// Root detection needs the configured tree height.
fn params_levels(params: &Params) -> u32 {
    params.levels
}

/// Moves everything a child reallocated upward into the parent's waiting
/// list (in child order — determinism).
pub fn merge_realloc<P: Probe>(p: &P, parent: &mut VillageData, child: &mut VillageData) {
    while let Some(id) = child.realloc_up.pop_front(&mut child.arena) {
        let mut patient = child.arena.release(id);
        patient.hosps_visited += 1;
        patient.remaining = 0;
        let new_id = parent.arena.alloc(patient);
        parent.waiting.push_back(&mut parent.arena, new_id);
        p.write_shared(3);
    }
}

/// One serial tick over the whole subtree (children first, then local work,
/// then upward merges — same dataflow as the parallel version).
pub fn sim_step_serial<P: Probe>(p: &P, params: &Params, v: &mut Village) {
    for child in v.children.iter_mut() {
        p.task(16); // each child tick is a potential task
        sim_step_serial(p, params, child);
    }
    local_step(p, params, &mut v.data);
    if !v.children.is_empty() {
        p.taskwait();
    }
    for child in v.children.iter_mut() {
        merge_realloc(p, &mut v.data, &mut child.data);
    }
}

/// Runs the full serial simulation, returning aggregate statistics.
pub fn simulate_serial<P: Probe>(p: &P, params: &Params, root: &mut Village) -> Stats {
    for _ in 0..params.sim_time {
        sim_step_serial(p, params, root);
    }
    collect_stats(root)
}

/// Cut-off style for the parallel simulation (level-based, per §III-B:
/// "Health comes with a cut-off mechanism based on the village level in
/// the hierarchy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthMode {
    /// A task per village at every level.
    NoCutoff,
    /// `if(level > cutoff_level)` clause.
    IfClause,
    /// Serial recursion below the cut-off level.
    Manual,
}

/// Runs the full parallel simulation.
pub fn simulate_parallel(
    rt: &Runtime,
    params: &Params,
    root: &mut Village,
    mode: HealthMode,
    untied: bool,
    cutoff_level: u32,
) -> Stats {
    let attrs = TaskAttrs::default().with_tied(!untied);
    let params = *params;
    rt.parallel(|s| {
        for _ in 0..params.sim_time {
            sim_step_parallel(s, &params, root, mode, attrs, cutoff_level);
        }
    });
    collect_stats(root)
}

fn sim_step_parallel(
    s: &Scope<'_>,
    params: &Params,
    v: &mut Village,
    mode: HealthMode,
    attrs: TaskAttrs,
    cutoff_level: u32,
) {
    let Village { data, children } = v;
    let level = data.level;
    s.taskgroup(|s| {
        for child in children.iter_mut() {
            match mode {
                HealthMode::Manual if level <= cutoff_level => {
                    sim_subtree_serial(params, child);
                }
                HealthMode::IfClause => {
                    let spawn_attrs = attrs.with_if(level > cutoff_level);
                    s.spawn_with(spawn_attrs, move |s| {
                        sim_step_parallel(s, params, child, mode, attrs, cutoff_level);
                    });
                }
                _ => {
                    s.spawn_with(attrs, move |s| {
                        sim_step_parallel(s, params, child, mode, attrs, cutoff_level);
                    });
                }
            }
        }
        // Local dynamics overlap the children ("once the lower levels have
        // been simulated synchronization occurs").
        local_step(&bots_profile::NullProbe, params, data);
    });
    for child in children.iter_mut() {
        merge_realloc(&bots_profile::NullProbe, data, &mut child.data);
    }
}

/// Serial descent used below the manual cut-off.
fn sim_subtree_serial(params: &Params, v: &mut Village) {
    for child in v.children.iter_mut() {
        sim_subtree_serial(params, child);
    }
    local_step(&bots_profile::NullProbe, params, &mut v.data);
    for child in v.children.iter_mut() {
        merge_realloc(&bots_profile::NullProbe, &mut v.data, &mut child.data);
    }
}

/// Sums statistics over the tree.
pub fn collect_stats(v: &Village) -> Stats {
    let mut total = v.data.stats;
    for child in &v.children {
        total.add(&collect_stats(child));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::village::build_tree;
    use bots_profile::NullProbe;

    fn small_params() -> Params {
        let mut p = Params::base();
        p.levels = 3;
        p.branch = 3;
        p.population = 60;
        p.sim_time = 80;
        p
    }

    #[test]
    fn serial_is_deterministic() {
        let params = small_params();
        let mut a = build_tree(&params);
        let mut b = build_tree(&params);
        let sa = simulate_serial(&NullProbe, &params, &mut a);
        let sb = simulate_serial(&NullProbe, &params, &mut b);
        assert_eq!(sa, sb);
        assert!(
            sa.total_sick > 0,
            "simulation must produce patients: {sa:?}"
        );
    }

    #[test]
    fn parallel_matches_serial_exactly_all_modes() {
        let params = small_params();
        let mut reference = build_tree(&params);
        let want = simulate_serial(&NullProbe, &params, &mut reference);

        let rt = Runtime::with_threads(4);
        for mode in [
            HealthMode::NoCutoff,
            HealthMode::IfClause,
            HealthMode::Manual,
        ] {
            for untied in [false, true] {
                let mut tree = build_tree(&params);
                let got = simulate_parallel(&rt, &params, &mut tree, mode, untied, 2);
                assert_eq!(got, want, "mode={mode:?} untied={untied}");
            }
        }
    }

    #[test]
    fn patients_flow_up_the_hierarchy() {
        let params = small_params();
        let mut tree = build_tree(&params);
        let stats = simulate_serial(&NullProbe, &params, &mut tree);
        assert!(
            stats.reallocated > 0,
            "expected upward reallocation: {stats:?}"
        );
        // Root waiting list should have received reallocated patients at
        // some point: waiting pressure at the root must be nonzero.
        assert!(tree.data.stats.waiting_ticks > 0);
    }

    #[test]
    fn conservation_of_patients() {
        // Everyone who fell sick is either discharged or still in a list.
        let params = small_params();
        let mut tree = build_tree(&params);
        let stats = simulate_serial(&NullProbe, &params, &mut tree);
        let still_in_system: u64 = in_system(&tree);
        assert_eq!(stats.total_sick, stats.discharged + still_in_system);
    }

    fn in_system(v: &Village) -> u64 {
        let d = &v.data;
        let own = (d.waiting.len() + d.assess.len() + d.inside.len() + d.realloc_up.len()) as u64;
        own + v.children.iter().map(in_system).sum::<u64>()
    }

    #[test]
    fn single_thread_parallel_matches() {
        let params = small_params();
        let mut reference = build_tree(&params);
        let want = simulate_serial(&NullProbe, &params, &mut reference);
        let rt = Runtime::with_threads(1);
        let mut tree = build_tree(&params);
        let got = simulate_parallel(&rt, &params, &mut tree, HealthMode::NoCutoff, false, 0);
        assert_eq!(got, want);
    }
}
