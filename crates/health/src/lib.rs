//! # bots-health — the BOTS Health kernel
//!
//! Simulates the Columbian Health Care System (via the Olden suite): a
//! multilevel hierarchy of villages, each with a population and a hospital
//! whose waiting / assessment / treatment lists are arena-backed linked
//! lists. Every tick, residents fall ill, staff assess and treat, and some
//! patients are reallocated to the next level up. A task simulates each
//! village; children synchronise before their reallocations merge upward.
//!
//! Determinism (the paper's §III-B fix): each village owns its own RNG
//! seed, so all probabilities inside a village are independent of task
//! scheduling — serial and parallel statistics match exactly.
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_health::{build_tree, simulate_parallel, HealthMode, Params};
//!
//! let mut params = Params::base();
//! params.levels = 3; params.sim_time = 50;
//! let mut tree = build_tree(&params);
//! let rt = Runtime::with_threads(2);
//! let stats = simulate_parallel(&rt, &params, &mut tree, HealthMode::Manual, false, 1);
//! assert!(stats.total_sick > 0);
//! ```
#![warn(missing_docs)]

mod arena;
mod bench;
mod sim;
mod village;

pub use arena::{Arena, List, NodeId, Patient};
pub use bench::{cutoff_for, params_for, HealthBench};
pub use sim::{
    collect_stats, local_step, merge_realloc, sim_step_serial, simulate_parallel, simulate_serial,
    HealthMode,
};
pub use village::{build_tree, Params, Stats, Village, VillageData};
