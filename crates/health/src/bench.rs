//! `Benchmark` wiring for Health.

use bots_inputs::InputClass;
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{
    BenchMeta, Benchmark, CutoffMode, RunOutput, Tiedness, Verification, VersionSpec,
};

use crate::sim::{simulate_parallel, simulate_serial, HealthMode};
use crate::village::{build_tree, Params};

/// Parameters per class: deeper trees and longer horizons as the class
/// grows (paper's medium is a 4-deep hierarchy).
pub fn params_for(class: InputClass) -> Params {
    let mut p = Params::base();
    p.levels = class.pick([3, 4, 5, 6]);
    p.sim_time = class.pick([100, 300, 1000, 1500]);
    p
}

/// Cut-off level per class (villages at or below this level simulate
/// serially in the manual version).
pub fn cutoff_for(class: InputClass) -> u32 {
    class.pick([1, 2, 2, 3])
}

/// Health as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct HealthBench;

impl Benchmark for HealthBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Health",
            origin: "Olden",
            domain: "Simulation",
            structure: "At each node",
            task_directives: 1,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "depth-based",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let p = params_for(class);
        format!("{} levels, {} villages", p.levels, p.total_villages())
    }

    fn versions(&self) -> Vec<VersionSpec> {
        VersionSpec::matrix(false)
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let params = params_for(class);
        let mut tree = build_tree(&params);
        let stats = simulate_serial(&NullProbe, &params, &mut tree);
        RunOutput::new(stats.digest(), format!("{stats:?}"))
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let params = params_for(class);
        let mut tree = build_tree(&params);
        let mode = match version.cutoff {
            CutoffMode::NoCutoff => HealthMode::NoCutoff,
            CutoffMode::IfClause => HealthMode::IfClause,
            CutoffMode::Manual => HealthMode::Manual,
        };
        let untied = version.tiedness == Tiedness::Untied;
        let stats = simulate_parallel(rt, &params, &mut tree, mode, untied, cutoff_for(class));
        RunOutput::new(stats.digest(), format!("{stats:?}"))
    }

    fn verify(&self, _class: InputClass, _output: &RunOutput) -> Verification {
        // Per-village seeds + ordered merges make the simulation exactly
        // deterministic: compare against the serial statistics.
        Verification::AgainstSerial
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let params = params_for(class);
        let mut tree = build_tree(&params);
        let p = CountingProbe::new();
        simulate_serial(&p, &params, &mut tree);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "health (manual-tied)".
        VersionSpec::default().cutoff(CutoffMode::Manual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_suite::runner;

    #[test]
    fn all_versions_verify_on_test_class() {
        let b = HealthBench;
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            runner::verify(&b, InputClass::Test, &out).unwrap();
        }
    }

    #[test]
    fn characterization_mixes_private_and_shared() {
        let c = HealthBench.characterize(InputClass::Test);
        // Paper: 12.33% non-private writes — mostly local list surgery with
        // some cross-village hand-offs.
        let pct = 100.0 * c.writes_shared as f64 / c.writes_total() as f64;
        assert!(pct > 0.0 && pct < 50.0, "non-private % = {pct}");
        assert!(c.tasks > 0);
    }

    #[test]
    fn input_desc_mentions_villages() {
        assert!(HealthBench
            .input_desc(InputClass::Test)
            .contains("villages"));
    }
}
