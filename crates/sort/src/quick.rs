//! The sequential leaves of cilksort: quicksort above 20 elements,
//! insertion sort below — exactly the thresholds the paper describes ("a
//! serial quicksort is used to increase the task granularity; to avoid the
//! overhead of quicksort, an insertion sort is used for very small arrays,
//! below a threshold of 20 elements").

use bots_profile::Probe;

/// Arrays at or below this length use insertion sort.
pub const INSERTION_THRESHOLD: usize = 20;

/// Insertion sort, instrumented.
pub fn insertion_sort<P: Probe>(p: &P, a: &mut [u32]) {
    for i in 1..a.len() {
        let v = a[i];
        let mut j = i;
        while j > 0 && a[j - 1] > v {
            a[j] = a[j - 1];
            j -= 1;
        }
        a[j] = v;
        p.ops((i - j + 1) as u64); // comparisons performed
        p.write_shared((i - j + 1) as u64); // element moves + final store
    }
}

/// Median-of-three pivot selection.
#[inline]
fn median3(a: u32, b: u32, c: u32) -> u32 {
    a.max(b).min(a.min(b).max(c))
}

/// Sequential quicksort with insertion-sort leaves, instrumented.
pub fn quicksort<P: Probe>(p: &P, a: &mut [u32]) {
    let mut stack: Vec<(usize, usize)> = vec![(0, a.len())];
    while let Some((lo, hi)) = stack.pop() {
        let len = hi - lo;
        if len <= INSERTION_THRESHOLD {
            insertion_sort(p, &mut a[lo..hi]);
            continue;
        }
        let pivot = median3(a[lo], a[lo + len / 2], a[hi - 1]);
        // Hoare partition.
        let (mut i, mut j) = (lo, hi - 1);
        loop {
            while a[i] < pivot {
                i += 1;
            }
            while a[j] > pivot {
                j -= 1;
            }
            p.ops(2);
            if i >= j {
                break;
            }
            a.swap(i, j);
            p.write_shared(2);
            i += 1;
            j = j.saturating_sub(1);
        }
        // j is the end of the left partition (inclusive).
        let mid = j + 1;
        debug_assert!(mid > lo && mid < hi, "partition must split");
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_inputs::arrays::random_u32s;
    use bots_profile::NullProbe;

    #[test]
    fn insertion_sorts_small() {
        let mut v = vec![5u32, 3, 9, 1, 1, 7, 0];
        insertion_sort(&NullProbe, &mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn quicksort_matches_std() {
        for (n, seed) in [
            (0usize, 1u64),
            (1, 2),
            (19, 3),
            (20, 4),
            (21, 5),
            (1000, 6),
            (4096, 7),
        ] {
            let mut v = random_u32s(n, seed);
            let mut expect = v.clone();
            expect.sort_unstable();
            quicksort(&NullProbe, &mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn quicksort_handles_duplicates() {
        let mut v = vec![7u32; 1000];
        v.extend([3u32; 500]);
        v.extend([9u32; 500]);
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&NullProbe, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn quicksort_sorted_and_reversed_inputs() {
        let mut asc: Vec<u32> = (0..5000).collect();
        let expect = asc.clone();
        quicksort(&NullProbe, &mut asc);
        assert_eq!(asc, expect);
        let mut desc: Vec<u32> = (0..5000).rev().collect();
        quicksort(&NullProbe, &mut desc);
        assert_eq!(desc, expect);
    }

    #[test]
    fn median3_cases() {
        assert_eq!(median3(1, 2, 3), 2);
        assert_eq!(median3(3, 1, 2), 2);
        assert_eq!(median3(2, 3, 1), 2);
        assert_eq!(median3(5, 5, 1), 5);
    }
}
