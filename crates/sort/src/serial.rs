//! Sequential cilksort: the same quarter-split + divide-and-conquer merge
//! recursion as the parallel version, executed on one thread. Serving as
//! the speed-up baseline demands the *same algorithm*, not `slice::sort`.

use bots_profile::Probe;

use crate::merge::{merge_split, serial_merge, MERGE_THRESHOLD};
use crate::quick::quicksort;

/// Runs at or below this length sort with sequential quicksort (the task
/// granularity floor).
pub const QUICK_THRESHOLD: usize = 2048;

/// Sorts `a` using scratch space `tmp` (same length).
pub fn cilksort_serial<P: Probe>(p: &P, a: &mut [u32], tmp: &mut [u32]) {
    debug_assert_eq!(a.len(), tmp.len());
    let n = a.len();
    if n <= QUICK_THRESHOLD {
        quicksort(p, a);
        return;
    }
    // Four quarters: the Cilk decomposition.
    let q = n / 4;
    // Potential tasks: 4 sorts + 2 merges + 1 merge (the 9 task directives
    // of Table I live in these two functions).
    for _ in 0..4 {
        p.task(48); // two fat pointers + attrs captured per child
    }
    {
        let (a12, a34) = a.split_at_mut(2 * q);
        let (a1, a2) = a12.split_at_mut(q);
        let (a3, a4) = a34.split_at_mut(q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        let (t1, t2) = t12.split_at_mut(q);
        let (t3, t4) = t34.split_at_mut(q);
        cilksort_serial(p, a1, t1);
        cilksort_serial(p, a2, t2);
        cilksort_serial(p, a3, t3);
        cilksort_serial(p, a4, t4);
    }
    p.taskwait();

    p.task(48);
    p.task(48);
    {
        let (a12, a34) = a.split_at(2 * q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        merge_serial_rec(p, &a12[..q], &a12[q..], t12);
        merge_serial_rec(p, &a34[..q], &a34[q..], t34);
    }
    p.taskwait();

    p.task(48);
    {
        let (t12, t34) = tmp.split_at(2 * q);
        merge_serial_rec(p, t12, t34, a);
    }
    p.taskwait();
}

/// The divide-and-conquer merge, run sequentially (still splitting, so the
/// serial baseline does the same work as the parallel version).
pub fn merge_serial_rec<'x, P: Probe>(p: &P, mut a: &'x [u32], mut b: &'x [u32], out: &mut [u32]) {
    if a.len() < b.len() {
        std::mem::swap(&mut a, &mut b);
    }
    if a.len() + b.len() <= MERGE_THRESHOLD {
        serial_merge(p, a, b, out);
        return;
    }
    let (ma, mb) = merge_split(a, b);
    p.ops((b.len().max(2) as u64).ilog2() as u64); // binary search steps
    p.task(64);
    p.task(64);
    let (out_lo, out_hi) = out.split_at_mut(ma + mb);
    merge_serial_rec(p, &a[..ma], &b[..mb], out_lo);
    merge_serial_rec(p, &a[ma..], &b[mb..], out_hi);
    p.taskwait();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_inputs::arrays::random_u32s;
    use bots_profile::{CountingProbe, NullProbe};

    fn check(n: usize, seed: u64) {
        let mut v = random_u32s(n, seed);
        let mut tmp = vec![0u32; n];
        let mut expect = v.clone();
        expect.sort_unstable();
        cilksort_serial(&NullProbe, &mut v, &mut tmp);
        assert_eq!(v, expect, "n={n}");
    }

    #[test]
    fn sorts_below_and_above_thresholds() {
        check(100, 1);
        check(QUICK_THRESHOLD, 2);
        check(QUICK_THRESHOLD + 1, 3);
        check(100_000, 4);
    }

    #[test]
    fn sorts_odd_sizes() {
        check(12_345, 5);
        check(65_537, 6);
    }

    #[test]
    fn profile_counts_tasks_only_above_grain() {
        let p = CountingProbe::new();
        let mut v = random_u32s(QUICK_THRESHOLD, 7);
        let mut tmp = vec![0u32; v.len()];
        cilksort_serial(&p, &mut v, &mut tmp);
        assert_eq!(p.counts().tasks, 0, "small arrays must be task-free");

        let p = CountingProbe::new();
        let mut v = random_u32s(64 * 1024, 8);
        let mut tmp = vec![0u32; v.len()];
        cilksort_serial(&p, &mut v, &mut tmp);
        let c = p.counts();
        assert!(c.tasks > 0);
        assert!(c.taskwaits > 0);
        // Memory-bound profile: roughly one write per op (paper: 1.30
        // ops/write).
        let ratio = c.ops as f64 / c.writes_total() as f64;
        assert!(ratio < 4.0, "ops/write={ratio}");
    }
}
