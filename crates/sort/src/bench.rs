//! `Benchmark` wiring for Sort.

use bots_inputs::{arrays::random_u32s, InputClass};
use bots_profile::{CountingProbe, NullProbe, RawCounts};
use bots_runtime::Runtime;
use bots_suite::{fnv1a_u64, BenchMeta, Benchmark, RunOutput, Tiedness, Verification, VersionSpec};

use crate::parallel::cilksort_parallel;
use crate::serial::cilksort_serial;

/// Elements per class.
pub fn n_for(class: InputClass) -> usize {
    class.pick([1 << 16, 1 << 21, 1 << 24, 1 << 26])
}

#[allow(clippy::unusual_byte_groupings)] // spells "BOTS 0127"
const SEED: u64 = 0xB0755_0127;

/// Order-independent digest of a multiset of u32s plus a sortedness flag:
/// sorted output of the right multiset ⇒ correct sort.
fn digest(sorted: &[u32], original_sum: u64, original_xor: u64) -> (u64, bool) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    let mut is_sorted = true;
    let mut prev = 0u32;
    for (i, &v) in sorted.iter().enumerate() {
        sum = sum.wrapping_add(v as u64);
        xor ^= (v as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(v % 63);
        if i > 0 && v < prev {
            is_sorted = false;
        }
        prev = v;
    }
    (
        fnv1a_u64(sum ^ xor),
        is_sorted && sum == original_sum && xor == original_xor,
    )
}

fn multiset_tokens(v: &[u32]) -> (u64, u64) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for &x in v {
        sum = sum.wrapping_add(x as u64);
        xor ^= (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(x % 63);
    }
    (sum, xor)
}

/// Sort as a suite [`Benchmark`].
#[derive(Debug, Default)]
pub struct SortBench;

impl Benchmark for SortBench {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "Sort",
            origin: "Cilk",
            domain: "Integer sorting",
            structure: "At leafs",
            task_directives: 9,
            tasks_inside: "single",
            nested_tasks: true,
            app_cutoff: "none",
        }
    }

    fn input_desc(&self, class: InputClass) -> String {
        let n = n_for(class);
        if n >= 1 << 20 {
            format!("{}M integers", n >> 20)
        } else {
            format!("{}K integers", n >> 10)
        }
    }

    fn versions(&self) -> Vec<VersionSpec> {
        // Sort has no application cut-off (grain is inherent in the
        // quicksort/merge thresholds): only tied/untied variants exist.
        vec![
            VersionSpec::default(),
            VersionSpec::default().tied(Tiedness::Untied),
        ]
    }

    fn run_serial(&self, class: InputClass) -> RunOutput {
        let mut v = random_u32s(n_for(class), SEED);
        let (sum, xor) = multiset_tokens(&v);
        let mut tmp = vec![0u32; v.len()];
        cilksort_serial(&NullProbe, &mut v, &mut tmp);
        let (checksum, ok) = digest(&v, sum, xor);
        RunOutput::new(
            if ok { checksum } else { !checksum },
            format!("sorted {} ok={ok}", v.len()),
        )
    }

    fn run_parallel(&self, rt: &Runtime, class: InputClass, version: VersionSpec) -> RunOutput {
        let mut v = random_u32s(n_for(class), SEED);
        let (sum, xor) = multiset_tokens(&v);
        cilksort_parallel(rt, &mut v, version.tiedness == Tiedness::Untied);
        let (checksum, ok) = digest(&v, sum, xor);
        RunOutput::new(
            if ok { checksum } else { !checksum },
            format!("sorted {} ok={ok}", v.len()),
        )
    }

    fn verify(&self, class: InputClass, output: &RunOutput) -> Verification {
        // Self-verification: sortedness + multiset preservation were folded
        // into the digest; compare against the digest of the known input's
        // sorted multiset.
        let v = random_u32s(n_for(class), SEED);
        let (sum, xor) = multiset_tokens(&v);
        let mut sorted = v;
        sorted.sort_unstable();
        let (want, _) = digest(&sorted, sum, xor);
        if output.checksum == want {
            Verification::SelfChecked
        } else {
            Verification::Failed(format!("sort output invalid: {}", output.summary))
        }
    }

    fn characterize(&self, class: InputClass) -> RawCounts {
        let p = CountingProbe::new();
        let mut v = random_u32s(n_for(class), SEED);
        let mut tmp = vec![0u32; v.len()];
        cilksort_serial(&p, &mut v, &mut tmp);
        p.counts()
    }

    fn best_version(&self) -> VersionSpec {
        // Figure 3: "sort (untied)".
        VersionSpec::default().tied(Tiedness::Untied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_verify() {
        let b = SortBench;
        let out = b.run_serial(InputClass::Test);
        assert_eq!(b.verify(InputClass::Test, &out), Verification::SelfChecked);
        let rt = Runtime::with_threads(4);
        for v in b.versions() {
            let out = b.run_parallel(&rt, InputClass::Test, v);
            assert_eq!(
                b.verify(InputClass::Test, &out),
                Verification::SelfChecked,
                "{v}"
            );
        }
    }

    #[test]
    fn detects_bad_output() {
        let b = SortBench;
        let mut out = b.run_serial(InputClass::Test);
        out.checksum ^= 0xdead;
        assert!(matches!(
            b.verify(InputClass::Test, &out),
            Verification::Failed(_)
        ));
    }

    #[test]
    fn characterization_is_memory_bound() {
        let c = SortBench.characterize(InputClass::Test);
        assert!(c.tasks > 0);
        let ops_per_write = c.ops as f64 / c.writes_total() as f64;
        assert!(
            ops_per_write < 4.0,
            "paper reports 1.30: got {ops_per_write}"
        );
    }
}
