//! Merge primitives: the sequential merge used below the grain threshold
//! and the binary-search split that drives the parallel
//! divide-and-conquer merge ("a parallel divide-and-conquer method rather
//! than the conventional serial merge", §III-B; Akl & Santoro's scheme via
//! Cilk).

use bots_profile::Probe;

/// Pairs of runs at or below this combined length merge sequentially.
pub const MERGE_THRESHOLD: usize = 2048;

/// Sequential two-pointer merge of sorted `a` and `b` into `out`.
///
/// `out.len()` must equal `a.len() + b.len()`.
pub fn serial_merge<P: Probe>(p: &P, a: &[u32], b: &[u32], out: &mut [u32]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = if i == a.len() {
            false
        } else if j == b.len() {
            true
        } else {
            a[i] <= b[j]
        };
        *slot = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
    }
    p.ops(out.len() as u64);
    p.write_shared(out.len() as u64);
}

/// Index of the first element of `b` not less than `pivot` (lower bound).
pub fn lower_bound(b: &[u32], pivot: u32) -> usize {
    b.partition_point(|&x| x < pivot)
}

/// The split the parallel merge recursion uses: halve the longer run at
/// `ma`, find the matching point `mb` in the shorter run. Returns
/// `(ma, mb)` for `(a, b)` pre-ordered so `a` is the longer run (callers
/// must swap first; see `parallel::merge_task`).
pub fn merge_split(a: &[u32], b: &[u32]) -> (usize, usize) {
    debug_assert!(a.len() >= b.len());
    let ma = a.len() / 2;
    let mb = lower_bound(b, a[ma]);
    (ma, mb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots_profile::NullProbe;

    #[test]
    fn serial_merge_basic() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6, 7];
        let mut out = [0u32; 7];
        serial_merge(&NullProbe, &a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn serial_merge_with_empty_side() {
        let a = [1u32, 2];
        let mut out = [0u32; 2];
        serial_merge(&NullProbe, &a, &[], &mut out);
        assert_eq!(out, [1, 2]);
        serial_merge(&NullProbe, &[], &a, &mut out);
        assert_eq!(out, [1, 2]);
    }

    #[test]
    fn serial_merge_is_stable_for_ties() {
        // With u32 values stability is unobservable, but ties must still
        // merge correctly.
        let a = [5u32, 5, 5];
        let b = [5u32, 5];
        let mut out = [0u32; 5];
        serial_merge(&NullProbe, &a, &b, &mut out);
        assert_eq!(out, [5; 5]);
    }

    #[test]
    fn lower_bound_positions() {
        let b = [10u32, 20, 20, 30];
        assert_eq!(lower_bound(&b, 5), 0);
        assert_eq!(lower_bound(&b, 20), 1);
        assert_eq!(lower_bound(&b, 25), 3);
        assert_eq!(lower_bound(&b, 99), 4);
    }

    #[test]
    fn merge_split_partitions_consistently() {
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..80).map(|i| i * 3).collect();
        let (ma, mb) = merge_split(&a, &b);
        // Everything left of the split is < pivot; right side >= pivot.
        let pivot = a[ma];
        assert!(b[..mb].iter().all(|&x| x < pivot));
        assert!(b[mb..].iter().all(|&x| x >= pivot));
    }
}
