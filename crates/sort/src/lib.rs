//! # bots-sort — the BOTS Sort kernel (cilksort)
//!
//! "Sorts a random permutation of n 32-bit numbers with a fast parallel
//! sorting variation of the ordinary mergesort": quarter the array, sort
//! each quarter (tasks), then merge with a divide-and-conquer parallel
//! merge that splits on a binary search rather than scanning serially.
//! Small runs fall back to sequential quicksort (≤ 2048 elements) and
//! insertion sort (≤ 20).
//!
//! ```
//! use bots_runtime::Runtime;
//! use bots_sort::cilksort_parallel;
//!
//! let rt = Runtime::with_threads(4);
//! let mut v = bots_inputs::arrays::random_u32s(10_000, 42);
//! cilksort_parallel(&rt, &mut v, false);
//! assert!(v.windows(2).all(|w| w[0] <= w[1]));
//! ```
#![warn(missing_docs)]

mod bench;
mod merge;
mod parallel;
mod quick;
mod serial;

pub use bench::{n_for, SortBench};
pub use merge::{lower_bound, serial_merge, MERGE_THRESHOLD};
pub use parallel::{cilksort_parallel, cilksort_with_merge, MergeStrategy};
pub use quick::{insertion_sort, quicksort, INSERTION_THRESHOLD};
pub use serial::{cilksort_serial, QUICK_THRESHOLD};
