//! Task-parallel cilksort: tasks at every quarter-sort and merge split
//! ("Tasks are used for each split and merge", §III-B).

use bots_profile::NullProbe;
use bots_runtime::{Runtime, Scope, TaskAttrs};

use crate::merge::{merge_split, serial_merge, MERGE_THRESHOLD};
use crate::quick::quicksort;
use crate::serial::QUICK_THRESHOLD;

/// Merge strategy: the paper's point of comparison ("a parallel
/// divide-and-conquer method rather than the conventional serial merge").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Binary-search split, merge halves as tasks (the cilksort way).
    Parallel,
    /// Conventional two-pointer serial merge (the ablation): the quarter
    /// sorts still run as tasks, but every merge runs sequentially on the
    /// encountering worker.
    Serial,
}

/// Sorts `a` in parallel on `rt`.
pub fn cilksort_parallel(rt: &Runtime, a: &mut [u32], untied: bool) {
    cilksort_with_merge(rt, a, untied, MergeStrategy::Parallel);
}

/// Sorts `a` with an explicit merge strategy (ablation entry point).
pub fn cilksort_with_merge(rt: &Runtime, a: &mut [u32], untied: bool, merge: MergeStrategy) {
    let attrs = TaskAttrs::default().with_tied(!untied);
    let mut tmp = vec![0u32; a.len()];
    let tmp_ref = &mut tmp[..];
    rt.region(move |s| match merge {
        MergeStrategy::Parallel => sort_task(s, a, tmp_ref, attrs),
        MergeStrategy::Serial => sort_task_serial_merge(s, a, tmp_ref, attrs),
    })
    .join();
}

/// The ablation recursion: task-parallel quarter sorts, sequential merges.
fn sort_task_serial_merge<'a>(
    s: &Scope<'_>,
    a: &'a mut [u32],
    tmp: &'a mut [u32],
    attrs: TaskAttrs,
) {
    let n = a.len();
    if n <= QUICK_THRESHOLD {
        quicksort(&NullProbe, a);
        return;
    }
    let q = n / 4;
    {
        let (a12, a34) = a.split_at_mut(2 * q);
        let (a1, a2) = a12.split_at_mut(q);
        let (a3, a4) = a34.split_at_mut(q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        let (t1, t2) = t12.split_at_mut(q);
        let (t3, t4) = t34.split_at_mut(q);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |s| sort_task_serial_merge(s, a1, t1, attrs));
            s.spawn_with(attrs, move |s| sort_task_serial_merge(s, a2, t2, attrs));
            s.spawn_with(attrs, move |s| sort_task_serial_merge(s, a3, t3, attrs));
            s.spawn_with(attrs, move |s| sort_task_serial_merge(s, a4, t4, attrs));
        });
    }
    {
        let (a12, a34) = a.split_at(2 * q);
        let (a1, a2) = a12.split_at(q);
        let (a3, a4) = a34.split_at(q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |_| serial_merge(&NullProbe, a1, a2, t12));
            s.spawn_with(attrs, move |_| serial_merge(&NullProbe, a3, a4, t34));
        });
    }
    {
        let (t12, t34) = tmp.split_at(2 * q);
        serial_merge(&NullProbe, t12, t34, a);
    }
}

fn sort_task<'a>(s: &Scope<'_>, a: &'a mut [u32], tmp: &'a mut [u32], attrs: TaskAttrs) {
    let n = a.len();
    if n <= QUICK_THRESHOLD {
        quicksort(&NullProbe, a);
        return;
    }
    let q = n / 4;
    {
        let (a12, a34) = a.split_at_mut(2 * q);
        let (a1, a2) = a12.split_at_mut(q);
        let (a3, a4) = a34.split_at_mut(q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        let (t1, t2) = t12.split_at_mut(q);
        let (t3, t4) = t34.split_at_mut(q);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |s| sort_task(s, a1, t1, attrs));
            s.spawn_with(attrs, move |s| sort_task(s, a2, t2, attrs));
            s.spawn_with(attrs, move |s| sort_task(s, a3, t3, attrs));
            s.spawn_with(attrs, move |s| sort_task(s, a4, t4, attrs));
        });
    }
    {
        let (a12, a34) = a.split_at(2 * q);
        let (a1, a2) = a12.split_at(q);
        let (a3, a4) = a34.split_at(q);
        let (t12, t34) = tmp.split_at_mut(2 * q);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |s| merge_task(s, a1, a2, t12, attrs));
            s.spawn_with(attrs, move |s| merge_task(s, a3, a4, t34, attrs));
        });
    }
    {
        let (t12, t34) = tmp.split_at(2 * q);
        s.taskgroup(|s| {
            s.spawn_with(attrs, move |s| merge_task(s, t12, t34, a, attrs));
        });
    }
}

fn merge_task<'a>(
    s: &Scope<'_>,
    mut a: &'a [u32],
    mut b: &'a [u32],
    out: &'a mut [u32],
    attrs: TaskAttrs,
) {
    if a.len() < b.len() {
        std::mem::swap(&mut a, &mut b);
    }
    if a.len() + b.len() <= MERGE_THRESHOLD {
        serial_merge(&NullProbe, a, b, out);
        return;
    }
    let (ma, mb) = merge_split(a, b);
    let (out_lo, out_hi) = out.split_at_mut(ma + mb);
    let (a_lo, a_hi) = a.split_at(ma);
    let (b_lo, b_hi) = b.split_at(mb);
    s.taskgroup(|s| {
        s.spawn_with(attrs, move |s| merge_task(s, a_lo, b_lo, out_lo, attrs));
        s.spawn_with(attrs, move |s| merge_task(s, a_hi, b_hi, out_hi, attrs));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::cilksort_with_merge;
    use bots_inputs::arrays::random_u32s;

    fn check(rt: &Runtime, n: usize, seed: u64, untied: bool) {
        let mut v = random_u32s(n, seed);
        let mut expect = v.clone();
        expect.sort_unstable();
        cilksort_parallel(rt, &mut v, untied);
        assert_eq!(v, expect, "n={n} untied={untied}");
    }

    #[test]
    fn parallel_sort_matches_std() {
        let rt = Runtime::with_threads(4);
        check(&rt, 1_000, 1, false);
        check(&rt, 100_000, 2, false);
        check(&rt, 100_000, 3, true);
        check(&rt, 1 << 17, 4, false);
    }

    #[test]
    fn odd_lengths_and_single_thread() {
        let rt = Runtime::with_threads(1);
        check(&rt, 12_347, 5, false);
        let rt = Runtime::with_threads(3);
        check(&rt, 99_991, 6, true);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let rt = Runtime::with_threads(4);
        let mut v: Vec<u32> = (0..100_000).collect();
        let expect = v.clone();
        cilksort_parallel(&rt, &mut v, false);
        assert_eq!(v, expect);
        let mut v: Vec<u32> = (0..100_000).rev().collect();
        cilksort_parallel(&rt, &mut v, false);
        assert_eq!(v, expect);
    }

    #[test]
    fn serial_merge_strategy_sorts_correctly() {
        use super::MergeStrategy;
        let rt = Runtime::with_threads(4);
        let mut v = random_u32s(200_000, 9);
        let mut expect = v.clone();
        expect.sort_unstable();
        cilksort_with_merge(&rt, &mut v, false, MergeStrategy::Serial);
        assert_eq!(v, expect);
    }

    #[test]
    fn many_duplicates() {
        let rt = Runtime::with_threads(4);
        let mut v: Vec<u32> = (0..200_000).map(|i| i % 7).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        cilksort_parallel(&rt, &mut v, false);
        assert_eq!(v, expect);
    }
}
