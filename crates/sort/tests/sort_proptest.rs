//! Property tests for Sort: serial and parallel cilksort must agree with
//! the standard library sort on arbitrary inputs, and the merge primitives
//! must preserve multisets.

use bots_profile::NullProbe;
use bots_runtime::Runtime;
use bots_sort::{cilksort_parallel, cilksort_serial, serial_merge};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serial_cilksort_sorts_anything(mut v in proptest::collection::vec(any::<u32>(), 0..20_000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut tmp = vec![0u32; v.len()];
        cilksort_serial(&NullProbe, &mut v, &mut tmp);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn parallel_cilksort_sorts_anything(
        mut v in proptest::collection::vec(any::<u32>(), 0..20_000),
        threads in 1usize..5,
        untied in any::<bool>(),
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let rt = Runtime::with_threads(threads);
        cilksort_parallel(&rt, &mut v, untied);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn serial_merge_equals_concat_sort(
        mut a in proptest::collection::vec(any::<u32>(), 0..500),
        mut b in proptest::collection::vec(any::<u32>(), 0..500),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u32; a.len() + b.len()];
        serial_merge(&NullProbe, &a, &b, &mut out);
        let mut expect = [a, b].concat();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }
}
