//! EPCC-style runtime overhead micro-benchmarks (the related-work
//! methodology the paper cites): cost of task creation, undeferred
//! execution, taskwait, region entry/exit and worker-local accumulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bots_runtime::{Runtime, TaskAttrs, WorkerCounter};

fn bench_overheads(c: &mut Criterion) {
    let rt = Runtime::with_threads(4);

    let mut group = c.benchmark_group("runtime");
    group.sample_size(20);

    // Parallel region entry + exit with an empty body.
    group.bench_function("region_entry_exit", |b| {
        b.iter(|| rt.parallel(|_| std::hint::black_box(0)))
    });

    // Deferred task spawn + completion, amortised over a batch.
    const BATCH: u64 = 10_000;
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("spawn_join_10k", |b| {
        b.iter(|| {
            rt.parallel(|s| {
                s.taskgroup(|s| {
                    for _ in 0..BATCH {
                        s.spawn(|_| {});
                    }
                });
            })
        })
    });

    // Undeferred (if(false)) spawn: bookkeeping-only cost.
    group.bench_function("undeferred_spawn_10k", |b| {
        let attrs = TaskAttrs::default().with_if(false);
        b.iter(|| {
            rt.parallel(|s| {
                for _ in 0..BATCH {
                    s.spawn_with(attrs, |_| {});
                }
            })
        })
    });

    // taskwait on an already-empty child set (scheduling-point probe cost).
    group.bench_function("empty_taskwait_10k", |b| {
        b.iter(|| {
            rt.parallel(|s| {
                for _ in 0..BATCH {
                    s.taskwait();
                }
            })
        })
    });

    // threadprivate-style accumulation.
    group.bench_function("worker_counter_add_10k", |b| {
        let counter = WorkerCounter::new(rt.num_threads());
        b.iter(|| {
            rt.parallel(|s| {
                for _ in 0..BATCH {
                    counter.incr(s);
                }
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overheads);
criterion_main!(benches);
