//! Ablation: our Chase-Lev deque vs `crossbeam-deque` on the two hot
//! paths — owner push/pop (every spawn/completion) and push/steal pairs
//! (migration). Justifies (or indicts) the from-scratch implementation.

use std::ptr::NonNull;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bots_runtime::deque as ours;

const BATCH: usize = 10_000;

fn bench_owner_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_owner_push_pop");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("bots_chase_lev", |b| {
        let (owner, _stealer) = ours::deque::<u64>();
        let item = Box::into_raw(Box::new(7u64));
        b.iter(|| {
            for _ in 0..BATCH {
                owner.push(NonNull::new(item).unwrap());
            }
            for _ in 0..BATCH {
                std::hint::black_box(owner.pop());
            }
        });
        unsafe { drop(Box::from_raw(item)) };
    });

    group.bench_function("crossbeam", |b| {
        let worker = crossbeam_deque::Worker::<u64>::new_lifo();
        b.iter(|| {
            for _ in 0..BATCH {
                worker.push(7);
            }
            for _ in 0..BATCH {
                std::hint::black_box(worker.pop());
            }
        });
    });

    group.finish();
}

fn bench_steal_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_push_steal");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("bots_chase_lev", |b| {
        let (owner, stealer) = ours::deque::<u64>();
        let item = Box::into_raw(Box::new(7u64));
        b.iter(|| {
            for _ in 0..BATCH {
                owner.push(NonNull::new(item).unwrap());
            }
            for _ in 0..BATCH {
                loop {
                    match stealer.steal() {
                        ours::Steal::Success(v) => {
                            std::hint::black_box(v);
                            break;
                        }
                        ours::Steal::Empty => break,
                        ours::Steal::Retry => {}
                    }
                }
            }
        });
        unsafe { drop(Box::from_raw(item)) };
    });

    group.bench_function("crossbeam", |b| {
        let worker = crossbeam_deque::Worker::<u64>::new_lifo();
        let stealer = worker.stealer();
        b.iter(|| {
            for _ in 0..BATCH {
                worker.push(7);
            }
            for _ in 0..BATCH {
                loop {
                    match stealer.steal() {
                        crossbeam_deque::Steal::Success(v) => {
                            std::hint::black_box(v);
                            break;
                        }
                        crossbeam_deque::Steal::Empty => break,
                        crossbeam_deque::Steal::Retry => {}
                    }
                }
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_owner_paths, bench_steal_paths);
criterion_main!(benches);
