//! Ablation: our Chase-Lev deque vs a `Mutex<VecDeque>` baseline on the two
//! hot paths — owner push/pop (every spawn/completion) and push/steal pairs
//! (migration). Justifies (or indicts) the from-scratch implementation.
//!
//! The original comparison target was `crossbeam-deque`; this environment
//! builds offline, so the external baseline is the locked deque every naive
//! scheduler starts from instead.

use std::collections::VecDeque;
use std::ptr::NonNull;
use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bots_runtime::deque as ours;

const BATCH: usize = 10_000;

fn bench_owner_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_owner_push_pop");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("bots_chase_lev", |b| {
        let (owner, _stealer) = ours::deque::<u64>();
        let item = Box::into_raw(Box::new(7u64));
        b.iter(|| {
            for _ in 0..BATCH {
                owner.push(NonNull::new(item).unwrap());
            }
            for _ in 0..BATCH {
                std::hint::black_box(owner.pop());
            }
        });
        unsafe { drop(Box::from_raw(item)) };
    });

    group.bench_function("mutex_vecdeque", |b| {
        let queue: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        b.iter(|| {
            for _ in 0..BATCH {
                queue.lock().unwrap().push_back(7);
            }
            for _ in 0..BATCH {
                std::hint::black_box(queue.lock().unwrap().pop_back());
            }
        });
    });

    group.finish();
}

fn bench_steal_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_push_steal");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("bots_chase_lev", |b| {
        let (owner, stealer) = ours::deque::<u64>();
        let item = Box::into_raw(Box::new(7u64));
        b.iter(|| {
            for _ in 0..BATCH {
                owner.push(NonNull::new(item).unwrap());
            }
            for _ in 0..BATCH {
                loop {
                    match stealer.steal() {
                        ours::Steal::Success(v) => {
                            std::hint::black_box(v);
                            break;
                        }
                        ours::Steal::Empty => break,
                        ours::Steal::Retry => {}
                    }
                }
            }
        });
        unsafe { drop(Box::from_raw(item)) };
    });

    group.bench_function("mutex_vecdeque", |b| {
        let queue: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        b.iter(|| {
            for _ in 0..BATCH {
                queue.lock().unwrap().push_back(7);
            }
            for _ in 0..BATCH {
                std::hint::black_box(queue.lock().unwrap().pop_front());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_owner_paths, bench_steal_paths);
criterion_main!(benches);
