//! Criterion micro-benchmarks: each kernel's serial reference vs its best
//! parallel version on the `test` class (kept small so `cargo bench`
//! completes in minutes; the paper-scale runs live in the harness
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};

use bots::{registry, InputClass, Runtime};

fn bench_kernels(c: &mut Criterion) {
    let rt = Runtime::default();
    for bench in registry() {
        let name = bench.meta().name.to_lowercase();
        let version = bench.best_version();
        let mut group = c.benchmark_group(&name);
        group.sample_size(10);
        group.bench_function("serial", |b| {
            b.iter(|| std::hint::black_box(bench.run_serial(InputClass::Test)))
        });
        group.bench_function(format!("parallel/{}", version.label()), |b| {
            b.iter(|| std::hint::black_box(bench.run_parallel(&rt, InputClass::Test, version)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
