//! The perf-trajectory gate: compares the `BENCH_*.json` reports the
//! probes emitted against the checked-in baseline
//! (`crates/bench/baseline.json`) and exits non-zero when any metric
//! regressed past the tolerance (default 25%).
//!
//! ```text
//! bench_gate [--baseline FILE] [--update] [DIR]
//! ```
//!
//! * `DIR` — directory holding `BENCH_*.json` files (default `bench-json`,
//!   matching the CI job's `BOTS_BENCH_JSON_DIR`).
//! * `--baseline FILE` — baseline path (default `crates/bench/baseline.json`,
//!   resolved against the workspace root when run via `cargo run`).
//! * `--update` — instead of gating, rewrite the baseline from the measured
//!   reports (run on a quiet machine, then commit the diff).
//!
//! `BOTS_GATE_TOLERANCE_PCT` overrides the baseline's tolerance.
//!
//! Metric direction is by name: `*_per_s` is higher-is-better, everything
//! else lower-is-better; zero-baseline lower-is-better metrics (the
//! zero-allocation paths) are held to an absolute ceiling of 1.0. Metrics
//! or probes absent from the baseline are reported but never fail the gate
//! — `--update` teaches the baseline about them.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bots_bench::perf::{compare, parse_report, Baseline, Report};

fn default_baseline_path() -> PathBuf {
    // Under `cargo run` the manifest dir is crates/bench; fall back to a
    // plain relative path for standalone invocation from the repo root.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return Path::new(&dir).join("baseline.json");
    }
    PathBuf::from("crates/bench/baseline.json")
}

fn load_reports(dir: &Path) -> Result<Vec<Report>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read report dir {}: {e}", dir.display()))?;
    let mut reports = Vec::new();
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        reports.push(
            parse_report(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?,
        );
    }
    if reports.is_empty() {
        return Err(format!(
            "no BENCH_*.json reports in {} — run the probes with \
             BOTS_BENCH_JSON_DIR={0} first",
            dir.display()
        ));
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let mut baseline_path = default_baseline_path();
    let mut dir = PathBuf::from("bench-json");
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => {
                    eprintln!("missing value for --baseline");
                    return ExitCode::from(2);
                }
            },
            "--update" => update = true,
            "--help" | "-h" => {
                eprintln!("usage: bench_gate [--baseline FILE] [--update] [DIR]");
                return ExitCode::SUCCESS;
            }
            other => dir = PathBuf::from(other),
        }
    }

    let reports = match load_reports(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_gate: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) if update => Baseline {
            tolerance_pct: 25.0,
            probes: Default::default(),
        },
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {e} (run with --update to create it)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    if let Ok(tol) = std::env::var("BOTS_GATE_TOLERANCE_PCT") {
        match tol.parse::<f64>() {
            Ok(t) if t > 0.0 => baseline.tolerance_pct = t,
            _ => {
                eprintln!("bench_gate: bad BOTS_GATE_TOLERANCE_PCT '{tol}'");
                return ExitCode::from(2);
            }
        }
    }

    if update {
        for report in &reports {
            baseline
                .probes
                .insert(report.probe.clone(), report.metrics.clone());
        }
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("bench_gate: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline {} updated from {} report(s)",
            baseline_path.display(),
            reports.len()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "gating {} report(s) against {} (tolerance {}%)",
        reports.len(),
        baseline_path.display(),
        baseline.tolerance_pct
    );
    println!(
        "{:<44} {:>14} {:>14} {:>9}",
        "metric", "baseline", "measured", "verdict"
    );
    let mut regressions = 0usize;
    let mut checked = 0usize;
    for report in &reports {
        let verdicts = compare(&baseline, report);
        if verdicts.is_empty() {
            println!(
                "{:<44} {:>14} {:>14} {:>9}",
                format!("{}.*", report.probe),
                "-",
                "-",
                "no-base"
            );
            continue;
        }
        for v in verdicts {
            checked += 1;
            let verdict = if v.regressed {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<44} {:>14.3} {:>14.3} {:>9}",
                v.label, v.baseline, v.measured, verdict
            );
        }
    }
    println!(
        "{checked} metric(s) checked, {regressions} regression(s) past \
         {}% tolerance",
        baseline.tolerance_pct
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
