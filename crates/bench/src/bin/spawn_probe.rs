//! Spawn-path diagnostic: per-task cost of `spawn` + `taskgroup` join for a
//! flat batch, swept over team sizes, with the runtime counters that explain
//! it (parks, steals, slab recycling). The numbers feed the
//! zero-allocation-spawn work; `runtime_overhead` is the regression gate.

use bots::runtime::RuntimeStats;
use bots::Runtime;

fn main() {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let reps = 20;

    println!("batch={batch} reps={reps}");
    println!(
        "{:>7} {:>12} {:>10} {:>8} {:>9} {:>9} {:>10} {:>11}",
        "threads", "ns/task", "parks", "stolen", "recycled", "fresh", "crossfree", "switched"
    );
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm the pools and the team.
        rt.parallel(|s| {
            s.taskgroup(|s| {
                for _ in 0..batch {
                    s.spawn(|_| {});
                }
            });
        });
        let before: RuntimeStats = rt.stats();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            rt.parallel(|s| {
                s.taskgroup(|s| {
                    for _ in 0..batch {
                        s.spawn(|_| {});
                    }
                });
            });
        }
        let elapsed = t0.elapsed();
        let d = rt.stats().since(&before);
        println!(
            "{:>7} {:>12.1} {:>10} {:>8} {:>9} {:>9} {:>10} {:>11}",
            threads,
            elapsed.as_nanos() as f64 / (batch * reps) as f64,
            d.parks,
            d.stolen,
            d.slab_recycled,
            d.slab_fresh,
            d.slab_cross_freed,
            d.switched_in_wait,
        );
    }
}
