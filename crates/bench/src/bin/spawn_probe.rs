//! Spawn-path diagnostic: per-task cost of `spawn` + `taskgroup` join for a
//! flat batch, swept over team sizes, with the runtime counters that explain
//! it (parks, steals, slab recycling). The numbers feed the
//! zero-allocation-spawn work; `runtime_overhead` is the regression gate
//! for dev boxes, and the JSON this probe emits feeds CI's perf-trajectory
//! gate (`bench_gate`).
//!
//! Runs under the counting allocator so `allocs_per_task` is measured, not
//! asserted-by-construction. With `BOTS_BENCH_JSON_DIR` set, writes
//! `BENCH_spawn_probe.json` (ns/task, tasks/s and allocs/task per team
//! size) for the CI artifact + gate.

use bots::runtime::RuntimeStats;
use bots::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

fn main() {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let reps = 20;
    let mut report = Report::new("spawn_probe");

    println!("batch={batch} reps={reps}");
    println!(
        "{:>7} {:>12} {:>11} {:>10} {:>8} {:>9} {:>9} {:>10} {:>11}",
        "threads",
        "ns/task",
        "allocs/task",
        "parks",
        "stolen",
        "recycled",
        "fresh",
        "crossfree",
        "switched"
    );
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm the pools and the team.
        rt.parallel(|s| {
            s.taskgroup(|s| {
                for _ in 0..batch {
                    s.spawn(|_| {});
                }
            });
        });
        let before: RuntimeStats = rt.stats();
        let allocs_before = alloc_calls();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            rt.parallel(|s| {
                s.taskgroup(|s| {
                    for _ in 0..batch {
                        s.spawn(|_| {});
                    }
                });
            });
        }
        let elapsed = t0.elapsed();
        let allocs = alloc_calls() - allocs_before;
        let d = rt.stats().since(&before);
        let tasks = (batch * reps) as f64;
        let ns_per_task = elapsed.as_nanos() as f64 / tasks;
        let allocs_per_task = allocs as f64 / tasks;
        println!(
            "{:>7} {:>12.1} {:>11.4} {:>10} {:>8} {:>9} {:>9} {:>10} {:>11}",
            threads,
            ns_per_task,
            allocs_per_task,
            d.parks,
            d.stolen,
            d.slab_recycled,
            d.slab_fresh,
            d.slab_cross_freed,
            d.switched_in_wait,
        );
        report.push(format!("ns_per_task_t{threads}"), ns_per_task);
        report.push(format!("allocs_per_task_t{threads}"), allocs_per_task);
        report.push(
            format!("tasks_per_s_t{threads}"),
            tasks / elapsed.as_secs_f64(),
        );
    }
    report.maybe_emit();
}
