//! Dependency-path diagnostic: per-edge cost of `depend` clauses, chain
//! release latency, and the SparseLU data-flow payoff (deps vs barrier
//! wall time), swept over team sizes. Two synthetic shapes per sweep:
//!
//! * **chain** — `batch` tasks in one write-after-write chain: every task
//!   but the first is held Deferred and released on its predecessor's
//!   exit, so `ns/edge` prices registration + hold + release end to end
//!   (on one thread this *is* the chain latency — nothing overlaps);
//! * **diamond** — per link, one writer fanning out to seven readers that
//!   the next link's writer joins: the reader-set and fan-in paths.
//!
//! Runs under the counting allocator: `allocs_per_kedge_*` gate against
//! zero baselines in CI (`bench_gate`'s absolute ceiling of 1.0), so a
//! reintroduced per-clause allocation — ≥ 1000/kedge — fails loudly while
//! a stray warm-up allocation stays under the ceiling. With
//! `BOTS_BENCH_JSON_DIR` set, writes `BENCH_deps_probe.json` for the CI
//! artifact + `bench_gate`.

use std::sync::atomic::{AtomicU64, Ordering};

use bots::sparselu::{sparselu_parallel, sparselu_parallel_replay, BlockMatrix, LuGenerator};
use bots::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

static CHAIN_OBJ: AtomicU64 = AtomicU64::new(0);
static FAN_OBJS: [AtomicU64; 8] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// One region: a WAW chain of `batch` tasks. Edges: `batch - 1`.
fn chain(rt: &Runtime, batch: u64) {
    rt.parallel(|s| {
        for i in 0..batch {
            s.task(move |_| {
                CHAIN_OBJ.store(i, Ordering::Relaxed);
            })
            .after_write(&CHAIN_OBJ)
            .spawn();
        }
    });
    assert_eq!(CHAIN_OBJ.load(Ordering::Relaxed), batch - 1);
}

/// The same WAW chain as [`chain`], submitted under a replay shape token:
/// the first call records the graph, later calls re-execute it with zero
/// tracker traffic.
fn chain_replay(rt: &Runtime, batch: u64, token: u64) {
    rt.parallel_replay(token, |s| {
        for i in 0..batch {
            s.task(move |_| {
                CHAIN_OBJ.store(i, Ordering::Relaxed);
            })
            .after_write(&CHAIN_OBJ)
            .spawn();
        }
    });
    assert_eq!(CHAIN_OBJ.load(Ordering::Relaxed), batch - 1);
}

/// One region of `links` diamonds: writer → 7 readers → next writer.
/// Edges per link (asymptotically): the writer picks up 1 WAW edge from
/// the previous writer + 7 WAR edges from the previous link's readers;
/// each reader picks up 1 in-edge from the writer + 1 WAW edge on its
/// reused sink from the previous link's reader of that sink — 8 + 14 =
/// 22.
fn diamonds(rt: &Runtime, links: u64) {
    rt.parallel(|s| {
        for i in 0..links {
            s.task(move |_| {
                FAN_OBJS[0].store(i, Ordering::Relaxed);
            })
            .after_write(&FAN_OBJS[0])
            .spawn();
            for sink in &FAN_OBJS[1..] {
                s.task(move |_| {
                    sink.store(i, Ordering::Relaxed);
                })
                .after_read(&FAN_OBJS[0])
                .after_write(sink)
                .spawn();
            }
        }
    });
}

/// Median wall time of `f` over `reps` runs.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let reps = 10u64;
    let mut report = Report::new("deps_probe");

    println!("batch={batch} reps={reps}");
    println!(
        "{:>7} {:>14} {:>16} {:>15} {:>10} {:>10}",
        "threads", "ns/edge(chain)", "ns/edge(diamond)", "allocs/kedge", "deferred", "released"
    );
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm the record slabs, the region descriptor and its dep pools.
        // Several rounds: a chain generates far ahead of execution, so the
        // peak live-record/block inventory (the whole chain) must be grown
        // once, on whichever workers end up hosting the generators, before
        // the measurement starts.
        for _ in 0..8 {
            chain(&rt, batch);
            diamonds(&rt, batch / 8);
        }

        // Min over windows, like the zero_alloc tests: a region root
        // landing on a worker that never hosted a generator before grows
        // that worker's pool inventory once — real, but warm-up cost, not
        // steady-state cost. The floor across windows is the true warm
        // cost (an unlucky window cannot *remove* allocations), and it is
        // what the zero-baseline gate holds to its 1.0 absolute ceiling.
        let before = rt.stats();
        let mut chain_ns = Vec::new();
        let mut diamond_ns = Vec::new();
        let mut window_allocs = Vec::new();
        for _ in 0..reps {
            let allocs_before = alloc_calls();
            let t0 = std::time::Instant::now();
            chain(&rt, batch);
            chain_ns.push(t0.elapsed().as_nanos() as f64);
            let t1 = std::time::Instant::now();
            diamonds(&rt, batch / 8);
            diamond_ns.push(t1.elapsed().as_nanos() as f64);
            window_allocs.push(alloc_calls() - allocs_before);
        }
        let d = rt.stats().since(&before);

        let chain_edges = (batch - 1) as f64;
        let diamond_edges = ((batch / 8) * 22) as f64;
        chain_ns.sort_by(|a, b| a.total_cmp(b));
        diamond_ns.sort_by(|a, b| a.total_cmp(b));
        let ns_chain = chain_ns[chain_ns.len() / 2] / chain_edges;
        let ns_diamond = diamond_ns[diamond_ns.len() / 2] / diamond_edges;
        let allocs_per_kedge =
            *window_allocs.iter().min().unwrap() as f64 / ((chain_edges + diamond_edges) / 1000.0);
        println!(
            "{:>7} {:>14.1} {:>16.1} {:>15.3} {:>10} {:>10}",
            threads, ns_chain, ns_diamond, allocs_per_kedge, d.deps_deferred, d.deps_released,
        );
        assert_eq!(
            d.deps_deferred, d.deps_released,
            "deferral/release telemetry out of balance"
        );
        report.push(format!("ns_per_edge_chain_t{threads}"), ns_chain);
        report.push(format!("ns_per_edge_diamond_t{threads}"), ns_diamond);
        report.push(format!("allocs_per_kedge_t{threads}"), allocs_per_kedge);
    }

    // The kernel-level payoff: SparseLU with block-level clauses vs the
    // two-barrier version, same matrix, one team. The ratio is the gated
    // metric (machine-speed independent); the absolute times are
    // informational. Matrices are generated *outside* the timed closures:
    // generation is a constant term that would otherwise pull the ratio
    // toward 1.0 and mask a real dependency-path regression.
    let (nb, bs) = (16, 16);
    let rt = Runtime::default();
    let warm = BlockMatrix::generate(nb, bs, 7);
    sparselu_parallel(&rt, &warm, LuGenerator::Deps, false);
    let mut pool: Vec<BlockMatrix> = (0..5).map(|_| BlockMatrix::generate(nb, bs, 7)).collect();
    let barrier_ms = median_ms(5, || {
        let m = pool.pop().expect("one pre-built matrix per rep");
        sparselu_parallel(&rt, &m, LuGenerator::Single, false);
    });
    let mut pool: Vec<BlockMatrix> = (0..5).map(|_| BlockMatrix::generate(nb, bs, 7)).collect();
    let deps_ms = median_ms(5, || {
        let m = pool.pop().expect("one pre-built matrix per rep");
        sparselu_parallel(&rt, &m, LuGenerator::Deps, false);
    });
    let ratio = deps_ms / barrier_ms;
    println!(
        "sparselu {nb}x{nb} blocks of {bs}x{bs}: barrier {barrier_ms:.2} ms, \
         deps {deps_ms:.2} ms (ratio {ratio:.3})"
    );
    report.push("sparselu_barrier_ms", barrier_ms);
    report.push("sparselu_deps_ms", deps_ms);
    report.push("sparselu_deps_over_barrier", ratio);

    report.maybe_emit();

    // ---- record-and-replay: the same chain, warm-replayed ----
    //
    // Its own report (`BENCH_replay.json`): `replay_over_live` is the
    // gated payoff metric — warm replayed ns/edge over live ns/edge on
    // one thread, where nothing overlaps and the ratio is pure
    // registration cost. `allocs_per_kedge_replay` holds the warm replay
    // path to the zero-allocation line, and the sparselu ratio is the
    // whole-kernel (informational) view.
    let mut replay_report = Report::new("replay");
    println!("\nreplay: batch={batch} reps={reps}");
    println!(
        "{:>7} {:>13} {:>15} {:>15} {:>15}",
        "threads", "ns/edge(live)", "ns/edge(replay)", "replay/live", "allocs/kedge"
    );
    let mut worst_allocs_per_kedge = 0.0f64;
    for threads in [1usize, 4] {
        const TOKEN: u64 = 0xC8A1;
        let rt = Runtime::with_threads(threads);
        for _ in 0..8 {
            chain(&rt, batch);
        }
        let mut live_ns = Vec::new();
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            chain(&rt, batch);
            live_ns.push(t0.elapsed().as_nanos() as f64);
        }
        // Record once, then settle so cross-thread record reclaim drains
        // out of the measured windows.
        for _ in 0..4 {
            chain_replay(&rt, batch, TOKEN);
        }
        let before = rt.stats();
        let mut rep_ns = Vec::new();
        let mut window_allocs = Vec::new();
        for _ in 0..reps {
            let allocs_before = alloc_calls();
            let t0 = std::time::Instant::now();
            chain_replay(&rt, batch, TOKEN);
            rep_ns.push(t0.elapsed().as_nanos() as f64);
            window_allocs.push(alloc_calls() - allocs_before);
        }
        let d = rt.stats().since(&before);
        assert_eq!(d.replays_hit, reps, "every measured run must replay");
        assert_eq!(d.replays_diverged, 0, "the shape never changes");
        assert_eq!(
            d.deps_registered, 0,
            "a warm replay must touch no tracker state"
        );

        let chain_edges = (batch - 1) as f64;
        live_ns.sort_by(|a, b| a.total_cmp(b));
        rep_ns.sort_by(|a, b| a.total_cmp(b));
        let ns_live = live_ns[live_ns.len() / 2] / chain_edges;
        let ns_replay = rep_ns[rep_ns.len() / 2] / chain_edges;
        let allocs_per_kedge = *window_allocs.iter().min().unwrap() as f64 / (chain_edges / 1000.0);
        worst_allocs_per_kedge = worst_allocs_per_kedge.max(allocs_per_kedge);
        println!(
            "{:>7} {:>13.1} {:>15.1} {:>15.3} {:>15.3}",
            threads,
            ns_live,
            ns_replay,
            ns_replay / ns_live,
            allocs_per_kedge
        );
        replay_report.push(format!("ns_per_edge_replay_t{threads}"), ns_replay);
        if threads == 1 {
            replay_report.push("replay_over_live", ns_replay / ns_live);
        }
    }
    replay_report.push("allocs_per_kedge_replay", worst_allocs_per_kedge);

    // Whole-kernel view: SparseLU deps replayed vs live on the default
    // team (informational — the matrix is small and the ratio noisy).
    let warm = BlockMatrix::generate(nb, bs, 7);
    sparselu_parallel_replay(&rt, &warm, 0x51, false);
    let mut pool: Vec<BlockMatrix> = (0..5).map(|_| BlockMatrix::generate(nb, bs, 7)).collect();
    let replay_ms = median_ms(5, || {
        let m = pool.pop().expect("one pre-built matrix per rep");
        sparselu_parallel_replay(&rt, &m, 0x51, false);
    });
    let lu_ratio = replay_ms / deps_ms;
    println!(
        "sparselu {nb}x{nb} blocks of {bs}x{bs}: live deps {deps_ms:.2} ms, \
         replayed {replay_ms:.2} ms (ratio {lu_ratio:.3})"
    );
    replay_report.push("sparselu_replay_ms", replay_ms);
    replay_report.push("sparselu_replay_over_live", lu_ratio);

    replay_report.maybe_emit();
}
