//! Loop-surface diagnostic: per-iteration cost of `for_each` in both
//! [`LoopMode`]s at a deliberately fine grain — the regime the worksharing
//! protocol exists for. `Tasks` mode pays a full task record, deque push
//! and dispatch per chunk; `Worksharing` publishes one pooled descriptor
//! and claims the same chunks off an atomic cursor, so on fine grains the
//! worksharing/task ratio must stay **below 1.0** — that ratio is a gated
//! metric, not a narrative claim.
//!
//! Runs under the counting allocator: `ws_allocs_steady_t1` measures the
//! warm worksharing path's allocations per thousand iterations (expected
//! 0, held to `bench_gate`'s absolute ceiling of 1.0 for zero-baseline
//! metrics). Each iteration stores into its own slot of a shared sink, so
//! the body is real work without cross-thread contention and a lost or
//! doubled iteration cannot hide. With `BOTS_BENCH_JSON_DIR` set, writes
//! `BENCH_loops.json` for the CI artifact + `bench_gate`.

use std::sync::atomic::{AtomicU64, Ordering};

use bots::runtime::LoopMode;
use bots::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// One region running one `for_each` over the whole space.
fn run_loop(rt: &Runtime, sink: &[AtomicU64], grain: usize, mode: LoopMode) {
    rt.parallel(|s| {
        s.for_each(0..sink.len(), |i, _| {
            sink[i].store(i as u64 ^ 0x9E37_79B9, Ordering::Relaxed);
        })
        .chunk(grain)
        .mode(mode)
        .run();
    });
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let grain = 16usize;
    let reps = 10u32;
    let sink: Vec<AtomicU64> = (0..iters).map(|_| AtomicU64::new(0)).collect();
    let mut report = Report::new("loops");

    println!("iters={iters} grain={grain} reps={reps}");
    println!(
        "{:>7} {:>13} {:>11} {:>10} {:>14} {:>10} {:>10}",
        "threads",
        "ns/iter(task)",
        "ns/iter(ws)",
        "ws/tasks",
        "allocs/kit(ws)",
        "chunks",
        "recycled"
    );
    for threads in [1usize, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm both paths: record slabs for the task mode, pooled loop
        // descriptors on every shard for the worksharing mode.
        for _ in 0..4 {
            run_loop(&rt, &sink, grain, LoopMode::Tasks);
            run_loop(&rt, &sink, grain, LoopMode::Worksharing);
        }

        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            run_loop(&rt, &sink, grain, LoopMode::Tasks);
        }
        let tasks_elapsed = t0.elapsed();

        let before = rt.stats();
        let ws_allocs_before = alloc_calls();
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            run_loop(&rt, &sink, grain, LoopMode::Worksharing);
        }
        let ws_elapsed = t1.elapsed();
        let ws_allocs = alloc_calls() - ws_allocs_before;
        let d = rt.stats().since(&before);

        let total = (iters as u64 * u64::from(reps)) as f64;
        let ns_tasks = tasks_elapsed.as_nanos() as f64 / total;
        let ns_ws = ws_elapsed.as_nanos() as f64 / total;
        let ratio = ns_ws / ns_tasks;
        let allocs_per_kit = ws_allocs as f64 / (total / 1000.0);
        println!(
            "{:>7} {:>13.2} {:>11.2} {:>10.3} {:>14.3} {:>10} {:>10}",
            threads, ns_tasks, ns_ws, ratio, allocs_per_kit, d.ws_chunks, d.loops_recycled,
        );
        report.push(format!("ns_per_iter_tasks_t{threads}"), ns_tasks);
        report.push(format!("ns_per_iter_ws_t{threads}"), ns_ws);
        if threads == 1 {
            report.push("ws_over_tasks_t1".to_string(), ratio);
            report.push("ws_allocs_steady_t1".to_string(), allocs_per_kit);
        }
    }
    report.maybe_emit();
}
