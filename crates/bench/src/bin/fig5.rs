//! Regenerates **Figure 5** — "tied and untied tasks": Alignment and
//! NQueens, tied vs untied versions, across team sizes.
//!
//! Our runtime (like icc 11.0 in the paper) does not migrate started
//! tasks; tiedness only constrains what a worker may run while blocked at
//! a taskwait. The paper found ≤4% difference — expect the same order.

use bots::alignment::AlignmentBench;
use bots::nqueens::NQueensBench;
use bots::suite::{CutoffMode, Generator, Tiedness, VersionSpec};
use bots_bench::{emit, parse_args};
use bots_runtime::RuntimeConfig;
use bots_suite::{f, runner, Table};

fn main() {
    let args = parse_args();
    println!(
        "Figure 5 — tied vs untied tasks ({} class, {} reps)\n",
        args.class, args.reps
    );

    let alignment_base = VersionSpec::default().generator(Generator::For);
    let nqueens_base = VersionSpec::default().cutoff(CutoffMode::Manual);
    let series: Vec<(&str, Box<dyn bots::suite::Benchmark>, VersionSpec)> = vec![
        (
            "alignment tied",
            Box::new(AlignmentBench),
            alignment_base.tied(Tiedness::Tied),
        ),
        (
            "alignment untied",
            Box::new(AlignmentBench),
            alignment_base.tied(Tiedness::Untied),
        ),
        (
            "nqueens tied",
            Box::new(NQueensBench),
            nqueens_base.tied(Tiedness::Tied),
        ),
        (
            "nqueens untied",
            Box::new(NQueensBench),
            nqueens_base.tied(Tiedness::Untied),
        ),
    ];

    let mut headers: Vec<String> = vec!["series".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);

    for (label, bench, version) in series {
        eprintln!("[fig5] {label} ...");
        let (_serial, points) = runner::thread_sweep(
            bench.as_ref(),
            args.class,
            version,
            &args.threads,
            args.reps,
            RuntimeConfig::new,
        );
        let mut row = vec![label.to_string()];
        row.extend(points.iter().map(|p| f(p.speedup, 2)));
        table.row(row);
    }
    emit(&table);
    println!("\nPaper shape: tied ≈ untied for both applications (≤ a few %).");
}
