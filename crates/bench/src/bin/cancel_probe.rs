//! Cancellation-latency diagnostic: nanoseconds from `cancel()` to
//! observed quiescence for a deep in-flight spawn storm, swept over team
//! sizes. This is the number the cancellation machinery answers for — how
//! long a server waits between pulling the plug on a runaway region and
//! getting its workers back.
//!
//! The storm is effectively unbounded (2^50 tasks), so the measured drain
//! is pure cancellation work: suppressed spawns, skip-dispatches of
//! whatever the queues held, and the quiescence handshake. With
//! `BOTS_BENCH_JSON_DIR` set, writes `BENCH_cancel_probe.json`
//! (`cancel_ns_t{1,2,4}`) for the CI perf-trajectory gate (`bench_gate`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bots::runtime::{RegionError, Scope};
use bots::Runtime;
use bots_bench::perf::Report;

static TICKS: AtomicU64 = AtomicU64::new(0);

fn storm(s: &Scope<'_>, depth: u32) {
    if depth == 0 || s.is_cancelled() {
        return;
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
    for _ in 0..2 {
        s.spawn(move |s| storm(s, depth - 1));
    }
}

fn main() {
    let fast = std::env::var("BOTS_BENCH_FAST").is_ok_and(|v| v == "1");
    let reps = if fast { 10 } else { 30 };
    // In-flight depth before the plug is pulled: enough task traffic that
    // the queues hold real work on every team size.
    let flight: u64 = 3_000;
    let mut report = Report::new("cancel_probe");

    println!("reps={reps} flight={flight}");
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12}",
        "threads", "cancel_ns", "worst_ns", "skipped/rep", "ran/rep"
    );
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        let mut latencies = Vec::with_capacity(reps);
        let mut skipped = 0u64;
        let mut ran = 0u64;
        // One unmeasured round warms the slabs and queues to storm scale.
        for rep in 0..=reps {
            let before = TICKS.load(Ordering::Relaxed);
            let mut h = rt.submit(|s| {
                storm(s, 50);
                s.taskwait();
            });
            while TICKS.load(Ordering::Relaxed) - before < flight {
                std::hint::spin_loop();
            }
            let t0 = std::time::Instant::now();
            h.cancel();
            let outcome = loop {
                if let Some(o) = h.try_join(Duration::from_millis(20)) {
                    break o;
                }
            };
            let latency = t0.elapsed();
            assert!(
                matches!(outcome, Err(RegionError::Cancelled)),
                "the storm cannot quiesce except by cancellation"
            );
            if rep == 0 {
                continue;
            }
            latencies.push(latency);
            let stats = h.stats();
            skipped += stats.skipped_tasks;
            ran += stats.executed;
        }
        latencies.sort_unstable();
        let median = latencies[latencies.len() / 2];
        let worst = *latencies.last().unwrap();
        println!(
            "{:>7} {:>14.0} {:>14.0} {:>12} {:>12}",
            threads,
            median.as_nanos() as f64,
            worst.as_nanos() as f64,
            skipped / reps as u64,
            ran / reps as u64,
        );
        report.push(format!("cancel_ns_t{threads}"), median.as_nanos() as f64);
    }
    report.maybe_emit();
}
