//! §IV-D analysis — **cut-off value sweep**: how the manual cut-off depth
//! trades exposed parallelism against task overhead.
//!
//! "Choosing a low cut-off value can restrict parallelism opportunities
//! but choosing a high cut-off value can saturate the system with a large
//! amount of tasks." This sweep shows the bathtub directly for the three
//! depth-cut-off recursive kernels.

use bots::fib;
use bots::floorplan;
use bots::nqueens;
use bots::profile::NullProbe;
use bots_bench::{emit, parse_args};
use bots_runtime::Runtime;
use bots_suite::{f, Table};

fn main() {
    let args = parse_args();
    let threads = *args.threads.last().unwrap_or(&4);
    let depths: Vec<u32> = vec![0, 1, 2, 4, 6, 8, 12, 16, 24, 32];
    println!(
        "Cut-off depth sweep — manual versions, {} threads, {} class\n",
        threads, args.class
    );

    let mut headers: Vec<String> = vec!["app".into(), "serial".into()];
    headers.extend(depths.iter().map(|d| format!("d={d}")));
    let mut table = Table::new(headers);

    // Fib.
    {
        let n = fib::n_for(args.class);
        let (_, serial_time) = bots_profile::timed(|| fib::fib(n));
        let rt = Runtime::with_threads(threads);
        let mut row = vec![
            "fib".to_string(),
            format!("{:.3}s", serial_time.as_secs_f64()),
        ];
        for &d in &depths {
            eprintln!("[cutoff] fib depth {d} ...");
            let (_, t) =
                bots_profile::timed(|| fib::fib_parallel(&rt, n, fib::FibMode::Manual, true, d));
            row.push(f(serial_time.as_secs_f64() / t.as_secs_f64(), 2));
        }
        table.row(row);
    }

    // NQueens.
    {
        let n = nqueens::n_for(args.class);
        let (_, serial_time) = bots_profile::timed(|| nqueens::count_solutions(n));
        let rt = Runtime::with_threads(threads);
        let mut row = vec![
            "nqueens".to_string(),
            format!("{:.3}s", serial_time.as_secs_f64()),
        ];
        for &d in &depths {
            eprintln!("[cutoff] nqueens depth {d} ...");
            let (_, t) = bots_profile::timed(|| {
                nqueens::count_parallel(
                    &rt,
                    n,
                    nqueens::QueensMode::Manual,
                    true,
                    d,
                    nqueens::Accumulator::WorkerLocal,
                )
            });
            row.push(f(serial_time.as_secs_f64() / t.as_secs_f64(), 2));
        }
        table.row(row);
    }

    // Floorplan (nodes/second-based speed-up).
    {
        let cells = floorplan::generate_cells(floorplan::cells_for(args.class), 0xF100_4711);
        let (serial, serial_time) =
            bots_profile::timed(|| floorplan::search_serial(&NullProbe, &cells));
        let serial_rate = serial.nodes as f64 / serial_time.as_secs_f64();
        let rt = Runtime::with_threads(threads);
        let mut row = vec![
            "floorplan".to_string(),
            format!("{:.3}s", serial_time.as_secs_f64()),
        ];
        for &d in &depths {
            eprintln!("[cutoff] floorplan depth {d} ...");
            let (r, t) = bots_profile::timed(|| {
                floorplan::search_parallel(&rt, &cells, floorplan::FloorplanMode::Manual, true, d)
            });
            let rate = r.nodes as f64 / t.as_secs_f64();
            row.push(f(rate / serial_rate, 2));
        }
        table.row(row);
    }

    emit(&table);
    println!("\nPaper shape: a bathtub — d=0 serialises, very deep cut-offs");
    println!("drown in task overhead; the sweet spot sits at a few levels");
    println!("past log2(threads).");
}
