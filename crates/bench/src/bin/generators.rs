//! §IV-D analysis — **single vs multiple generators**: SparseLU with all
//! tasks created by one thread (`single`) vs by the whole team through a
//! worksharing loop (`for`), plus Alignment which has the same two
//! structures.

use bots::alignment::AlignmentBench;
use bots::sparselu::SparseLuBench;
use bots::suite::{Benchmark, Generator, VersionSpec};
use bots_bench::{emit, parse_args};
use bots_runtime::RuntimeConfig;
use bots_suite::{f, runner, Table};

fn main() {
    let args = parse_args();
    println!(
        "Generator schemes — single vs multiple task generators ({} class, {} reps)\n",
        args.class, args.reps
    );

    let series: Vec<(&str, Box<dyn Benchmark>, VersionSpec)> = vec![
        (
            "sparselu single",
            Box::new(SparseLuBench),
            VersionSpec::default().generator(Generator::Single),
        ),
        (
            "sparselu for",
            Box::new(SparseLuBench),
            VersionSpec::default().generator(Generator::For),
        ),
        (
            "alignment single",
            Box::new(AlignmentBench),
            VersionSpec::default().generator(Generator::Single),
        ),
        (
            "alignment for",
            Box::new(AlignmentBench),
            VersionSpec::default().generator(Generator::For),
        ),
    ];

    let mut headers: Vec<String> = vec!["series".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);

    for (label, bench, version) in series {
        eprintln!("[generators] {label} ...");
        let (_serial, points) = runner::thread_sweep(
            bench.as_ref(),
            args.class,
            version,
            &args.threads,
            args.reps,
            RuntimeConfig::new,
        );
        let mut row = vec![label.to_string()];
        row.extend(points.iter().map(|p| f(p.speedup, 2)));
        table.row(row);
    }
    emit(&table);
    println!("\nExpected shape: the single generator becomes a serial bottleneck");
    println!("as the team grows; multiple generators keep creation off the");
    println!("critical path (most visible on SparseLU's phase bursts).");
}
