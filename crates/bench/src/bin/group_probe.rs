//! Taskgroup-path diagnostic: per-construct cost of `taskgroup` now that
//! group descriptors are pooled, swept over team sizes. Two shapes per
//! sweep: an *empty* group (pure lease + wait overhead) and a *fib-shaped*
//! group (two spawned members returning through parent-frame slots — the
//! inner loop of every recursive BOTS kernel).
//!
//! Runs under the counting allocator so group allocations are measured,
//! not asserted-by-construction. Allocations are reported **per 1000
//! groups, per shape**: a reintroduced per-group allocation (the old
//! `Arc<Group>`) measures ≈ 1000 against `bench_gate`'s absolute ceiling
//! of 1.0 for zero-baseline metrics, while a stray slab-growth allocation
//! or two per hundred-thousand groups stays far below it — the gate trips
//! on the regression, not on noise, and a regression confined to one
//! shape cannot hide in the other's denominator. With
//! `BOTS_BENCH_JSON_DIR` set, writes `BENCH_group_probe.json` for the CI
//! artifact + `bench_gate`.

use std::sync::atomic::{AtomicU64, Ordering};

use bots::runtime::RuntimeStats;
use bots::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// One region of `batch` empty taskgroups.
fn empty_groups(rt: &Runtime, batch: u64) {
    rt.parallel(|s| {
        for _ in 0..batch {
            s.taskgroup(|_| {});
        }
    });
}

/// One region of `batch` fib-shaped taskgroups: two members each, results
/// through parent-frame atomics.
fn fib_groups(rt: &Runtime, batch: u64) -> u64 {
    let acc = AtomicU64::new(0);
    rt.parallel(|s| {
        let acc = &acc;
        for _ in 0..batch {
            let a = AtomicU64::new(0);
            let b = AtomicU64::new(0);
            s.taskgroup(|s| {
                s.spawn(|_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|_| {
                    b.fetch_add(2, Ordering::Relaxed);
                });
            });
            acc.fetch_add(
                a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    });
    acc.load(Ordering::Relaxed)
}

fn main() {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let reps = 10;
    let mut report = Report::new("group_probe");

    println!("batch={batch} reps={reps}");
    println!(
        "{:>7} {:>14} {:>12} {:>15} {:>13} {:>10} {:>10} {:>11}",
        "threads",
        "ns/group(0)",
        "ns/group(2)",
        "allocs/kgrp(0)",
        "allocs/kgrp(2)",
        "fresh",
        "recycled",
        "group_waits"
    );
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm the group pool, the slabs and the region descriptors.
        empty_groups(&rt, batch);
        assert_eq!(fib_groups(&rt, batch), batch * 3);

        let before: RuntimeStats = rt.stats();
        let empty_allocs_before = alloc_calls();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            empty_groups(&rt, batch);
        }
        let empty_elapsed = t0.elapsed();
        let empty_allocs = alloc_calls() - empty_allocs_before;
        let fib_allocs_before = alloc_calls();
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            assert_eq!(fib_groups(&rt, batch), batch * 3);
        }
        let fib_elapsed = t1.elapsed();
        let fib_allocs = alloc_calls() - fib_allocs_before;
        let d = rt.stats().since(&before);

        let groups = (batch * reps) as f64;
        let kgroups = groups / 1000.0;
        let ns_empty = empty_elapsed.as_nanos() as f64 / groups;
        let ns_fib = fib_elapsed.as_nanos() as f64 / groups;
        let empty_allocs_per_k = empty_allocs as f64 / kgroups;
        let fib_allocs_per_k = fib_allocs as f64 / kgroups;
        println!(
            "{:>7} {:>14.1} {:>12.1} {:>15.3} {:>13.3} {:>10} {:>10} {:>11}",
            threads,
            ns_empty,
            ns_fib,
            empty_allocs_per_k,
            fib_allocs_per_k,
            d.groups_fresh,
            d.groups_recycled,
            d.group_waits,
        );
        report.push(format!("ns_per_group_empty_t{threads}"), ns_empty);
        report.push(format!("ns_per_group_fib_t{threads}"), ns_fib);
        report.push(
            format!("allocs_per_kgroup_empty_t{threads}"),
            empty_allocs_per_k,
        );
        report.push(
            format!("allocs_per_kgroup_fib_t{threads}"),
            fib_allocs_per_k,
        );
    }
    report.maybe_emit();
}
