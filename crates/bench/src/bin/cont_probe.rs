//! Continuation-path diagnostic: the cost of a wait that actually
//! **suspends** — parks its pooled cactus-stack frame, frees the worker,
//! and resumes when the awaited child retires — and the feasibility of
//! extreme spawn-chain depth on page-scale stacks.
//!
//! Three metric families:
//!
//! * `suspend_resume_ns_tN` — wall time of spawn-then-wait ladders
//!   divided by the *measured* suspension count (`cont_suspends` delta),
//!   so the metric prices the full suspend → wake → resume round trip,
//!   not waits that happened to find their children done. (Named
//!   `*_ns`, not `ns_per_suspend…`: the gate keys direction on the
//!   `_per_s` substring, which `per_suspend` would collide with.)
//! * `chain_links_per_s` — throughput of a 200 000-link left-deep spawn
//!   chain, the adversarial deep-recursion shape: every link is a
//!   deferred task on a pooled continuation, so the chain's feasibility
//!   (it used to need a 64 MiB worker stack) is gated together with its
//!   speed.
//! * `cont_allocs_steady` — allocations per 1000 suspensions on a warm
//!   one-thread team, against a zero baseline: one allocation per wait
//!   would measure ≈ 1000 against `bench_gate`'s absolute ceiling of
//!   1.0. Only the single-thread figure is gated — it is deterministic,
//!   while contended teams see an occasional slab-growth allocation.
//!
//! With `BOTS_BENCH_JSON_DIR` set, writes `BENCH_cont.json` for the CI
//! artifact + `bench_gate`.

use std::sync::atomic::{AtomicU64, Ordering};

use bots::runtime::Scope;
use bots::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

static TICKS: AtomicU64 = AtomicU64::new(0);

/// A spawn-then-wait ladder: every rung defers one child and immediately
/// `taskwait`s, so the wait routinely suspends (always, on one thread).
fn ladder(s: &Scope<'_>, depth: u32) {
    TICKS.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    s.spawn(move |s| ladder(s, depth - 1));
    s.taskwait();
}

/// One region of `width` concurrent ladders, `depth` rungs each.
fn ladders(rt: &Runtime, width: u64, depth: u32) {
    let before = TICKS.load(Ordering::Relaxed);
    rt.parallel(|s| {
        for _ in 0..width {
            s.spawn(move |s| ladder(s, depth));
        }
    });
    assert_eq!(
        TICKS.load(Ordering::Relaxed) - before,
        width * (depth as u64 + 1)
    );
}

/// A left-deep spawn chain `links` deep: each task defers exactly one
/// child. Exactly one task is runnable at any instant; every link mounts
/// on a pooled continuation, never on a worker's native stack.
fn chain(rt: &Runtime, links: u64) {
    fn link(s: &Scope<'_>, remaining: u64) {
        TICKS.fetch_add(1, Ordering::Relaxed);
        if remaining > 0 {
            s.spawn(move |s| link(s, remaining - 1));
        }
    }
    let before = TICKS.load(Ordering::Relaxed);
    rt.parallel(move |s| link(s, links));
    assert_eq!(TICKS.load(Ordering::Relaxed) - before, links + 1);
}

fn main() {
    let depth: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let width = 8u64;
    let reps = 20;
    let chain_links = 200_000u64;
    let mut report = Report::new("cont");

    println!("width={width} depth={depth} reps={reps} chain={chain_links}");
    println!(
        "{:>7} {:>18} {:>16} {:>12} {:>10} {:>10} {:>11}",
        "threads",
        "ns/susp-resume",
        "allocs/ksusp",
        "suspends",
        "resumes",
        "migrations",
        "recycled"
    );
    for threads in [1usize, 4] {
        let rt = Runtime::with_threads(threads);
        // Warm the continuation pool to this shape's peak suspension
        // depth, plus the slabs and region descriptors.
        for _ in 0..3 {
            ladders(&rt, width, depth);
        }

        let before = rt.stats();
        let allocs_before = alloc_calls();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            ladders(&rt, width, depth);
        }
        let elapsed = t0.elapsed();
        let allocs = alloc_calls() - allocs_before;
        let d = rt.stats().since(&before);
        assert_eq!(d.cont_suspends, d.cont_resumes);
        assert!(
            d.cont_suspends > 0,
            "the ladders never suspended: the probe is not measuring the path"
        );

        let ns = elapsed.as_nanos() as f64 / d.cont_suspends as f64;
        let allocs_per_k = allocs as f64 / (d.cont_suspends as f64 / 1000.0);
        println!(
            "{:>7} {:>18.1} {:>16.3} {:>12} {:>10} {:>10} {:>11}",
            threads,
            ns,
            allocs_per_k,
            d.cont_suspends,
            d.cont_resumes,
            d.cont_migrations,
            d.conts_recycled,
        );
        report.push(format!("suspend_resume_ns_t{threads}"), ns);
        if threads == 1 {
            report.push("cont_allocs_steady".to_string(), allocs_per_k);
        }
    }

    // The depth gate: the full adversarial chain on one thread, warm.
    let rt = Runtime::with_threads(1);
    chain(&rt, chain_links);
    let t0 = std::time::Instant::now();
    chain(&rt, chain_links);
    let elapsed = t0.elapsed();
    let links_per_s = chain_links as f64 / elapsed.as_secs_f64();
    println!(
        "chain: {chain_links} links in {:.1} ms ({:.0} links/s)",
        elapsed.as_secs_f64() * 1e3,
        links_per_s
    );
    report.push("chain_links_per_s".to_string(), links_per_s);

    report.maybe_emit();
}
