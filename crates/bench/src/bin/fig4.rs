//! Regenerates **Figure 4** — "Queens benchmark using different cut-off
//! mechanisms": manual cut-off vs if-clause cut-off vs no application
//! cut-off, across team sizes.
//!
//! The no-cutoff series runs twice: with the runtime's task-count cut-off
//! active (what the paper's Intel runtime did) and with no runtime cut-off
//! at all (all burden on the queues).

use bots::nqueens::NQueensBench;
use bots::suite::{CutoffMode, Tiedness, VersionSpec};
use bots_bench::{emit, parse_args};
use bots_runtime::{RuntimeConfig, RuntimeCutoff};
use bots_suite::{f, runner, Table};

fn main() {
    let args = parse_args();
    let bench = NQueensBench;
    println!(
        "Figure 4 — NQueens cut-off mechanisms ({} class, {} reps)\n",
        args.class, args.reps
    );

    let series: Vec<(&str, VersionSpec, RuntimeCutoff)> = vec![
        (
            "manual cut-off",
            VersionSpec::default()
                .cutoff(CutoffMode::Manual)
                .tied(Tiedness::Untied),
            RuntimeCutoff::None,
        ),
        (
            "if-clause cut-off",
            VersionSpec::default()
                .cutoff(CutoffMode::IfClause)
                .tied(Tiedness::Untied),
            RuntimeCutoff::None,
        ),
        (
            "no cut-off (runtime max-tasks)",
            VersionSpec::default()
                .cutoff(CutoffMode::NoCutoff)
                .tied(Tiedness::Untied),
            RuntimeCutoff::MaxTasks { per_worker: 64 },
        ),
        (
            "no cut-off (nothing)",
            VersionSpec::default()
                .cutoff(CutoffMode::NoCutoff)
                .tied(Tiedness::Untied),
            RuntimeCutoff::None,
        ),
    ];

    let mut headers: Vec<String> = vec!["series".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);

    for (label, version, cutoff) in series {
        eprintln!("[fig4] {label} ...");
        let (_serial, points) =
            runner::thread_sweep(&bench, args.class, version, &args.threads, args.reps, |n| {
                RuntimeConfig::new(n).with_cutoff(cutoff)
            });
        let mut row = vec![label.to_string()];
        row.extend(points.iter().map(|p| f(p.speedup, 2)));
        table.row(row);
    }
    emit(&table);
    println!("\nPaper shape: manual ≥ if-clause ≥ no-cutoff; the gap between");
    println!("manual and if-clause is pure runtime bookkeeping overhead.");
}
