//! Regenerates **Figure 3** — "Benchmark suite results": speed-up of the
//! best version of every application against its serial run, across team
//! sizes. (Floorplan's speed-up is nodes/second-based, as in the paper.)

use bots::registry;
use bots_bench::{app_selected, emit, parse_args};
use bots_runtime::RuntimeConfig;
use bots_suite::{f, runner, Table};

fn main() {
    let args = parse_args();
    println!(
        "Figure 3 — speed-up of each application's best version ({} class, {} reps)\n",
        args.class, args.reps
    );

    let mut headers: Vec<String> = vec!["app (version)".into(), "serial".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);

    for bench in registry() {
        let name = bench.meta().name;
        if !app_selected(&args, name) {
            continue;
        }
        let version = bench.best_version();
        eprintln!("[fig3] {name} ({version}) ...");
        let (serial, points) = runner::thread_sweep(
            bench.as_ref(),
            args.class,
            version,
            &args.threads,
            args.reps,
            RuntimeConfig::new,
        );
        let mut row = vec![
            format!("{} ({})", name.to_lowercase(), version.label()),
            format!("{:.3}s", serial.time.as_secs_f64()),
        ];
        row.extend(points.iter().map(|p| f(p.speedup, 2)));
        table.row(row);
    }
    emit(&table);
    println!("\nPaper shape: NQueens/SparseLU near-linear; Strassen, Health and");
    println!("FFT saturate early; Alignment and Sort in between.");
}
