//! Regenerates **Table II** — "Application characteristics with the medium
//! input sets": serial time, peak memory, number of potential tasks, and
//! the per-task averages (arithmetic ops, taskwaits, captured-environment
//! bytes and writes, % non-private writes, ops per write, ops per
//! non-private write).
//!
//! The counts come from the instrumented serial run (`Probe`), memory from
//! the counting global allocator installed below, and serial time from the
//! uninstrumented reference run.

use bots::registry;
use bots_bench::{app_selected, parse_args};
use bots_profile::{peak_bytes, reset_peak, table2_header, Characteristics, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args = parse_args();
    println!(
        "Table II — application characteristics with the {} input set\n",
        args.class
    );
    println!("{}", table2_header());

    let mut csv_rows = Vec::new();
    for bench in registry() {
        let name = bench.meta().name;
        if !app_selected(&args, name) {
            continue;
        }
        // Timing first (uninstrumented), tracking the allocation peak.
        reset_peak();
        let base = bots_profile::current_bytes();
        let t0 = std::time::Instant::now();
        let _out = bench.run_serial(args.class);
        let serial_time = t0.elapsed();
        let memory_bytes = peak_bytes().saturating_sub(base);

        // Then the instrumented run for the counts.
        let counts = bench.characterize(args.class);

        let row = Characteristics {
            app: name.to_string(),
            input: bench.input_desc(args.class),
            serial_time,
            memory_bytes,
            counts,
        };
        println!("{row}");
        csv_rows.push(format!(
            "{},{},{:.6},{},{},{:.4},{:.4},{:.2},{:.4},{:.4},{:.4},{}",
            row.app,
            row.input.replace(',', ";"),
            row.serial_time.as_secs_f64(),
            row.memory_bytes,
            row.potential_tasks(),
            row.ops_per_task(),
            row.taskwaits_per_task(),
            row.env_bytes_per_task(),
            row.env_writes_per_task(),
            row.pct_nonprivate_writes(),
            row.ops_per_write(),
            row.ops_per_nonprivate_write()
                .map_or("-".into(), |v| format!("{v:.4}")),
        ));
    }

    println!("\n--- csv ---");
    println!(
        "app,input,serial_s,peak_bytes,tasks,ops_per_task,taskwaits_per_task,\
         env_bytes_per_task,env_writes_per_task,pct_nonprivate,ops_per_write,ops_per_npwrite"
    );
    for r in csv_rows {
        println!("{r}");
    }
}
