//! Design-choice ablations called out in the paper's §III-B but not given
//! their own figure:
//!
//! 1. **Sort's parallel merge** — "merging the sorted halves with a
//!    parallel divide-and-conquer method rather than the conventional
//!    serial merge": cilksort with parallel vs serial merges.
//! 2. **NQueens' accumulator** — "one approach is to surround the
//!    accumulation with a `critical` directive but this would cause a lot
//!    of contention. To avoid it, we used `threadprivate` variables":
//!    per-worker counters vs one shared atomic.

use bots::nqueens::{count_parallel, Accumulator, QueensMode};
use bots::sort::{cilksort_with_merge, MergeStrategy};
use bots::{nqueens, sort};
use bots_bench::{emit, parse_args};
use bots_inputs::arrays::random_u32s;
use bots_runtime::Runtime;
use bots_suite::Table;

fn main() {
    let args = parse_args();
    println!("Ablations ({} class)\n", args.class);

    // 1. Sort merge strategy across the thread ladder.
    let n = sort::n_for(args.class);
    let mut headers: Vec<String> = vec!["sort variant".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);
    let (_, serial_time) = bots_profile::timed(|| {
        let mut v = random_u32s(n, 0xB0755);
        let mut tmp = vec![0u32; v.len()];
        bots::sort::cilksort_serial(&bots_profile::NullProbe, &mut v, &mut tmp);
    });
    for (label, strategy) in [
        ("parallel merge", MergeStrategy::Parallel),
        ("serial merge", MergeStrategy::Serial),
    ] {
        let mut row = vec![label.to_string()];
        for &t in &args.threads {
            eprintln!("[ablations] sort {label} {t}T ...");
            let rt = Runtime::with_threads(t);
            let mut best = f64::INFINITY;
            for _ in 0..args.reps {
                let mut v = random_u32s(n, 0xB0755);
                let (_, d) =
                    bots_profile::timed(|| cilksort_with_merge(&rt, &mut v, true, strategy));
                best = best.min(d.as_secs_f64());
            }
            row.push(format!("{:.2}", serial_time.as_secs_f64() / best));
        }
        table.row(row);
    }
    println!("Sort: parallel vs conventional serial merge (speed-up over serial sort):");
    emit(&table);

    // 2. NQueens accumulator.
    let qn = nqueens::n_for(args.class);
    let cutoff = nqueens::cutoff_for(args.class);
    let mut headers: Vec<String> = vec!["nqueens accumulator".into()];
    headers.extend(args.threads.iter().map(|t| format!("{t}T")));
    let mut table = Table::new(headers);
    let (_, serial_time) = bots_profile::timed(|| nqueens::count_solutions(qn));
    for (label, acc) in [
        ("threadprivate (worker-local)", Accumulator::WorkerLocal),
        ("critical (shared atomic)", Accumulator::Atomic),
    ] {
        let mut row = vec![label.to_string()];
        for &t in &args.threads {
            eprintln!("[ablations] nqueens {label} {t}T ...");
            let rt = Runtime::with_threads(t);
            let mut best = f64::INFINITY;
            for _ in 0..args.reps {
                let (_, d) = bots_profile::timed(|| {
                    count_parallel(&rt, qn, QueensMode::Manual, true, cutoff, acc)
                });
                best = best.min(d.as_secs_f64());
            }
            row.push(format!("{:.2}", serial_time.as_secs_f64() / best));
        }
        table.row(row);
    }
    println!("\nNQueens: solution-count accumulation (speed-up over serial):");
    emit(&table);

    println!("\nExpected shapes: the serial merge caps Sort's scalability (the");
    println!("merge becomes the sequential fraction); the shared atomic mostly");
    println!("matches threadprivate here because the manual cut-off already");
    println!("coarsens updates — rerun with --class small and cutoff-free");
    println!("versions to see the contention the paper warns about.");
}
