//! Multi-region throughput probe: N client threads each feed M regions to
//! one worker team through the non-blocking `submit` API, with a bounded
//! number of regions in flight per client. Reports end-to-end region
//! throughput (regions/sec) and the cost of the submission call itself
//! (ns/submit) — the two numbers that characterise the sharded injector
//! and the region-descriptor machinery under concurrent clients.
//!
//! ```text
//! regions_probe [regions-per-client] [spawns-per-region]
//! ```
//!
//! Sweeps client counts at a fixed team size; `BOTS_BENCH_FAST=1` (the CI
//! smoke setting) shrinks the workload. Runs under the counting allocator
//! so allocations per region are measured; with `BOTS_BENCH_JSON_DIR` set,
//! writes `BENCH_regions_probe.json` (regions/s, ns/submit, allocs/region
//! per client count) for the CI perf-trajectory artifact + gate
//! (`bench_gate`).

use std::sync::atomic::{AtomicU64, Ordering};

use bots::runtime::Runtime;
use bots_bench::perf::Report;
use bots_profile::alloc_calls;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// Regions a client keeps in flight before joining the oldest.
const WINDOW: usize = 16;

fn main() {
    let fast = std::env::var("BOTS_BENCH_FAST").is_ok_and(|v| v == "1");
    let regions: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 50 } else { 400 });
    let spawns: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let workers = 4usize;
    let mut report = Report::new("regions_probe");

    println!("workers={workers} regions/client={regions} spawns/region={spawns} window={WINDOW}");
    println!(
        "{:>8} {:>12} {:>12} {:>13} {:>12} {:>10} {:>11}",
        "clients", "regions/s", "ns/submit", "allocs/region", "tasks/s", "parks", "propagated"
    );

    for clients in [1usize, 2, 4, 8] {
        let rt = Runtime::with_threads(workers);
        // Warm the team, the slabs, the injector shards and the region
        // descriptor pool.
        run_clients(&rt, clients, regions.min(64), spawns);

        let before = rt.stats();
        let allocs_before = alloc_calls();
        let t0 = std::time::Instant::now();
        let submit_ns = run_clients(&rt, clients, regions, spawns);
        let elapsed = t0.elapsed();
        let allocs = alloc_calls() - allocs_before;
        let d = rt.stats().since(&before);

        let total_regions = clients as u64 * regions;
        let total_tasks = total_regions * spawns;
        let regions_per_s = total_regions as f64 / elapsed.as_secs_f64();
        let ns_per_submit = submit_ns as f64 / total_regions as f64;
        // Includes the per-client thread spawns of the harness itself — a
        // small constant, kept so creep in either layer is visible.
        let allocs_per_region = allocs as f64 / total_regions as f64;
        println!(
            "{:>8} {:>12.0} {:>12.1} {:>13.3} {:>12.0} {:>10} {:>11}",
            clients,
            regions_per_s,
            ns_per_submit,
            allocs_per_region,
            total_tasks as f64 / elapsed.as_secs_f64(),
            d.parks,
            d.wake_propagations,
        );
        report.push(format!("regions_per_s_c{clients}"), regions_per_s);
        report.push(format!("ns_per_submit_c{clients}"), ns_per_submit);
        report.push(format!("allocs_per_region_c{clients}"), allocs_per_region);
    }
    report.maybe_emit();
}

/// Runs the probe workload; returns the summed wall-clock nanoseconds spent
/// inside `submit` calls across all clients.
fn run_clients(rt: &Runtime, clients: usize, regions: u64, spawns: u64) -> u64 {
    let submit_ns = AtomicU64::new(0);
    std::thread::scope(|ts| {
        for client in 0..clients as u64 {
            let rt = &rt;
            let submit_ns = &submit_ns;
            ts.spawn(move || {
                let mut spent = 0u64;
                let mut window = std::collections::VecDeque::with_capacity(WINDOW);
                for region in 0..regions {
                    let t0 = std::time::Instant::now();
                    let h = rt.submit(move |s| {
                        let acc = AtomicU64::new(0);
                        s.taskgroup(|s| {
                            for task in 0..spawns {
                                let acc = &acc;
                                s.spawn(move |_| {
                                    acc.fetch_add(client ^ task, Ordering::Relaxed);
                                });
                            }
                        });
                        acc.load(Ordering::Relaxed)
                    });
                    spent += t0.elapsed().as_nanos() as u64;
                    window.push_back((region, h));
                    if window.len() >= WINDOW {
                        let (region, h) = window.pop_front().unwrap();
                        check(h.join(), client, region, spawns);
                    }
                }
                for (region, h) in window {
                    check(h.join(), client, region, spawns);
                }
                submit_ns.fetch_add(spent, Ordering::Relaxed);
            });
        }
    });
    submit_ns.load(Ordering::Relaxed)
}

fn check(got: u64, client: u64, region: u64, spawns: u64) {
    let want: u64 = (0..spawns).map(|task| client ^ task).sum();
    assert_eq!(got, want, "client {client} region {region} corrupted");
}
