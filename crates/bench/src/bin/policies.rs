//! §IV-D analysis — **scheduling policies and runtime cut-offs**: the
//! knobs OpenMP leaves to the implementation, measured on a fine-grain
//! kernel (Fib, no-cutoff version — the overhead stress test) and a
//! coarse-grain one (SparseLU).
//!
//! Varies: local queue discipline (depth-first LIFO vs breadth-first
//! FIFO), the runtime cut-off strategy, and the tied-task scheduling
//! constraint. Reports time and the runtime's own counters.

use bots::fib::{fib_parallel, FibMode};
use bots::sparselu::{sparselu_parallel, BlockMatrix, LuGenerator};
use bots::{fib, sparselu};
use bots_bench::{emit, parse_args};
use bots_runtime::{LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff};
use bots_suite::Table;

fn configs(threads: usize) -> Vec<(&'static str, RuntimeConfig)> {
    vec![
        ("lifo (depth-first)", RuntimeConfig::new(threads)),
        (
            "fifo (breadth-first)",
            RuntimeConfig::new(threads).with_local_order(LocalOrder::Fifo),
        ),
        (
            "max-tasks cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::MaxTasks { per_worker: 8 }),
        ),
        (
            "max-queue cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::MaxLocalQueue { max_len: 16 }),
        ),
        (
            "adaptive cutoff",
            RuntimeConfig::new(threads).with_cutoff(RuntimeCutoff::Adaptive { low: 2, high: 8 }),
        ),
        (
            "tied constraint off",
            RuntimeConfig::new(threads).with_tied_constraint(false),
        ),
    ]
}

fn main() {
    let args = parse_args();
    let threads = *args.threads.last().unwrap_or(&4);
    println!(
        "Scheduling policies — {} threads, {} class\n",
        threads, args.class
    );

    // Fine-grain: fib without application cut-off (tied tasks).
    let n = fib::n_for(args.class).min(34); // unbounded spawning: keep sane
    let mut table = Table::new(vec![
        "policy", "fib time", "deferred", "inlined", "stolen", "denied",
    ]);
    for (label, config) in configs(threads) {
        eprintln!("[policies] fib under {label} ...");
        let rt = Runtime::new(config);
        let before = rt.stats();
        let (_, t) = bots_profile::timed(|| fib_parallel(&rt, n, FibMode::NoCutoff, false, 0));
        let d = rt.stats().since(&before);
        table.row(vec![
            label.to_string(),
            format!("{:.3}s", t.as_secs_f64()),
            d.spawned.to_string(),
            (d.inlined_if + d.inlined_cutoff).to_string(),
            d.stolen.to_string(),
            d.tied_steal_denied.to_string(),
        ]);
    }
    println!("fib({n}), no application cut-off:");
    emit(&table);

    // Coarse-grain: SparseLU (for-generator).
    let (nb, bs) = sparselu::dims_for(args.class);
    let mut table = Table::new(vec!["policy", "sparselu time", "stolen", "parks"]);
    for (label, config) in configs(threads) {
        eprintln!("[policies] sparselu under {label} ...");
        let rt = Runtime::new(config);
        let before = rt.stats();
        let m = BlockMatrix::generate(nb, bs, 0x51A45E);
        let (_, t) = bots_profile::timed(|| sparselu_parallel(&rt, &m, LuGenerator::For, false));
        let d = rt.stats().since(&before);
        table.row(vec![
            label.to_string(),
            format!("{:.3}s", t.as_secs_f64()),
            d.stolen.to_string(),
            d.parks.to_string(),
        ]);
    }
    println!("\nsparselu {nb}x{nb} blocks of {bs}x{bs}:");
    emit(&table);

    println!("\nExpected shape: policies barely move the coarse-grain kernel;");
    println!("the fine-grain kernel lives or dies by the cut-off strategy.");
}
