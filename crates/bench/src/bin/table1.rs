//! Regenerates **Table I** — "BOTS applications summary": origin, domain,
//! computation structure, number of task directives, generator construct,
//! nested tasks, application cut-off.

use bots::registry;
use bots_bench::emit;
use bots_suite::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "Origin",
        "Domain",
        "Computation structure",
        "# task directives",
        "tasks inside omp...",
        "nested tasks",
        "Application cut-off",
    ])
    .aligns(vec![
        bots_suite::Align::Left,
        bots_suite::Align::Left,
        bots_suite::Align::Left,
        bots_suite::Align::Left,
        bots_suite::Align::Right,
        bots_suite::Align::Left,
        bots_suite::Align::Left,
        bots_suite::Align::Left,
    ]);
    for bench in registry() {
        let m = bench.meta();
        table.row(vec![
            m.name.to_string(),
            m.origin.to_string(),
            m.domain.to_string(),
            m.structure.to_string(),
            m.task_directives.to_string(),
            m.tasks_inside.to_string(),
            if m.nested_tasks {
                "yes".into()
            } else {
                "no".into()
            },
            m.app_cutoff.to_string(),
        ]);
    }
    println!("Table I — BOTS applications summary\n");
    emit(&table);
}
