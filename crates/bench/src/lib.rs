//! # bots-bench — the harness that regenerates every table and figure
//!
//! One binary per experiment (see `DESIGN.md`'s per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — static application summary |
//! | `table2` | Table II — per-task characteristics (instrumented serial run) |
//! | `fig3` | Figure 3 — speed-up of each app's best version vs threads |
//! | `fig4` | Figure 4 — NQueens cut-off comparison (manual / if / none) |
//! | `fig5` | Figure 5 — tied vs untied (Alignment, NQueens) |
//! | `cutoff_sweep` | §IV-D — speed-up vs cut-off depth |
//! | `generators` | §IV-D — SparseLU single vs multiple generators |
//! | `policies` | §IV-D — scheduling policies & runtime cut-offs |
//! | `spawn_probe` | spawn-path ns/task + allocs/task (emits `BENCH_spawn_probe.json`) |
//! | `regions_probe` | multi-region regions/s, ns/submit, allocs/region (emits `BENCH_regions_probe.json`) |
//! | `bench_gate` | CI perf-trajectory gate vs `crates/bench/baseline.json` (see [`perf`]) |
//!
//! Common flags: `--class test|small|medium|large` (default medium),
//! `--reps N` (default 3), `--threads 1,2,4,...` (default: power-of-two
//! ladder up to the machine), `--apps name,name` where applicable.
//!
//! Output: an aligned table for eyeballing against the paper, then a CSV
//! block for plotting.

#![warn(missing_docs)]

pub mod perf;

use bots_inputs::InputClass;
use bots_suite::runner::default_thread_ladder;

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Input class to run.
    pub class: InputClass,
    /// Repetitions per configuration (median is reported).
    pub reps: usize,
    /// Team sizes for thread sweeps.
    pub threads: Vec<usize>,
    /// Optional app-name filter.
    pub apps: Option<Vec<String>>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            class: InputClass::Medium,
            reps: 3,
            threads: default_thread_ladder(),
            apps: None,
        }
    }
}

/// Parses `std::env::args`, exiting with a usage message on errors.
pub fn parse_args() -> HarnessArgs {
    let mut out = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--class" | "-c" => {
                out.class = value("--class").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--reps" | "-r" => {
                out.reps = value("--reps").parse().unwrap_or_else(|_| {
                    eprintln!("--reps wants a positive integer");
                    std::process::exit(2);
                });
                if out.reps == 0 {
                    eprintln!("--reps wants a positive integer");
                    std::process::exit(2);
                }
            }
            "--threads" | "-t" => {
                let spec = value("--threads");
                out.threads = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad thread count '{s}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--apps" | "-a" => {
                out.apps = Some(
                    value("--apps")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --class test|small|medium|large  --reps N  \
                     --threads 1,2,4  --apps name,name"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Does `name` pass the `--apps` filter?
pub fn app_selected(args: &HarnessArgs, name: &str) -> bool {
    match &args.apps {
        None => true,
        Some(list) => list.iter().any(|a| a.eq_ignore_ascii_case(name)),
    }
}

/// Prints the standard two-part output: aligned table then CSV.
pub fn emit(table: &bots_suite::Table) {
    println!("{}", table.render());
    println!("--- csv ---");
    print!("{}", table.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = HarnessArgs::default();
        assert_eq!(a.class, InputClass::Medium);
        assert_eq!(a.reps, 3);
        assert!(!a.threads.is_empty());
    }

    #[test]
    fn app_filter() {
        let mut a = HarnessArgs::default();
        assert!(app_selected(&a, "Fib"));
        a.apps = Some(vec!["fib".into(), "sort".into()]);
        assert!(app_selected(&a, "Fib"));
        assert!(app_selected(&a, "SORT"));
        assert!(!app_selected(&a, "FFT"));
    }
}
