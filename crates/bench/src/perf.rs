//! Machine-readable probe reports and the perf-trajectory gate's data
//! model: `BENCH_<probe>.json` emission, a parser for the same subset of
//! JSON, and the baseline comparison that CI fails on.
//!
//! The format is deliberately tiny — flat string→number metric maps —
//! written and parsed by hand because this workspace vendors no serde
//! (no registry access; see `crates/shims/`).
//!
//! ## Metric direction
//!
//! A metric whose name contains `_per_s` is **higher-is-better**
//! (throughput); every other metric is **lower-is-better** (latency,
//! allocations). The gate fails when a metric regresses past the
//! tolerance; zero-baseline lower-is-better metrics (e.g. `allocs_per_*`
//! on the zero-allocation paths) get an absolute ceiling of `1.0` instead
//! of a meaningless relative one.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One probe's machine-readable report: an ordered metric map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Probe name (`spawn_probe`, `regions_probe`, ...).
    pub probe: String,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl Report {
    /// A new empty report for `probe`.
    pub fn new(probe: &str) -> Report {
        Report {
            probe: probe.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Records one metric.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// Serialises to the `BENCH_*.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"probe\": \"{}\",", self.probe);
        let _ = writeln!(out, "  \"metrics\": {{");
        let n = self.metrics.len();
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    \"{k}\": {v:.4}{comma}");
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes `BENCH_<probe>.json` into `dir`, creating it if needed.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.probe));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Emits the report when `BOTS_BENCH_JSON_DIR` is set (the CI
    /// perf-trajectory job sets it; interactive runs stay table-only).
    /// Returns the written path, if any.
    pub fn maybe_emit(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("BOTS_BENCH_JSON_DIR")?;
        match self.write_to(Path::new(&dir)) {
            Ok(path) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("failed to write bench json: {e}");
                None
            }
        }
    }
}

/// Parses a `BENCH_*.json` document (the exact subset [`Report::to_json`]
/// emits, whitespace-insensitive).
pub fn parse_report(text: &str) -> Result<Report, String> {
    let value = Json::parse(text)?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let probe = obj
        .get("probe")
        .and_then(Json::as_str)
        .ok_or("missing \"probe\"")?
        .to_string();
    let metrics_obj = obj
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or("missing \"metrics\" object")?;
    let mut metrics = BTreeMap::new();
    for (k, v) in metrics_obj {
        metrics.insert(
            k.clone(),
            v.as_number()
                .ok_or_else(|| format!("metric {k} not a number"))?,
        );
    }
    Ok(Report { probe, metrics })
}

/// The checked-in baseline: per-probe metric maps plus the tolerance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Allowed relative regression, in percent (default 25).
    pub tolerance_pct: f64,
    /// Probe name → metric map.
    pub probes: BTreeMap<String, BTreeMap<String, f64>>,
}

impl Baseline {
    /// Serialises the baseline file.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"tolerance_pct\": {:.1},", self.tolerance_pct);
        let _ = writeln!(out, "  \"probes\": {{");
        let np = self.probes.len();
        for (i, (probe, metrics)) in self.probes.iter().enumerate() {
            let _ = writeln!(out, "    \"{probe}\": {{");
            let nm = metrics.len();
            for (j, (k, v)) in metrics.iter().enumerate() {
                let comma = if j + 1 < nm { "," } else { "" };
                let _ = writeln!(out, "      \"{k}\": {v:.4}{comma}");
            }
            let comma = if i + 1 < np { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a baseline file.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let tolerance_pct = obj
            .get("tolerance_pct")
            .and_then(Json::as_number)
            .unwrap_or(25.0);
        let mut probes = BTreeMap::new();
        if let Some(probe_obj) = obj.get("probes").and_then(Json::as_object) {
            for (probe, metrics_val) in probe_obj {
                let metrics_obj = metrics_val
                    .as_object()
                    .ok_or_else(|| format!("probe {probe} is not an object"))?;
                let mut metrics = BTreeMap::new();
                for (k, v) in metrics_obj {
                    metrics.insert(
                        k.clone(),
                        v.as_number()
                            .ok_or_else(|| format!("baseline {probe}.{k} not a number"))?,
                    );
                }
                probes.insert(probe.clone(), metrics);
            }
        }
        Ok(Baseline {
            tolerance_pct,
            probes,
        })
    }
}

/// Is `name` a higher-is-better (throughput) metric?
pub fn higher_is_better(name: &str) -> bool {
    name.contains("_per_s")
}

/// One gate verdict for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `probe.metric` label.
    pub label: String,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value.
    pub measured: f64,
    /// Did this metric regress past the tolerance?
    pub regressed: bool,
}

/// Compares one report against the baseline with `tolerance_pct` slack.
/// Metrics missing from the baseline are skipped (reported `regressed:
/// false`, so a freshly added metric cannot fail CI until the baseline
/// learns it via `bench_gate --update`).
pub fn compare(baseline: &Baseline, report: &Report) -> Vec<Verdict> {
    let tol = baseline.tolerance_pct / 100.0;
    let Some(base_metrics) = baseline.probes.get(&report.probe) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (name, &measured) in &report.metrics {
        let Some(&base) = base_metrics.get(name) else {
            continue;
        };
        let regressed = if higher_is_better(name) {
            measured < base * (1.0 - tol)
        } else if base <= f64::EPSILON {
            // Zero-baseline latency/alloc metric: relative slack is
            // meaningless; hold the line at an absolute ceiling of one.
            measured > 1.0
        } else {
            measured > base * (1.0 + tol)
        };
        out.push(Verdict {
            label: format!("{}.{}", report.probe, name),
            baseline: base,
            measured,
            regressed,
        });
    }
    out
}

/// The narrow JSON subset the reports use: objects, strings, numbers.
enum Json {
    Object(BTreeMap<String, Json>),
    Number(f64),
    Str(String),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|&c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            // The emitter never escapes; reject rather than mis-parse.
            if b == b'\\' {
                return Err("escape sequences unsupported".into());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let mut r = Report::new("spawn_probe");
        r.push("ns_per_task_t1", 140.25);
        r.push("allocs_per_task_t1", 0.0);
        r.push("tasks_per_s_t1", 7.0e6);
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.probe, "spawn_probe");
        assert_eq!(parsed.metrics.len(), 3);
        assert!((parsed.metrics["ns_per_task_t1"] - 140.25).abs() < 1e-9);
        assert!((parsed.metrics["tasks_per_s_t1"] - 7.0e6).abs() < 1.0);
    }

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline {
            tolerance_pct: 25.0,
            probes: BTreeMap::new(),
        };
        b.probes
            .insert("spawn_probe".into(), report().metrics.clone());
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let mut b = Baseline {
            tolerance_pct: 25.0,
            probes: BTreeMap::new(),
        };
        b.probes
            .insert("spawn_probe".into(), report().metrics.clone());
        let mut measured = report();
        // 20% slower latency, 20% lower throughput: both inside 25%.
        measured.push("ns_per_task_t1", 140.25 * 1.20);
        measured.push("tasks_per_s_t1", 7.0e6 * 0.80);
        assert!(compare(&b, &measured).iter().all(|v| !v.regressed));
    }

    #[test]
    fn gate_trips_on_latency_regression() {
        let mut b = Baseline {
            tolerance_pct: 25.0,
            probes: BTreeMap::new(),
        };
        b.probes
            .insert("spawn_probe".into(), report().metrics.clone());
        let mut measured = report();
        measured.push("ns_per_task_t1", 140.25 * 1.30); // 30% slower
        let verdicts = compare(&b, &measured);
        let v = verdicts
            .iter()
            .find(|v| v.label == "spawn_probe.ns_per_task_t1")
            .unwrap();
        assert!(v.regressed, "a 30% latency regression must trip the gate");
    }

    #[test]
    fn gate_trips_on_throughput_collapse_and_alloc_creep() {
        let mut b = Baseline {
            tolerance_pct: 25.0,
            probes: BTreeMap::new(),
        };
        b.probes
            .insert("spawn_probe".into(), report().metrics.clone());
        let mut measured = report();
        measured.push("tasks_per_s_t1", 7.0e6 * 0.5); // throughput halved
        measured.push("allocs_per_task_t1", 2.0); // zero-baseline ceiling
        let verdicts = compare(&b, &measured);
        assert!(
            verdicts
                .iter()
                .find(|v| v.label.ends_with("tasks_per_s_t1"))
                .unwrap()
                .regressed
        );
        assert!(
            verdicts
                .iter()
                .find(|v| v.label.ends_with("allocs_per_task_t1"))
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn unknown_probe_and_metrics_are_skipped() {
        let b = Baseline {
            tolerance_pct: 25.0,
            probes: BTreeMap::new(),
        };
        assert!(compare(&b, &report()).is_empty(), "no baseline, no verdict");
    }
}
