//! Property test for cancellation robustness: random task graphs — spawn
//! storms, taskgroups, dependency chains, budgeted regions — cancelled at a
//! random point in their execution, under the counting allocator. The
//! invariants, whatever the interleaving:
//!
//! * **exactly-once completion-or-cancel** — every spawn attempt is either
//!   executed once or skipped once, never both, never lost:
//!   `attempts == ticks + skipped_tasks` per region;
//! * **typed outcome** — a region reports `Ok` exactly when it was not
//!   cancelled; budget serialisation stays zero for unbudgeted regions and
//!   shed stays zero without a watermark;
//! * **lease == wait accounting** — every taskgroup descriptor leased is
//!   waited exactly once, and every dependency-deferred task is released
//!   exactly once, cancelled or not;
//! * **zero live-bytes leak** — after the team is dropped, heap occupancy
//!   returns exactly to its pre-team baseline: cancelled regions reclaim
//!   every record, descriptor and dep block they ever held.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use bots_profile::current_bytes;
use bots_runtime::{RegionBudget, RegionError, Runtime, RuntimeConfig, Scope};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// Allocator readings are process-global; serialise the tests in this
/// binary (libtest runs them on concurrent threads).
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Test-side ledger, statics so worker-run closures are `'static` without
/// owning allocations: spawn attempts made, task bodies actually run.
static ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static TICKS: AtomicU64 = AtomicU64::new(0);
/// Dependency-chain addresses (the tracker keys on the address only).
static DEP_CHAIN: AtomicU64 = AtomicU64::new(0);
static DEP_SINK: AtomicU64 = AtomicU64::new(0);

fn spawn_counted(s: &Scope<'_>, depth: u32) {
    ATTEMPTS.fetch_add(1, Ordering::Relaxed);
    s.spawn(move |s| {
        TICKS.fetch_add(1, Ordering::Relaxed);
        storm(s, depth);
    });
}

/// A binary spawn storm with cancellation points at every level.
fn storm(s: &Scope<'_>, depth: u32) {
    if depth == 0 || s.is_cancelled() {
        return;
    }
    for _ in 0..2 {
        spawn_counted(s, depth - 1);
    }
}

/// One region body mixing the shapes: a storm, a taskgroup of leaf
/// members, and a dependency chain fanning writer → reader pairs.
fn region_body(s: &Scope<'_>, depth: u32, members: u32, links: u32, token: u64) -> u64 {
    storm(s, depth);
    s.taskgroup(|s| {
        for _ in 0..members {
            ATTEMPTS.fetch_add(1, Ordering::Relaxed);
            s.spawn(|_| {
                TICKS.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    for _ in 0..links {
        ATTEMPTS.fetch_add(1, Ordering::Relaxed);
        s.task(|_| {
            TICKS.fetch_add(1, Ordering::Relaxed);
        })
        .after_write(&DEP_CHAIN)
        .spawn();
        ATTEMPTS.fetch_add(1, Ordering::Relaxed);
        s.task(|_| {
            TICKS.fetch_add(1, Ordering::Relaxed);
        })
        .after_read(&DEP_CHAIN)
        .after_write(&DEP_SINK)
        .spawn();
    }
    s.taskwait();
    token
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cancelled_graphs_balance_their_books(
        workers in 1usize..5,
        regions in 1u64..5,
        depth in 2u32..8,
        members in 0u32..24,
        links in 0u32..16,
        cancel_after in 0u64..1500,
        budgeted in any::<bool>(),
    ) {
        let _serial = exclusive();

        // Warm process-level one-time allocations (thread bootstrap,
        // lazy synchronisation primitives) out of the leak window.
        drop(Runtime::with_threads(workers));
        let baseline = current_bytes();
        {
            let rt = Runtime::new(RuntimeConfig::new(workers));
            let budget = if budgeted {
                RegionBudget::MaxQueued(2)
            } else {
                RegionBudget::Inherit
            };

            for token in 0..regions {
                let attempts0 = ATTEMPTS.load(Ordering::Relaxed);
                let ticks0 = TICKS.load(Ordering::Relaxed);
                let mut h = rt.submit_with_budget(budget, move |s| {
                    region_body(s, depth, members, links, token)
                });
                // Cancel at a random point of the region's progress — which
                // may be before it starts, mid-storm, or (when the graph is
                // smaller than the threshold) after it already quiesced.
                while TICKS.load(Ordering::Relaxed) - ticks0 < cancel_after && !h.is_finished() {
                    std::hint::spin_loop();
                }
                h.cancel();
                let outcome = loop {
                    if let Some(o) = h.try_join(Duration::from_millis(50)) {
                        break o;
                    }
                };
                let stats = h.stats();

                // Exactly-once completion-or-cancel: every attempt either
                // ran (tick) or was skipped with bookkeeping, never both.
                let attempts = ATTEMPTS.load(Ordering::Relaxed) - attempts0;
                let ticks = TICKS.load(Ordering::Relaxed) - ticks0;
                prop_assert_eq!(
                    attempts,
                    ticks + stats.skipped_tasks,
                    "attempts {} != ticks {} + skipped {} (cancelled={})",
                    attempts, ticks, stats.skipped_tasks, stats.cancelled
                );

                // Typed outcome ⟺ the region-level cancel flag.
                match outcome {
                    Ok(value) => {
                        prop_assert_eq!(value, token);
                        prop_assert!(!stats.cancelled);
                        prop_assert_eq!(stats.skipped_tasks, 0);
                    }
                    Err(RegionError::Cancelled) => prop_assert!(stats.cancelled),
                    Err(RegionError::Panicked(_)) => prop_assert!(false, "no task panics here"),
                }
                prop_assert_eq!(stats.shed, 0, "no watermark configured");
                if !budgeted {
                    prop_assert_eq!(stats.serialized, 0, "unbudgeted region serialised");
                }
            }

            // Lease == wait accounting, cancelled or not: every taskgroup
            // descriptor waited exactly once, every deferred dep released
            // exactly once.
            let totals = rt.stats();
            prop_assert_eq!(
                totals.groups_fresh + totals.groups_recycled,
                totals.group_waits,
                "taskgroup leases must match group waits"
            );
            prop_assert_eq!(
                totals.deps_deferred, totals.deps_released,
                "every deferred task must be released exactly once"
            );
        }
        // Zero live-bytes leak: the team, its slabs, descriptors and dep
        // pools all gone — cancellation reclaimed everything it touched.
        prop_assert_eq!(
            current_bytes(),
            baseline,
            "cancelled regions leaked live heap bytes"
        );
    }
}
