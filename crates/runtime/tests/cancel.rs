//! Cooperative cancellation end to end: explicit cancels (from the handle
//! and from inside tasks), deadlines, taskgroup cancellation, overload
//! shedding, bounded joins and the typed outcome surface — and, throughout,
//! the robustness contract: a cancelled region always reaches ordinary
//! quiescence with its bookkeeping balanced.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bots_runtime::{RegionError, Runtime, RuntimeConfig, Scope, SubmitError};

/// An effectively unbounded spawn storm (2^depth tasks): only cancellation
/// can bring a region running one to quiescence in test time.
fn storm(s: &Scope<'_>, depth: u32, ticks: &'static AtomicU64) {
    if depth == 0 || s.is_cancelled() {
        return;
    }
    ticks.fetch_add(1, Ordering::Relaxed);
    for _ in 0..2 {
        s.spawn(move |s| storm(s, depth - 1, ticks));
    }
}

#[test]
fn cancel_mid_flight_drains_to_quiescence() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(4);
    let h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        s.taskwait();
        42u64
    });
    // Let the storm build real in-flight depth before pulling the plug.
    while TICKS.load(Ordering::Relaxed) < 10_000 {
        std::hint::spin_loop();
    }
    h.cancel();
    let stats_probe = rt.stats();
    assert!(stats_probe.regions_cancelled >= 1);
    let h = {
        let mut h = h;
        // try_join instead of outcome: also exercises the bounded join on
        // the real (cancelled, draining) path.
        loop {
            if let Some(outcome) = h.try_join(Duration::from_millis(50)) {
                break outcome;
            }
        }
    };
    assert!(
        matches!(h, Err(RegionError::Cancelled)),
        "a cancelled region reports Cancelled, got {h:?}"
    );
    let stats = rt.stats();
    assert!(
        stats.skipped > 0,
        "a mid-flight cancel must skip queued tasks"
    );
    // Quiescence really drained the queues: nothing is left in flight, and
    // a fresh region on the same (recycled) descriptors works fine.
    assert_eq!(rt.parallel(|_| 7u64), 7);
}

#[test]
fn deadline_cancels_runaway_region() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    let h = rt.submit_with_deadline(Duration::from_millis(10), |s| {
        storm(s, 50, &TICKS);
        s.taskwait();
    });
    let outcome = h.outcome();
    assert!(
        matches!(outcome, Err(RegionError::Cancelled)),
        "a 2^50-task storm cannot beat a 10 ms deadline, got {outcome:?}"
    );
    let stats = rt.stats();
    assert_eq!(
        stats.regions_cancelled, 1,
        "the deadline cancelled exactly one region"
    );
}

#[test]
fn deadline_leaves_fast_regions_alone() {
    let rt = Runtime::with_threads(2);
    let h = rt.submit_with_deadline(Duration::from_secs(60), |s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            for i in 0..100u64 {
                let acc = &acc;
                s.spawn(move |_| {
                    acc.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(h.outcome().expect("far-off deadline must not fire"), 4950);
}

#[test]
fn cancel_region_from_inside_a_task() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(4);
    let before = TICKS.load(Ordering::Relaxed);
    let h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        // The 10_000th tick pulls the plug from within.
        s.spawn(|s| {
            s.cancel_region();
            assert!(s.is_cancelled());
        });
        s.taskwait();
    });
    assert!(matches!(h.outcome(), Err(RegionError::Cancelled)));
    assert!(TICKS.load(Ordering::Relaxed) > before, "the storm did run");
}

#[test]
fn cancel_group_suppresses_members_but_region_completes() {
    let rt = Runtime::with_threads(1);
    let ran = AtomicU64::new(0);
    let outside = AtomicU64::new(0);
    let got = rt.parallel(|s| {
        let (ran, outside) = (&ran, &outside);
        s.taskgroup(|s| {
            // Cancel before spawning the members: each spawn hits its
            // cancellation point and is suppressed deterministically.
            assert!(s.cancel_group(), "inside a taskgroup");
            for _ in 0..100 {
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // The *region* is not cancelled: spawns outside the group run.
        s.spawn(move |_| {
            outside.fetch_add(1, Ordering::Relaxed);
        });
        s.taskwait();
        11u32
    });
    assert_eq!(got, 11, "taskgroup cancel must not cancel the region");
    assert_eq!(ran.load(Ordering::Relaxed), 0, "members were suppressed");
    assert_eq!(outside.load(Ordering::Relaxed), 1);
    // A later taskgroup on the same (pooled, re-armed) descriptor works.
    let again = rt.parallel(|s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            let acc = &acc;
            for _ in 0..10 {
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(again, 10, "group cancel flag must re-arm on lease");
}

#[test]
fn join_on_cancelled_region_panics_with_typed_payload() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    let h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        s.taskwait();
    });
    h.cancel();
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
        .expect_err("join on a cancelled region panics");
    let err = panic
        .downcast::<RegionError>()
        .expect("the payload is the typed RegionError, not a string");
    assert!(err.is_cancelled());
}

#[test]
fn try_join_times_out_then_delivers() {
    use std::sync::atomic::AtomicBool;
    static GATE: AtomicBool = AtomicBool::new(false);
    let rt = Runtime::with_threads(2);
    let mut h = rt.submit(|_| {
        while !GATE.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        5u64
    });
    assert!(
        h.try_join(Duration::from_millis(20)).is_none(),
        "a gated region cannot quiesce inside the timeout"
    );
    GATE.store(true, Ordering::Release);
    let outcome = loop {
        if let Some(o) = h.try_join(Duration::from_millis(50)) {
            break o;
        }
    };
    assert_eq!(outcome.expect("not cancelled"), 5);
}

#[test]
fn try_submit_sheds_over_the_watermark() {
    use std::sync::atomic::AtomicBool;
    static GATE: AtomicBool = AtomicBool::new(false);
    let rt = Runtime::new(RuntimeConfig::new(2).with_max_live_regions(2));
    let occupying: Vec<_> = (0..2)
        .map(|_| {
            rt.submit(|_| {
                while !GATE.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    match rt.try_submit(|_| unreachable!("shed submissions never run")) {
        Err(SubmitError::Shed { live, limit }) => {
            assert_eq!(limit, 2);
            assert!(live >= 2);
        }
        Ok(_) => panic!("the watermark must shed the third region"),
    }
    GATE.store(true, Ordering::Release);
    for h in occupying {
        h.outcome().expect("occupying regions complete");
    }
    // Below the watermark again: admitted.
    rt.try_submit(|_| ())
        .expect("room below the watermark")
        .outcome()
        .expect("admitted region completes");
    assert!(rt.stats().submissions_shed >= 1);
}

#[test]
fn infallible_submit_over_watermark_serialises_in_shed_mode() {
    use std::sync::atomic::AtomicBool;
    static GATE: AtomicBool = AtomicBool::new(false);
    let rt = Runtime::new(RuntimeConfig::new(2).with_max_live_regions(1));
    let occupying = rt.submit(|_| {
        while !GATE.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    });
    // Over the watermark, but `submit` is infallible: the region is
    // admitted in shed mode and its clause-free spawns serialise inline.
    let h = rt.submit(|s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            let acc = &acc;
            for i in 0..100u64 {
                s.spawn(move |_| {
                    acc.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    let got = h.outcome().expect("shed mode degrades, it does not fail");
    assert_eq!(got, 4950, "inline serialisation computes the same result");
    GATE.store(true, Ordering::Release);
    occupying.outcome().expect("occupying region completes");
    let stats = rt.stats();
    assert!(
        stats.inlined_shed > 0,
        "shed-mode spawns must have serialised inline: {stats}"
    );
    assert_eq!(stats.submissions_shed, 1);
}

#[test]
fn on_complete_delivers_cancelled_outcome() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    let (tx, rx) = std::sync::mpsc::channel();
    let h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        s.taskwait();
        9u8
    });
    h.cancel();
    h.on_complete(move |outcome| {
        tx.send(outcome.map_err(|e| e.is_cancelled())).unwrap();
    });
    assert_eq!(
        rx.recv_timeout(Duration::from_secs(30)).unwrap(),
        Err(true),
        "the detached callback observes the typed cancellation"
    );
}

#[test]
fn cancelled_dependency_tasks_still_release_successors() {
    static OBJ: u8 = 0;
    let rt = Runtime::with_threads(2);
    let obj = &OBJ;
    // A long WAW chain cancelled from its own second link: every deferred
    // successor must still be released (skip-dispatched), or the region
    // never quiesces and this test hangs.
    let outcome = rt
        .submit(move |s| {
            let spin = std::time::Duration::from_micros(200);
            s.task(move |_| {
                let t0 = std::time::Instant::now();
                while t0.elapsed() < spin {}
            })
            .after_write(obj)
            .spawn();
            s.task(move |s| s.cancel_region()).after_write(obj).spawn();
            for _ in 0..500 {
                s.task(move |_| {}).after_write(obj).spawn();
            }
        })
        .outcome();
    assert!(matches!(outcome, Err(RegionError::Cancelled)));
    let stats = rt.stats();
    assert_eq!(
        stats.deps_deferred, stats.deps_released,
        "every deferred task must be released despite the cancel: {stats}"
    );
    // The machinery is intact: a fresh dependency chain still orders.
    let after = AtomicU64::new(0);
    rt.parallel(|s| {
        let after = &after;
        for _ in 0..10 {
            s.task(move |_| {
                after.fetch_add(1, Ordering::Relaxed);
            })
            .after_write(obj)
            .spawn();
        }
    });
    assert_eq!(after.load(Ordering::Relaxed), 10);
}

#[test]
fn parallel_for_generators_stop_on_cancel() {
    let rt = Runtime::with_threads(1);
    let ran = AtomicU64::new(0);
    // One thread → one generator chunk → deterministic: the first body
    // cancels the region, the generator's very next iteration breaks.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|s| {
            let ran = &ran;
            s.parallel_for(0..1_000_000, move |_, s| {
                ran.fetch_add(1, Ordering::Relaxed);
                s.cancel_region();
            });
        })
    }));
    // parallel() == submit().join(): the cancelled region surfaces as the
    // typed panic payload.
    let err = outcome
        .expect_err("cancelled parallel() panics")
        .downcast::<RegionError>()
        .expect("typed payload");
    assert!(err.is_cancelled());
    assert_eq!(
        ran.load(Ordering::Relaxed),
        1,
        "the generator must stop at its first cancellation point"
    );
}

#[test]
fn region_stats_attribute_cancellation() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(4);
    let mut h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        s.taskwait();
    });
    while TICKS.load(Ordering::Relaxed) < 5_000 {
        std::hint::spin_loop();
    }
    h.cancel();
    let outcome = loop {
        if let Some(o) = h.try_join(Duration::from_millis(50)) {
            break o;
        }
    };
    assert!(matches!(outcome, Err(RegionError::Cancelled)));
    // Final per-region snapshot, still answering after the lease returned.
    let stats = h.stats();
    assert!(stats.cancelled, "the region-level flag is reported");
    assert!(
        stats.skipped_tasks > 0,
        "a deep cancel must have skipped queued tasks: {stats:?}"
    );
    assert_eq!(stats.shed, 0, "no watermark configured");
}

#[test]
fn future_poll_on_cancelled_region_panics_typed() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    let h = rt.submit(|s| {
        storm(s, 50, &TICKS);
        s.taskwait();
    });
    h.cancel();
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| common::block_on(h)))
        .expect_err("awaiting a cancelled region panics");
    assert!(panic
        .downcast::<RegionError>()
        .expect("typed payload")
        .is_cancelled());
}
