//! Property test for the sharded injector, driven through the public
//! `submit` API: across randomly sized swarms of concurrent submitters, no
//! region root is ever lost (every submitted region runs and joins) or
//! duplicated (each result is delivered exactly once, to its own joiner).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bots_runtime::{Runtime, RuntimeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn no_region_lost_or_duplicated(
        workers in 1usize..5,
        clients in 1usize..9,
        regions_per_client in 1usize..25,
        spawns in 0usize..9,
    ) {
        let rt = Runtime::new(RuntimeConfig::new(workers));
        // Every region returns a globally unique token and also records it
        // on a shared ledger from inside the region; the two views must
        // agree exactly with the submitted set.
        // `submit` takes 'static closures, so the in-region ledger is an
        // Arc; the joined list is only touched by the client threads.
        let ledger: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let joined: Mutex<Vec<u64>> = Mutex::new(Vec::new());

        std::thread::scope(|ts| {
            for client in 0..clients as u64 {
                let (rt, ledger, joined) = (&rt, ledger.clone(), &joined);
                ts.spawn(move || {
                    let handles: Vec<_> = (0..regions_per_client as u64)
                        .map(|region| {
                            let token = client * 10_000 + region;
                            let ledger = ledger.clone();
                            rt.submit(move |s| {
                                // Some region-internal task traffic, so the
                                // injector races against deque activity.
                                let acc = AtomicU64::new(0);
                                s.taskgroup(|s| {
                                    for _ in 0..spawns {
                                        let acc = &acc;
                                        s.spawn(move |_| {
                                            acc.fetch_add(1, Ordering::Relaxed);
                                        });
                                    }
                                });
                                assert_eq!(acc.load(Ordering::Relaxed), spawns as u64);
                                ledger.lock().unwrap().push(token);
                                token
                            })
                        })
                        .collect();
                    let mut got: Vec<u64> =
                        handles.into_iter().map(|h| h.join()).collect();
                    joined.lock().unwrap().append(&mut got);
                });
            }
        });

        let want: HashSet<u64> = (0..clients as u64)
            .flat_map(|c| (0..regions_per_client as u64).map(move |r| c * 10_000 + r))
            .collect();
        let ran = ledger.lock().unwrap().clone();
        let joined = joined.into_inner().unwrap();

        prop_assert_eq!(ran.len(), want.len(), "a region ran twice or never");
        prop_assert_eq!(&ran.iter().copied().collect::<HashSet<u64>>(), &want);
        prop_assert_eq!(joined.len(), want.len());
        prop_assert_eq!(&joined.into_iter().collect::<HashSet<u64>>(), &want);
    }
}
