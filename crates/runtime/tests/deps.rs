//! End-to-end behaviour of the `TaskBuilder` depend-clause API: data-flow
//! chains execute in dependency order with **no `taskwait` in the kernel
//! body**, fan-in joins wait for every predecessor, panicking predecessors
//! still release their successors, and the telemetry accounts for every
//! deferral and release.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bots_runtime::{RegionBudget, Runtime, RuntimeConfig, TaskAttrs};

/// The acceptance chain: SparseLU's `fwd → bmod → bdiv` shape on **one
/// thread**, spawned in program order with no barrier anywhere. A 1-thread
/// team pops its deque LIFO, so without the clauses the three tasks would
/// run in *reverse* spawn order — the log proves the Deferred hold-back and
/// release-on-exit actually reorder execution, deterministically.
#[test]
fn chain_executes_in_dependency_order_on_one_thread() {
    let rt = Runtime::with_threads(1);
    let row = [0u8; 1]; // the "pivot row" object (identity only)
    let block = [0u8; 1]; // the "trailing block" object
    let log = Mutex::new(Vec::new());
    rt.parallel(|s| {
        let (log, row, block) = (&log, &row, &block);
        s.task(move |_| log.lock().unwrap().push("fwd"))
            .after_write(row)
            .spawn();
        s.task(move |_| log.lock().unwrap().push("bmod"))
            .after_read(row)
            .after_write(block)
            .spawn();
        s.task(move |_| log.lock().unwrap().push("bdiv"))
            .after_read(block)
            .spawn();
        // No taskwait: region quiescence is the only join.
    });
    assert_eq!(*log.lock().unwrap(), vec!["fwd", "bmod", "bdiv"]);
}

/// Without clauses the same 1-thread region runs LIFO — the control that
/// shows the previous test's ordering really comes from the dependences.
#[test]
fn without_clauses_one_thread_runs_lifo() {
    let rt = Runtime::with_threads(1);
    let log = Mutex::new(Vec::new());
    rt.parallel(|s| {
        let log = &log;
        s.spawn(move |_| log.lock().unwrap().push(1));
        s.spawn(move |_| log.lock().unwrap().push(2));
        s.spawn(move |_| log.lock().unwrap().push(3));
    });
    assert_eq!(*log.lock().unwrap(), vec![3, 2, 1]);
}

/// A wide diamond under real parallelism: one producer, many readers, one
/// fan-in consumer. The consumer must observe every reader's side effect.
#[test]
fn diamond_fan_in_joins_every_reader() {
    let rt = Runtime::with_threads(4);
    for round in 0..50u64 {
        let src = AtomicU64::new(0);
        let sinks: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        let total = AtomicU64::new(u64::MAX);
        rt.parallel(|s| {
            let (src, sinks, total) = (&src, &sinks, &total);
            s.task(move |_| src.store(round + 1, Ordering::Relaxed))
                .after_write(src)
                .spawn();
            for sink in sinks.iter() {
                s.task(move |_| sink.store(src.load(Ordering::Relaxed), Ordering::Relaxed))
                    .after_read(src)
                    .after_write(sink)
                    .spawn();
            }
            // depend(in) on every sink would need 16 clauses — past
            // MAX_TASK_DEPS — so fan the join in through a stage of four
            // 4-wide joins (4 reads + 1 write = 5 clauses each).
            for q in 0..4 {
                let quarter = &sinks[q * 4..(q + 1) * 4];
                let mut join = s.task(move |_| {
                    let sum: u64 = quarter.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                    assert_eq!(sum, 4 * (round + 1), "a reader ran after the join");
                });
                for sink in quarter {
                    join = join.after_read(sink);
                }
                join.after_write(&quarter[0]).spawn();
            }
            let mut last = s.task(move |_| {
                let sum: u64 = sinks.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                total.store(sum, Ordering::Relaxed);
            });
            for q in 0..4 {
                last = last.after_read(&sinks[q * 4]);
            }
            last.spawn();
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * (round + 1));
    }
}

/// A panicking predecessor still retires: its successors run (completion,
/// exceptional or not, is what they wait on) and the payload reaches the
/// region's joiner.
#[test]
fn panicking_predecessor_releases_successors() {
    let rt = Runtime::with_threads(2);
    let obj = 0u8;
    let ran = AtomicU64::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|s| {
            let (obj, ran) = (&obj, &ran);
            s.task(move |_| panic!("producer failed"))
                .after_write(obj)
                .spawn();
            s.task(move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .after_read(obj)
            .spawn();
        });
    }));
    assert!(result.is_err(), "the region must re-raise the panic");
    assert_eq!(
        ran.load(Ordering::Relaxed),
        1,
        "the successor must still run after its predecessor panicked"
    );
}

/// A dependence edge that crosses a waiting subtree, untied flavour. (A
/// *tied* waiter here used to deadlock a one-thread team — the OpenMP
/// TSC-2 / `depend` interplay; continuation suspension removed that
/// caveat, and `tests/continuations.rs` pins the tied flavour. The untied
/// spelling stays supported and this test keeps it honest.)
#[test]
fn cross_subtree_dependence_with_untied_waiter() {
    let rt = Runtime::with_threads(1);
    let obj = 0u8;
    let done = AtomicU64::new(0);
    rt.parallel(|s| {
        let (obj, done) = (&obj, &done);
        // The predecessor: a sibling of the waiter, outside its subtree.
        s.task(move |_| {
            done.fetch_add(1, Ordering::Relaxed);
        })
        .after_write(obj)
        .spawn();
        // The untied waiter: its child depends on the sibling above.
        s.task(move |s| {
            s.task(move |_| {
                done.fetch_add(10, Ordering::Relaxed);
            })
            .after_read(obj)
            .spawn();
            s.taskwait();
            assert_eq!(done.load(Ordering::Relaxed), 11);
        })
        .untied()
        .spawn();
    });
    assert_eq!(done.load(Ordering::Relaxed), 11);
}

/// Dependency tasks inside a `taskgroup`: the group's deep wait covers
/// Deferred members, so frame-local borrows stay sound.
#[test]
fn deferred_tasks_count_as_group_members() {
    let rt = Runtime::with_threads(2);
    let obj = 0u8;
    rt.parallel(|s| {
        let obj = &obj;
        let local = AtomicU64::new(0);
        s.taskgroup(|s| {
            let local = &local;
            s.task(move |_| {
                local.fetch_add(1, Ordering::Relaxed);
            })
            .after_write(obj)
            .spawn();
            s.task(move |_| {
                local.fetch_add(10, Ordering::Relaxed);
            })
            .after_read(obj)
            .spawn();
        });
        assert_eq!(local.load(Ordering::Relaxed), 11);
    });
}

/// Chains keep their order across budgeted regions (the budget can inline
/// clause-free spawns but must leave dependency tasks deferred).
#[test]
fn chain_order_survives_a_region_budget() {
    static OBJ: u8 = 0;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::new(RuntimeConfig::new(2));
    let h = rt.submit_with_budget(RegionBudget::MaxQueued(1), |s| {
        for i in 0..64u64 {
            s.task(move |_| {
                let prev = SEQ.swap(i + 1, Ordering::Relaxed);
                assert_eq!(prev, i, "chain link {i} ran out of order");
            })
            .after_write(&OBJ)
            .spawn();
        }
    });
    h.join();
    assert_eq!(SEQ.load(Ordering::Relaxed), 64);
}

/// Builder attributes still apply: an untied dependency task reports
/// untied, `final` propagates to clause-free children, and `with_attrs`
/// mirrors the chained setters.
#[test]
fn builder_attributes_apply() {
    let rt = Runtime::with_threads(2);
    let obj = 0u8;
    let checks = AtomicU64::new(0);
    rt.parallel(|s| {
        let (obj, checks) = (&obj, &checks);
        s.task(move |s| {
            assert!(!s.is_tied());
            checks.fetch_add(1, Ordering::Relaxed);
        })
        .untied()
        .after_write(obj)
        .spawn();
        s.task(move |s| {
            assert!(s.in_final());
            s.spawn(move |s| {
                // Clause-free child of a final task: included (inline).
                assert!(s.in_final());
                checks.fetch_add(1, Ordering::Relaxed);
            });
            checks.fetch_add(1, Ordering::Relaxed);
        })
        .finalize()
        .after_read(obj)
        .spawn();
        s.task(move |s| {
            assert!(s.is_tied());
            checks.fetch_add(1, Ordering::Relaxed);
        })
        .with_attrs(TaskAttrs::untied().with_tied(true))
        .after_read(obj)
        .spawn();
    });
    assert_eq!(checks.load(Ordering::Relaxed), 4);
}

/// The deferral/release telemetry balances: every deferred task is
/// released exactly once, and clause counts are per clause.
#[test]
fn dep_stats_balance() {
    let rt = Runtime::with_threads(2);
    let before = rt.stats();
    let obj = 0u8;
    let hits = AtomicU64::new(0);
    rt.parallel(|s| {
        let (obj, hits) = (&obj, &hits);
        for _ in 0..100u64 {
            s.task(move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .after_read(obj)
            .after_write(obj)
            .spawn();
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 100);
    let d = rt.stats().since(&before);
    assert_eq!(d.deps_registered, 200, "two clauses per task");
    assert_eq!(
        d.deps_deferred, d.deps_released,
        "every deferred task must be released exactly once"
    );
    // The first task is ready (no predecessor); in a WAW chain spawned
    // faster than it executes, most of the rest defer.
    assert!(d.deps_deferred > 0, "a 100-link chain must defer somewhere");
}

/// Regression for the former `MAX_TASK_DEPS == 8` panic: a task may now
/// declare arbitrarily many clauses — the builder spills past the inline
/// array into a pooled overflow list. A 16-wide fan-in (15 reads + the
/// producers' writes) must observe every producer, and the wide task's own
/// write must still order a successor after it.
#[test]
fn more_than_max_task_deps_clauses_spill_and_order() {
    let rt = Runtime::with_threads(4);
    let sources = [0u8; 15];
    let sink = 0u8;
    for _ in 0..20 {
        let produced = AtomicU64::new(0);
        let observed = AtomicU64::new(u64::MAX);
        let after = AtomicU64::new(u64::MAX);
        rt.parallel(|s| {
            let (sources, sink) = (&sources, &sink);
            let (produced, observed, after) = (&produced, &observed, &after);
            for src in sources {
                s.task(move |_| {
                    produced.fetch_add(1, Ordering::Relaxed);
                })
                .after_write(src)
                .spawn();
            }
            // 15 reads + 1 write = 16 clauses: double the old inline cap.
            let mut wide = s.task(move |_| {
                observed.store(produced.load(Ordering::Relaxed), Ordering::Relaxed);
            });
            for src in sources {
                wide = wide.after_read(src);
            }
            wide.after_write(sink).spawn();
            s.task(move |_| {
                after.store(observed.load(Ordering::Relaxed), Ordering::Relaxed);
            })
            .after_read(sink)
            .spawn();
        });
        assert_eq!(
            observed.load(Ordering::Relaxed),
            15,
            "the 16-clause task must run after every producer"
        );
        assert_eq!(
            after.load(Ordering::Relaxed),
            15,
            "the successor must run after the 16-clause task"
        );
    }
}
