//! Behavioural tests for the tasking runtime: OpenMP-model semantics
//! (taskwait, if-clause, final, cut-offs, tied constraint), correctness
//! across team sizes and policies, and panic propagation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bots_runtime::{
    LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff, Scope, TaskAttrs, WorkerCounter,
};

/// Reference Fibonacci.
fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// Task-parallel Fibonacci with a depth cut-off, writing results through
/// parent-frame slots (the OpenMP idiom: results return through shared
/// variables, guarded by a task barrier — here a `taskgroup`).
fn fib_task(s: &Scope<'_>, n: u64, depth: u32, cutoff: u32, out: &AtomicU64) {
    if n < 2 {
        out.store(n, Ordering::Relaxed);
        return;
    }
    if depth >= cutoff {
        out.store(fib_seq(n), Ordering::Relaxed);
        return;
    }
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    s.taskgroup(|s| {
        s.spawn(|s| fib_task(s, n - 1, depth + 1, cutoff, &a));
        s.spawn(|s| fib_task(s, n - 2, depth + 1, cutoff, &b));
    });
    out.store(
        a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
}

fn run_fib(rt: &Runtime, n: u64, cutoff: u32) -> u64 {
    rt.parallel(move |s| {
        let out = AtomicU64::new(0);
        fib_task(s, n, 0, cutoff, &out);
        out.load(Ordering::Relaxed)
    })
}

#[test]
fn fib_correct_across_team_sizes() {
    for threads in [1, 2, 4, 8] {
        let rt = Runtime::with_threads(threads);
        assert_eq!(run_fib(&rt, 22, 8), fib_seq(22), "threads={threads}");
    }
}

#[test]
fn fib_correct_under_fifo_policy() {
    let rt = Runtime::new(RuntimeConfig::new(4).with_local_order(LocalOrder::Fifo));
    assert_eq!(run_fib(&rt, 20, 6), fib_seq(20));
}

#[test]
fn fib_correct_without_tied_constraint() {
    let rt = Runtime::new(RuntimeConfig::new(4).with_tied_constraint(false));
    assert_eq!(run_fib(&rt, 20, 6), fib_seq(20));
}

#[test]
fn fib_correct_with_untied_tasks() {
    let rt = Runtime::with_threads(4);
    let expected = fib_seq(20);
    let got = rt.parallel(|s| {
        fn go(s: &Scope<'_>, n: u64, out: &AtomicU64) {
            if n < 2 {
                out.store(n, Ordering::Relaxed);
                return;
            }
            if n < 12 {
                out.store(fib_seq(n), Ordering::Relaxed);
                return;
            }
            let a = AtomicU64::new(0);
            let b = AtomicU64::new(0);
            s.taskgroup(|s| {
                s.spawn_with(TaskAttrs::untied(), |s| go(s, n - 1, &a));
                s.spawn_with(TaskAttrs::untied(), |s| go(s, n - 2, &b));
            });
            out.store(
                a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        let out = AtomicU64::new(0);
        go(s, 20, &out);
        out.load(Ordering::Relaxed)
    });
    assert_eq!(got, expected);
}

#[test]
fn region_returns_closure_value() {
    let rt = Runtime::with_threads(2);
    let v = rt.parallel(|_| 42usize);
    assert_eq!(v, 42);
}

#[test]
fn region_waits_for_detached_children() {
    // Tasks with no taskwait: the region barrier must still wait for them.
    let rt = Runtime::with_threads(4);
    let counter = Arc::new(AtomicUsize::new(0));
    let c = counter.clone();
    rt.parallel(move |s| {
        for _ in 0..64 {
            let c = c.clone();
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // no taskwait
    });
    assert_eq!(counter.load(Ordering::Relaxed), 64);
}

#[test]
fn taskwait_waits_direct_children_only() {
    // A child spawns a slow grandchild and returns; taskwait in the root
    // must return once the *child* is done, even if the grandchild is not.
    let rt = Runtime::with_threads(4);
    let grandchild_done = Arc::new(AtomicUsize::new(0));
    let observed_at_taskwait = rt.parallel({
        let gd = grandchild_done.clone();
        move |s| {
            let gd2 = gd.clone();
            s.spawn(move |s| {
                let gd3 = gd2.clone();
                s.spawn(move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    gd3.fetch_add(1, Ordering::Relaxed);
                });
                // child returns immediately, grandchild still running
            });
            s.taskwait();
            gd.load(Ordering::Relaxed)
        }
    });
    // The taskwait can only have seen the grandchild unfinished or finished;
    // both are legal. But the region end must have waited for it:
    assert_eq!(grandchild_done.load(Ordering::Relaxed), 1);
    assert!(observed_at_taskwait <= 1);
}

#[test]
fn nested_taskwaits_synchronize_levels() {
    let rt = Runtime::with_threads(4);
    let total = AtomicU64::new(0);
    let sum = rt.parallel(|s| {
        for i in 0..8u64 {
            let total = &total;
            s.spawn(move |s| {
                let inner = AtomicU64::new(0);
                s.taskgroup(|s| {
                    for j in 0..8u64 {
                        let inner = &inner;
                        s.spawn(move |_| {
                            inner.fetch_add(i * j, Ordering::Relaxed);
                        });
                    }
                });
                total.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
            });
        }
        s.taskwait();
        total.load(Ordering::Relaxed)
    });
    let expected: u64 = (0..8u64).flat_map(|i| (0..8u64).map(move |j| i * j)).sum();
    assert_eq!(sum, expected);
}

#[test]
fn if_clause_false_is_undeferred_but_counted() {
    let rt = Runtime::with_threads(2);
    rt.parallel(|s| {
        for _ in 0..10 {
            s.spawn_with(TaskAttrs::default().with_if(false), |_| {});
        }
        s.taskwait();
    });
    let stats = rt.stats();
    assert_eq!(stats.inlined_if, 10);
    // Only the region root was deferred through the queues.
    assert_eq!(stats.spawned, 0);
    assert_eq!(stats.creation_points(), 10);
}

#[test]
fn if_clause_false_runs_on_encountering_thread() {
    let rt = Runtime::with_threads(4);
    let ran_on = AtomicUsize::new(usize::MAX);
    let spawner = rt.parallel(|s| {
        let spawner = s.worker_id();
        let ran_on = &ran_on;
        s.spawn_with(TaskAttrs::default().with_if(false), move |inner| {
            ran_on.store(inner.worker_id(), Ordering::Relaxed);
        });
        spawner
    });
    // Undeferred: must have executed synchronously, on the same worker.
    assert_eq!(ran_on.load(Ordering::Relaxed), spawner);
}

#[test]
fn final_task_inlines_descendants() {
    let rt = Runtime::with_threads(2);
    rt.parallel(|s| {
        s.spawn_with(TaskAttrs::default().with_final(true), |s| {
            assert!(s.in_final());
            // These must all be inlined (included tasks).
            for _ in 0..5 {
                s.spawn(|s| {
                    assert!(s.in_final(), "descendant of final must be final");
                });
            }
            s.taskwait();
        });
        s.taskwait();
    });
    let stats = rt.stats();
    assert_eq!(stats.inlined_final, 5);
    assert_eq!(stats.spawned, 1); // only the final task itself was deferred
}

#[test]
fn depth_cutoff_serialises_below_bound() {
    let rt =
        Runtime::new(RuntimeConfig::new(2).with_cutoff(RuntimeCutoff::MaxDepth { max_depth: 2 }));
    assert_eq!(run_fib(&rt, 16, 32), fib_seq(16));
    let stats = rt.stats();
    // Tasks at depth 0 and 1 defer children (depths 1, 2); anything deeper
    // is inlined by the runtime.
    assert!(stats.inlined_cutoff > 0, "cutoff never tripped: {stats}");
    assert!(stats.spawned <= 6, "too many deferred tasks: {stats}");
}

#[test]
fn max_tasks_cutoff_bounds_queue_depth() {
    let rt =
        Runtime::new(RuntimeConfig::new(2).with_cutoff(RuntimeCutoff::MaxTasks { per_worker: 4 }));
    assert_eq!(run_fib(&rt, 20, 32), fib_seq(20));
    let stats = rt.stats();
    assert!(
        stats.inlined_cutoff > 0,
        "MaxTasks cutoff never tripped: {stats}"
    );
}

#[test]
fn adaptive_cutoff_still_correct() {
    let rt = Runtime::new(
        RuntimeConfig::new(4).with_cutoff(RuntimeCutoff::Adaptive { low: 1, high: 2 }),
    );
    assert_eq!(run_fib(&rt, 22, 32), fib_seq(22));
    let stats = rt.stats();
    assert!(
        stats.inlined_cutoff > 0,
        "adaptive cutoff never engaged: {stats}"
    );
}

#[test]
fn max_local_queue_cutoff_still_correct() {
    let rt = Runtime::new(
        RuntimeConfig::new(2).with_cutoff(RuntimeCutoff::MaxLocalQueue { max_len: 8 }),
    );
    assert_eq!(run_fib(&rt, 20, 32), fib_seq(20));
    assert!(rt.stats().inlined_cutoff > 0);
}

#[test]
fn parallel_for_covers_every_index_once() {
    let rt = Runtime::with_threads(4);
    let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
    rt.parallel(|s| {
        let hits = &hits;
        s.parallel_for(0..1000, move |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn parallel_for_chunked_covers_every_index_once() {
    let rt = Runtime::with_threads(3);
    let hits: Vec<AtomicUsize> = (0..237).map(|_| AtomicUsize::new(0)).collect();
    rt.parallel(|s| {
        let hits = &hits;
        s.parallel_for_chunked(0..237, 10, move |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn parallel_for_barrier_waits_for_spawned_tasks() {
    // Tasks created inside the loop body must be complete when parallel_for
    // returns (the omp-for end barrier).
    let rt = Runtime::with_threads(4);
    let counter = AtomicUsize::new(0);
    let done = rt.parallel(|s| {
        let counter = &counter;
        s.parallel_for(0..32, move |_, s| {
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        // Barrier: all 32 inner tasks must have finished.
        counter.load(Ordering::Relaxed)
    });
    assert_eq!(done, 32);
}

#[test]
fn parallel_for_empty_and_tiny_ranges() {
    let rt = Runtime::with_threads(4);
    let hits = AtomicUsize::new(0);
    rt.parallel(|s| {
        s.parallel_for(5..5, |_, _| panic!("must not run"));
        let hits = &hits;
        s.parallel_for(0..1, move |i, _| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(hits.load(Ordering::Relaxed), 1);
}

#[test]
fn worker_ids_are_in_range_and_stable() {
    let rt = Runtime::with_threads(4);
    rt.parallel(|s| {
        for _ in 0..100 {
            s.spawn(|s| {
                let id = s.worker_id();
                assert!(id < s.num_workers());
                std::hint::black_box(id);
                // Still on the same worker after some work:
                assert_eq!(s.worker_id(), id);
            });
        }
        s.taskwait();
    });
}

#[test]
fn depth_tracking() {
    let rt = Runtime::with_threads(2);
    rt.parallel(|s| {
        assert_eq!(s.depth(), 0);
        s.spawn(|s| {
            assert_eq!(s.depth(), 1);
            s.spawn(|s| {
                assert_eq!(s.depth(), 2);
            });
            s.taskwait();
            // Inline tasks get a depth too.
            s.spawn_with(TaskAttrs::default().with_if(false), |s| {
                assert_eq!(s.depth(), 2);
            });
        });
        s.taskwait();
    });
}

#[test]
fn panic_in_task_propagates_to_region_caller() {
    let rt = Runtime::with_threads(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|s| {
            s.spawn(|_| panic!("boom from task"));
            s.taskwait();
        });
    }));
    assert!(outcome.is_err(), "panic must propagate out of parallel()");
    // The runtime must still be usable afterwards.
    assert_eq!(run_fib(&rt, 15, 6), fib_seq(15));
}

#[test]
fn panic_in_root_propagates() {
    let rt = Runtime::with_threads(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|_| -> usize { panic!("root boom") });
    }));
    assert!(outcome.is_err());
    assert_eq!(rt.parallel(|_| 7), 7);
}

#[test]
fn tied_waits_suspend_instead_of_denying_steals() {
    // The staging that used to force a tied-steal denial: worker 0 runs
    // tied task A, which spawns H and blocks at taskwait; worker 1 steals
    // H, parks visible work D in its own deque and lingers. With
    // continuation stealing, A's blocked frame suspends off worker 0
    // entirely — the worker is free to take D (or anything else), so the
    // scenario that used to produce `tied_steal_denied` now produces
    // suspends/resumes and zero denials.
    let rt = Runtime::new(RuntimeConfig::new(2).with_tied_constraint(true));
    rt.parallel(|s| {
        let d_spawned = AtomicU64::new(0);
        let a_waiting = AtomicU64::new(0);
        s.taskgroup(|s| {
            // Tied task A (parent = root task; the old constraint would
            // have applied to it).
            s.spawn(|s| {
                s.spawn(|h| {
                    // Child H: runs on the *other* worker (this worker is
                    // spinning below, so only a thief can pick H up). Park
                    // some visible work in the thief's deque, then linger
                    // until A is provably inside its taskwait.
                    h.spawn(|_| {}); // D: stays queued while H lingers.
                    d_spawned.store(1, Ordering::Release);
                    while a_waiting.load(Ordering::Acquire) == 0 {
                        std::thread::yield_now();
                    }
                    // Give A's host time to dispatch D with H still live.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                });
                // Don't taskwait until H has been stolen and D is visible.
                while d_spawned.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
                a_waiting.store(1, Ordering::Release);
                s.taskwait();
            });
        });
    });
    let stats = rt.stats();
    assert_eq!(
        stats.tied_steal_denied, 0,
        "tied waits must no longer deny steals: {stats}"
    );
    assert!(
        stats.cont_suspends > 0,
        "A's blocked taskwait must have suspended its continuation: {stats}"
    );
    assert_eq!(
        stats.cont_suspends, stats.cont_resumes,
        "every suspend resumes exactly once by quiescence: {stats}"
    );
}

#[test]
fn untied_tasks_allow_stealing_at_taskwait() {
    let rt = Runtime::new(RuntimeConfig::new(8).with_tied_constraint(true));
    rt.parallel(|s| {
        fn go(s: &Scope<'_>, n: u64, out: &AtomicU64) {
            if n < 2 {
                out.store(n, Ordering::Relaxed);
                return;
            }
            let a = AtomicU64::new(0);
            let b = AtomicU64::new(0);
            s.taskgroup(|s| {
                s.spawn_with(TaskAttrs::untied(), |s| go(s, n - 1, &a));
                s.spawn_with(TaskAttrs::untied(), |s| go(s, n - 2, &b));
            });
            out.store(
                a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        let out = AtomicU64::new(0);
        go(s, 18, &out);
        assert_eq!(out.load(Ordering::Relaxed), fib_seq(18));
    });
    let stats = rt.stats();
    assert_eq!(
        stats.tied_steal_denied, 0,
        "untied waits must not be constrained: {stats}"
    );
}

#[test]
fn stats_account_for_all_tasks() {
    let rt = Runtime::with_threads(4);
    let before = rt.stats();
    rt.parallel(|s| {
        for _ in 0..500 {
            s.spawn(|_| {});
        }
        s.taskwait();
    });
    let d = rt.stats().since(&before);
    assert_eq!(d.spawned, 500);
    // executed counts deferred tasks only: 500 children + 1 root.
    assert_eq!(d.executed, 501);
    assert_eq!(d.taskwaits, 1);
}

#[test]
fn worker_counter_threadprivate_reduction() {
    let rt = Runtime::with_threads(8);
    let counter = WorkerCounter::new(rt.num_threads());
    rt.parallel(|s| {
        for i in 0..1000u64 {
            let counter = &counter;
            s.spawn(move |s| counter.add(s, i));
        }
        s.taskwait();
    });
    assert_eq!(counter.sum(), (0..1000).sum::<u64>());
}

#[test]
fn sequential_team_of_one_runs_everything() {
    let rt = Runtime::with_threads(1);
    assert_eq!(run_fib(&rt, 18, 6), fib_seq(18));
    let stats = rt.stats();
    assert_eq!(stats.stolen, 0, "nobody to steal from in a team of one");
}

#[test]
fn many_regions_back_to_back() {
    let rt = Runtime::with_threads(4);
    for i in 0..50u64 {
        let acc = AtomicU64::new(0);
        let got = rt.parallel(|s| {
            for j in 0..16u64 {
                let acc = &acc;
                s.spawn(move |_| {
                    acc.fetch_add(i + j, Ordering::Relaxed);
                });
            }
            s.taskwait();
            acc.load(Ordering::Relaxed)
        });
        assert_eq!(got, (0..16).map(|j| i + j).sum::<u64>());
    }
}

#[test]
fn borrows_from_enclosing_environment() {
    let rt = Runtime::with_threads(4);
    let data: Vec<u64> = (0..1024).collect();
    let acc = AtomicU64::new(0);
    let sum = rt.parallel(|s| {
        let acc = &acc;
        let data = &data;
        for chunk in 0..8 {
            s.spawn(move |_| {
                let part: u64 = data[chunk * 128..(chunk + 1) * 128].iter().sum();
                acc.fetch_add(part, Ordering::Relaxed);
            });
        }
        s.taskwait();
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(sum, (0..1024).sum::<u64>());
}

#[test]
fn deep_serial_chain_of_tasks() {
    // A degenerate chain: each task spawns exactly one child and waits.
    let rt = Runtime::with_threads(2);
    let max_depth = AtomicUsize::new(0);
    let depth_reached = rt.parallel(|s| {
        fn chain(s: &Scope<'_>, left: u32, max_depth: &AtomicUsize) {
            max_depth.fetch_max(s.depth() as usize, Ordering::Relaxed);
            if left == 0 {
                return;
            }
            s.taskgroup(|s| {
                s.spawn(move |s| chain(s, left - 1, max_depth));
            });
        }
        chain(s, 512, &max_depth);
        max_depth.load(Ordering::Relaxed)
    });
    assert_eq!(depth_reached, 512);
}

#[test]
fn stress_many_tiny_tasks() {
    let rt = Runtime::with_threads(8);
    let acc = AtomicU64::new(0);
    let total = rt.parallel(|s| {
        let acc = &acc;
        s.parallel_for_chunked(0..100_000, 64, move |i, _| {
            acc.fetch_add(i as u64, Ordering::Relaxed);
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(total, (0..100_000u64).sum::<u64>());
}

#[test]
fn taskgroup_waits_deeply_unlike_taskwait() {
    // A child spawns a slow grandchild; taskgroup must wait for BOTH.
    let rt = Runtime::with_threads(4);
    let grandchild_done = AtomicUsize::new(0);
    rt.parallel(|s| {
        let gd = &grandchild_done;
        s.taskgroup(|s| {
            s.spawn(move |s| {
                s.spawn(move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    gd.fetch_add(1, Ordering::Relaxed);
                });
                // child returns without waiting
            });
        });
        // Deep wait: the grandchild must be complete here.
        assert_eq!(
            gd.load(Ordering::Relaxed),
            1,
            "taskgroup must wait transitively"
        );
    });
}

#[test]
fn nested_taskgroups_scope_their_members() {
    let rt = Runtime::with_threads(4);
    let order = parking_lot_free_log();
    rt.parallel(|s| {
        let order = &order;
        s.taskgroup(|s| {
            s.spawn(move |s| {
                s.taskgroup(|s| {
                    s.spawn(move |_| {
                        order.lock().unwrap().push("inner");
                    });
                });
                // Inner group done before the outer task finishes.
                order.lock().unwrap().push("after-inner-group");
            });
        });
        order.lock().unwrap().push("after-outer-group");
    });
    let log = order.lock().unwrap().clone();
    assert_eq!(log, vec!["inner", "after-inner-group", "after-outer-group"]);
}

fn parking_lot_free_log() -> std::sync::Mutex<Vec<&'static str>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn taskyield_runs_pending_local_work() {
    let rt = Runtime::with_threads(1);
    let ran = AtomicUsize::new(0);
    rt.parallel(|s| {
        let ran = &ran;
        s.taskgroup(|s| {
            s.spawn(move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            // One worker: the spawned task sits in our deque until a
            // scheduling point. taskyield is one.
            assert_eq!(ran.load(Ordering::Relaxed), 0);
            assert!(s.taskyield(), "there was a task to run");
            assert_eq!(ran.load(Ordering::Relaxed), 1);
            assert!(!s.taskyield(), "nothing left");
        });
    });
}

#[test]
fn taskgroup_returns_body_value() {
    let rt = Runtime::with_threads(2);
    let v = rt.parallel(|s| s.taskgroup(|_| 99usize));
    assert_eq!(v, 99);
}

/// The tied-wait livelock regression, staged deterministically on one
/// worker:
///
/// * root (constraint-exempt) spawns `W` (tied) then `S1`; the FIFO local
///   order makes root's taskwait run `W` first, leaving `S1` queued.
/// * `W` opens a taskgroup and spawns `G` (untied). `W`'s group wait is
///   constrained, pops `G` — a descendant — and runs it.
/// * `G` spawns `H` (which joins `W`'s group), then taskyields. The yield
///   is unconstrained (`G` is untied) and FIFO-pops `S1`, running it under
///   `G`'s frame. `S1` spawns `F` and returns *without* waiting.
/// * The deque is now `[H (top), F (bottom)]` and `G` completes. `W`'s
///   group still has member `H`, but the LIFO end holds `F`, which does
///   not descend from `W`.
///
/// Historically a constrained wait that re-pushed the popped
/// non-descendant re-popped `F` forever (the tied-wait livelock), and a
/// bounded probe past the deque bottom was the workaround. Continuation
/// stealing supersedes the probe: `W`'s blocked group wait suspends off
/// the worker, which then runs `F` and `H` like any other queue items —
/// the scenario stays as a single-worker liveness regression.
#[test]
fn tied_wait_probes_past_foreign_deque_bottom() {
    let rt = Runtime::new(
        RuntimeConfig::new(1)
            .with_local_order(LocalOrder::Fifo)
            .with_tied_constraint(true),
    );
    let h_ran = AtomicUsize::new(0);
    let f_ran = AtomicUsize::new(0);
    rt.parallel(|s| {
        let (h_ran, f_ran) = (&h_ran, &f_ran);
        // W: tied child of the root, so its waits are constrained.
        s.spawn(move |w| {
            w.taskgroup(|wg| {
                wg.spawn_with(TaskAttrs::untied(), move |g| {
                    // H: joins W's group; ends up above F in the deque.
                    g.spawn(move |_| {
                        h_ran.fetch_add(1, Ordering::Relaxed);
                    });
                    // Adopt S1 (a non-descendant) under this frame; its
                    // spawn F becomes the foreign record at the LIFO end.
                    g.taskyield();
                });
            });
            // Returning at all is the regression: the group wait drained H
            // despite the foreign blocker at the bottom of the deque.
        });
        // S1: sibling of W; spawns F and returns without waiting, so F
        // stays queued when S1's frame is popped.
        s.spawn(move |s1| {
            s1.spawn(move |_| {
                f_ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        s.taskwait();
    });
    assert_eq!(h_ran.load(Ordering::Relaxed), 1);
    assert_eq!(f_ran.load(Ordering::Relaxed), 1, "region barrier ran F");
}

#[test]
fn group_waits_counted_apart_from_taskwaits() {
    // The Table II skew regression: `taskgroup` used to bump `taskwaits`
    // for its wait, inflating the reported taskwait counts of every kernel
    // built on taskgroups.
    let rt = Runtime::with_threads(2);
    let before = rt.stats();
    rt.parallel(|s| {
        s.taskgroup(|s| {
            s.spawn(|_| {});
        });
        s.taskwait();
    });
    let d = rt.stats().since(&before);
    assert_eq!(d.taskwaits, 1, "only the explicit taskwait counts");
    assert_eq!(d.group_waits, 1, "the group wait has its own counter");
}

#[test]
fn taskgroups_recycle_descriptors() {
    // Deterministic on one worker: after a warm-up pass, every taskgroup
    // must lease a recycled descriptor — a fresh allocation in the steady
    // state is the regression the group pool exists to prevent.
    let rt = Runtime::with_threads(1);
    let run = || {
        rt.parallel(|s| {
            s.taskgroup(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        s.taskgroup(|s| {
                            s.spawn(|s| {
                                s.taskgroup(|_| {});
                            });
                        });
                    });
                }
            });
        })
    };
    run();
    let before = rt.stats();
    run();
    run();
    let d = rt.stats().since(&before);
    assert_eq!(d.groups_fresh, 0, "steady-state taskgroups must recycle");
    assert!(d.groups_recycled > 0, "recycling telemetry must move");
}

#[test]
fn parallel_for_body_panic_is_contained() {
    // A cut-off-inlined generator panics *through* the parallel_for frame
    // (deferred generators' panics are caught by the executor instead);
    // either way the construct must drain its generators — which borrow
    // the body — before the frame unwinds, re-raise at the region joiner,
    // and leave the runtime healthy.
    let rt = Runtime::new(
        RuntimeConfig::new(2).with_cutoff(RuntimeCutoff::MaxLocalQueue { max_len: 1 }),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|s| {
            s.parallel_for_chunked(0..8, 1, |_, _| panic!("generator boom"));
        });
    }));
    assert!(outcome.is_err(), "the body panic must reach the joiner");
    assert_eq!(run_fib(&rt, 15, 6), fib_seq(15), "team must stay usable");
}

#[test]
fn taskgroup_body_panic_still_drains_members() {
    // A panic in the taskgroup *body* (not in a member task) must not pop
    // the frame while members — which may borrow it — are outstanding.
    let rt = Runtime::with_threads(4);
    let members_done = AtomicUsize::new(0);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|s| {
            let members_done = &members_done;
            s.taskgroup(|s| {
                for _ in 0..16 {
                    s.spawn(move |_| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        members_done.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body boom");
            });
        });
    }));
    assert!(outcome.is_err());
    // The unwind path waited for every member before leaving the frame.
    assert_eq!(members_done.load(Ordering::Relaxed), 16);
    assert_eq!(rt.parallel(|_| 7), 7);
}
