//! Property test for continuation stealing: random trees of nested waits
//! — taskwait-sealed, taskgroup-sealed and unsealed nodes mixed by a
//! drawn shape word — across team widths, with injected leaf panics and
//! mid-flight cancellation, under the counting allocator. The invariants,
//! whatever the interleaving:
//!
//! * **exactly-once resumption** — `cont_suspends == cont_resumes` at
//!   every quiescence point: no suspended frame is lost (the region
//!   would hang) and none is woken twice (two workers would run one
//!   stack);
//! * **typed outcomes** — a region reports `Panicked` only when a fault
//!   was injected, `Cancelled` only when cancelled;
//! * **lease accounting** — the pool population never exceeds what peak
//!   concurrent suspension can explain, and every taskgroup descriptor
//!   leased is waited exactly once, panics and cancels included;
//! * **zero live-bytes leak** — after the team drops, heap occupancy
//!   returns exactly to its pre-team baseline: every continuation stack,
//!   record and descriptor came home.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use bots_profile::current_bytes;
use bots_runtime::{RegionError, Runtime, Scope};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// Allocator readings are process-global; serialise the tests in this
/// binary (libtest runs them on concurrent threads).
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

static TICKS: AtomicU64 = AtomicU64::new(0);
/// Injected-fault budget for the current case: leaves claim one unit to
/// panic, so a case injects exactly as many faults as the draw said.
static PANIC_BUDGET: AtomicU64 = AtomicU64::new(0);

/// A random wait tree: every interior node spawns `width` children and
/// seals them with the flavour its depth draws from `shape` — `taskwait`,
/// `taskgroup`, or no wait at all (an ancestor's wait, or region
/// quiescence, covers the subtree). Each flavour exercises a different
/// suspension site; the unsealed flavour leaves frames *finished* while
/// children still run, so resumed waiters interleave with plain retires.
fn wait_tree(s: &Scope<'_>, depth: u32, width: u32, shape: u64) {
    if s.is_cancelled() {
        return;
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        if PANIC_BUDGET
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
        {
            panic!("injected leaf fault");
        }
        return;
    }
    match (shape >> (2 * depth)) & 3 {
        0 | 1 => {
            // taskwait-sealed: children pending at the wait suspend it.
            for _ in 0..width {
                s.spawn(move |s| wait_tree(s, depth - 1, width, shape));
            }
            s.taskwait();
        }
        2 => {
            // taskgroup-sealed: the group wait is the suspension point.
            s.taskgroup(|s| {
                for _ in 0..width {
                    s.spawn(move |s| wait_tree(s, depth - 1, width, shape));
                }
            });
        }
        _ => {
            // unsealed: this frame retires with its children in flight.
            for _ in 0..width {
                s.spawn(move |s| wait_tree(s, depth - 1, width, shape));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_wait_trees_balance_their_books(
        workers in 1usize..5,
        regions in 1u64..4,
        depth in 1u32..6,
        width in 1u32..4,
        shape in any::<u64>(),
        faults in 0u64..3,
        cancel_after in 0u64..800,
        cancel in any::<bool>(),
    ) {
        let _serial = exclusive();

        // Silence panics + warm the panic machinery's lazy allocations out
        // of the leak window: the default hook's backtrace capture retains
        // megabytes of symbol cache, and even an eprintln hook grows
        // libtest's per-test capture buffer *inside* the measurement (the
        // injected faults fire on worker threads mid-window). A failing
        // case reprints its drawn parameters, which reproduce it exactly.
        static QUIET_PANICS: std::sync::Once = std::sync::Once::new();
        QUIET_PANICS.call_once(|| {
            std::panic::set_hook(Box::new(|_| {}));
            let _ = std::panic::catch_unwind(|| panic!("warm-up panic"));
        });

        // Warm process-level one-time allocations (thread bootstrap, lazy
        // synchronisation primitives) out of the leak window.
        drop(Runtime::with_threads(workers));
        let baseline = current_bytes();
        {
            let rt = Runtime::with_threads(workers);
            for _ in 0..regions {
                let ticks0 = TICKS.load(Ordering::Relaxed);
                PANIC_BUDGET.store(faults, Ordering::Relaxed);
                let mut h = rt.submit(move |s| {
                    wait_tree(s, depth, width, shape);
                    s.taskwait();
                });
                if cancel {
                    while TICKS.load(Ordering::Relaxed) - ticks0 < cancel_after
                        && !h.is_finished()
                    {
                        std::hint::spin_loop();
                    }
                    h.cancel();
                }
                let outcome = loop {
                    if let Some(o) = h.try_join(Duration::from_millis(50)) {
                        break o;
                    }
                };
                let claimed = faults - PANIC_BUDGET.swap(0, Ordering::Relaxed);
                match outcome {
                    Ok(()) => {}
                    Err(RegionError::Cancelled) => {
                        prop_assert!(cancel, "uncancelled region reported Cancelled");
                    }
                    Err(RegionError::Panicked(_)) => {
                        prop_assert!(
                            claimed > 0,
                            "region reported Panicked with no injected fault"
                        );
                    }
                }

                // Exactly-once resumption at quiescence, whatever ended
                // the region — completion, fault or cancellation.
                let stats = rt.stats();
                prop_assert_eq!(
                    stats.cont_suspends, stats.cont_resumes,
                    "suspend/resume books unbalanced after a quiescent region"
                );
            }

            let totals = rt.stats();
            // Every taskgroup descriptor leased was waited exactly once,
            // faulted and cancelled subtrees included.
            prop_assert_eq!(
                totals.groups_fresh + totals.groups_recycled,
                totals.group_waits,
                "taskgroup leases must match group waits"
            );
            // Lease accounting: the pool never holds more frames than the
            // whole run's suspensions plus one executing frame per worker
            // could need (each suspension parks at most one frame; the
            // bound is deliberately loose — what it catches is a leak
            // that scales with wait volume).
            prop_assert!(
                rt.conts_created() as u64 <= totals.cont_suspends + 2 * workers as u64 + 2,
                "pool population {} cannot be explained by {} suspensions",
                rt.conts_created(), totals.cont_suspends
            );
        }
        // Zero live-bytes leak: the team, its continuation stacks, slabs
        // and descriptors all gone. A sub-512-byte allowance absorbs
        // process-global lazy noise (as in the sibling proptests); one
        // leaked 256 KiB continuation stack is 500× the allowance.
        let leaked = current_bytes().saturating_sub(baseline);
        prop_assert!(
            leaked < 512,
            "suspended-wait machinery leaked {} live heap bytes \
             (workers={} regions={} depth={} width={} shape={:#x} faults={} \
              cancel_after={} cancel={})",
            leaked, workers, regions, depth, width, shape, faults, cancel_after, cancel
        );
    }
}
