//! The concurrent-regions stress acceptance test, run under the counting
//! allocator: 8 client threads × 200 regions each on one team, with task
//! trees, panicking regions and unjoined handles mixed in — and **zero
//! leaked task records** at the end, measured as live heap bytes returning
//! to their baseline once the runtime is dropped.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_profile::current_bytes;
use bots_runtime::Runtime;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

const CLIENTS: u64 = 8;
const REGIONS_PER_CLIENT: u64 = 200;

/// One full scenario: a team serving 8 concurrent clients × 200 regions.
fn scenario() -> u64 {
    let rt = Runtime::with_threads(4);
    let grand_total = AtomicU64::new(0);
    std::thread::scope(|clients| {
        for client in 0..CLIENTS {
            let rt = &rt;
            let grand_total = &grand_total;
            clients.spawn(move || {
                let mut client_total = 0u64;
                for region in 0..REGIONS_PER_CLIENT {
                    match region % 8 {
                        // A panicking region: the payload must stay inside
                        // this region and its record must still be freed.
                        3 => {
                            let h = rt.submit(|s| {
                                s.spawn(|_| panic!("stress panic"));
                                s.taskwait();
                            });
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
                            assert!(out.is_err());
                        }
                        // A region whose handle is dropped, not joined.
                        5 => {
                            drop(rt.submit(move |s| {
                                s.taskgroup(|s| {
                                    for _ in 0..8 {
                                        s.spawn(|_| {});
                                    }
                                });
                            }));
                        }
                        // A plain task-tree region whose result is checked.
                        _ => {
                            let h = rt.submit(move |s| {
                                let acc = AtomicU64::new(0);
                                s.taskgroup(|s| {
                                    for task in 0..16u64 {
                                        let acc = &acc;
                                        s.spawn(move |_| {
                                            acc.fetch_add(
                                                client + region + task,
                                                Ordering::Relaxed,
                                            );
                                        });
                                    }
                                });
                                acc.load(Ordering::Relaxed)
                            });
                            client_total += h.join();
                        }
                    }
                }
                grand_total.fetch_add(client_total, Ordering::Relaxed);
            });
        }
    });
    grand_total.load(Ordering::Relaxed)
}

fn expected_total() -> u64 {
    let mut total = 0u64;
    for client in 0..CLIENTS {
        for region in 0..REGIONS_PER_CLIENT {
            if region % 8 == 3 || region % 8 == 5 {
                continue;
            }
            total += (0..16u64).map(|task| client + region + task).sum::<u64>();
        }
    }
    total
}

#[test]
fn eight_clients_two_hundred_regions_leak_nothing() {
    // The panicking regions are expected; a silent hook keeps the log
    // readable and — more importantly — keeps the default hook's backtrace
    // symbolization from allocating into its process-lifetime cache, which
    // would read as a (nonexistent) leak below.
    std::panic::set_hook(Box::new(|_| {}));

    // First run warms process-lifetime allocations (thread-local lazies,
    // allocator internals), so the measured run starts from a steady state.
    assert_eq!(scenario(), expected_total());

    let before = current_bytes();
    assert_eq!(scenario(), expected_total());
    let after = current_bytes();

    let _ = std::panic::take_hook();
    // One leaked task record is 128 bytes; 1600 leaked roots would be
    // ~200 KiB. Demand the delta stays below a single record.
    assert!(
        after <= before + 127,
        "concurrent-regions stress leaked {} bytes ({} -> {})",
        after as i64 - before as i64,
        before,
        after
    );
}
