//! Stress tests: concurrent region submission, rapid region churn, and
//! large imbalanced task trees under every policy combination.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_runtime::{LocalOrder, Runtime, RuntimeConfig, RuntimeCutoff, Scope};

#[test]
fn concurrent_parallel_calls_overlap_safely() {
    // `parallel` takes &self; callers on different threads run their
    // regions concurrently on the one team and must all complete correctly.
    let rt = Runtime::with_threads(4);
    let total = AtomicU64::new(0);
    std::thread::scope(|ts| {
        for caller in 0..4u64 {
            let rt = &rt;
            let total = &total;
            ts.spawn(move || {
                for i in 0..8u64 {
                    let got = rt.parallel(|s| {
                        let acc = AtomicU64::new(0);
                        s.taskgroup(|s| {
                            for j in 0..32u64 {
                                let acc = &acc;
                                s.spawn(move |_| {
                                    acc.fetch_add(caller * 1000 + i * 10 + j, Ordering::Relaxed);
                                });
                            }
                        });
                        acc.load(Ordering::Relaxed)
                    });
                    total.fetch_add(got, Ordering::Relaxed);
                }
            });
        }
    });
    let expect: u64 = (0..4u64)
        .flat_map(|c| (0..8u64).flat_map(move |i| (0..32u64).map(move |j| c * 1000 + i * 10 + j)))
        .sum();
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

#[test]
fn region_churn() {
    // Thousands of tiny regions: lifecycle bookkeeping must not leak or
    // wedge.
    let rt = Runtime::with_threads(3);
    for i in 0..2000u64 {
        let got = rt.parallel(move |_| i * 2);
        assert_eq!(got, i * 2);
    }
}

/// A deliberately imbalanced tree: left spine spawns heavy subtrees.
fn skewed(s: &Scope<'_>, depth: u32, acc: &AtomicU64) {
    acc.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    s.taskgroup(|s| {
        // One heavy child, several trivial ones.
        s.spawn(move |s| skewed(s, depth - 1, acc));
        for _ in 0..3 {
            s.spawn(move |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
}

#[test]
fn imbalanced_trees_under_all_policies() {
    let expect = {
        // nodes(d) = 1 + 3 + nodes(d-1); nodes(0) = 1
        let mut n = 1u64;
        for _ in 0..64 {
            n += 4;
        }
        n
    };
    for order in [LocalOrder::Lifo, LocalOrder::Fifo] {
        for cutoff in [
            RuntimeCutoff::None,
            RuntimeCutoff::MaxTasks { per_worker: 4 },
            RuntimeCutoff::Adaptive { low: 1, high: 4 },
        ] {
            for constraint in [true, false] {
                let rt = Runtime::new(
                    RuntimeConfig::new(6)
                        .with_local_order(order)
                        .with_cutoff(cutoff)
                        .with_tied_constraint(constraint),
                );
                let acc = AtomicU64::new(0);
                rt.parallel(|s| skewed(s, 64, &acc));
                assert_eq!(
                    acc.load(Ordering::Relaxed),
                    expect,
                    "order={order:?} cutoff={cutoff:?} constraint={constraint}"
                );
            }
        }
    }
}

#[test]
fn wide_flat_fanout() {
    // 200k sibling tasks from a single generator (the single-generator
    // bottleneck pattern): stresses deque growth and the injector path.
    let rt = Runtime::with_threads(8);
    let acc = AtomicU64::new(0);
    rt.parallel(|s| {
        let acc = &acc;
        s.taskgroup(|s| {
            for _ in 0..200_000u64 {
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(acc.load(Ordering::Relaxed), 200_000);
}

/// Fib-shaped spawn tree with no cut-off: every call below `n` is a real
/// deferred task.
fn fib_tree(s: &Scope<'_>, n: u64, out: &AtomicU64) {
    if n < 2 {
        out.fetch_add(n, Ordering::Relaxed);
        return;
    }
    s.taskgroup(|s| {
        s.spawn(move |s| fib_tree(s, n - 1, out));
        s.spawn(move |s| fib_tree(s, n - 2, out));
    });
}

/// Call-tree size of `fib_tree(n)`: `2 * fib(n + 1) - 1` nodes.
fn fib_tree_nodes(n: u64) -> u64 {
    let (mut a, mut b) = (1u64, 1u64); // fib(1), fib(2)
    for _ in 1..=n {
        let c = a + b;
        a = b;
        b = c;
    }
    2 * a - 1
}

#[test]
fn million_task_tree_recycles_records() {
    // The record-pool acceptance test: a fib-shaped tree of ~1.66M tasks at
    // every small team size. Exact task accounting must hold, and the slab
    // must serve almost every spawn from a free list — the pool high-water
    // mark (fresh records) is bounded by the tree depth and steal traffic,
    // not by the task count.
    let n = 29u64; // 1_664_079 nodes
    let total_nodes = fib_tree_nodes(n);
    assert!(total_nodes > 1_000_000);
    let spawned_tasks = total_nodes - 1; // every node but the region root

    let fib_value = {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..n {
            let c = a + b;
            a = b;
            b = c;
        }
        a
    };

    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        let before = rt.stats();
        let out = AtomicU64::new(0);
        rt.parallel(|s| fib_tree(s, n, &out));
        assert_eq!(out.load(Ordering::Relaxed), fib_value, "threads={threads}");

        let d = rt.stats().since(&before);
        assert_eq!(d.spawned, spawned_tasks, "threads={threads}");
        // `executed` counts the region root task too (it runs through the
        // same worker execute path, off the injector).
        assert_eq!(d.executed, spawned_tasks + 1, "threads={threads}");
        assert_eq!(
            d.slab_fresh + d.slab_recycled,
            spawned_tasks,
            "every spawn drew exactly one record (threads={threads})"
        );
        // Steady state must run off the free lists: the pool never grows
        // anywhere near the task count.
        assert!(
            d.slab_fresh < spawned_tasks / 100,
            "pool grew {} records for {} tasks (threads={threads})",
            d.slab_fresh,
            spawned_tasks
        );
        assert!(
            d.slab_recycled > spawned_tasks * 95 / 100,
            "only {} of {} spawns recycled (threads={threads})",
            d.slab_recycled,
            spawned_tasks
        );
        if threads == 1 {
            assert_eq!(d.slab_cross_freed, 0, "no thieves on a team of one");
        }
    }
}
