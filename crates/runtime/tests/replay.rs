//! End-to-end behaviour of task-graph record-and-replay
//! (`Runtime::submit_replay` / `Runtime::parallel_replay`): the first
//! region under a shape token records its dependency DAG, warm submits
//! re-execute the frozen graph with no tracker traffic while preserving
//! dependency order, a shape mismatch diverges back to live registration
//! with identical results, cancellation composes, and the cache telemetry
//! (`replays_recorded` / `replays_hit` / `replays_diverged` /
//! `graphs_evicted`) accounts for every submit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bots_runtime::{ReplayPhase, Runtime, RuntimeConfig};

/// The acceptance chain from the deps tests — SparseLU's `fwd → bmod →
/// bdiv` shape — on **one thread**, where a LIFO deque would reverse
/// spawn order if the dependences did not hold tasks back. Run five times
/// under one token: the first records (live), the other four replay off
/// the frozen graph, and every run must produce the same order.
#[test]
fn replay_preserves_dependency_order_on_one_thread() {
    let rt = Runtime::with_threads(1);
    let row = [0u8; 1];
    let block = [0u8; 1];
    for run in 0..5 {
        let log = Mutex::new(Vec::new());
        rt.parallel_replay(0xC0FFEE, |s| {
            let (log, row, block) = (&log, &row, &block);
            s.task(move |_| log.lock().unwrap().push("fwd"))
                .after_write(row)
                .spawn();
            s.task(move |_| log.lock().unwrap().push("bmod"))
                .after_read(row)
                .after_write(block)
                .spawn();
            s.task(move |_| log.lock().unwrap().push("bdiv"))
                .after_read(block)
                .spawn();
            // No taskwait: quiescence is the only join, recorded or not.
        });
        assert_eq!(
            *log.lock().unwrap(),
            vec!["fwd", "bmod", "bdiv"],
            "run {run}"
        );
    }
    let s = rt.stats();
    assert_eq!(s.replays_recorded, 1, "first submit records");
    assert_eq!(s.replays_hit, 4, "warm submits replay");
    assert_eq!(s.replays_diverged, 0);
    assert_eq!(
        s.deps_registered, 4,
        "only the recording run touches the tracker"
    );
}

/// The token promises a *shape*, not addresses: a structurally identical
/// region over freshly-allocated objects replays through first-occurrence
/// renaming.
#[test]
fn replay_renames_fresh_addresses() {
    let rt = Runtime::with_threads(2);
    for round in 0..4u64 {
        // Fresh heap objects every round — addresses may or may not repeat,
        // renaming must not care.
        let objs: Vec<Box<AtomicU64>> = (0..3).map(|_| Box::new(AtomicU64::new(0))).collect();
        rt.parallel_replay(0xDEAD_BEEF, |s| {
            let objs = &objs;
            s.task(move |_| objs[0].store(round + 1, Ordering::Relaxed))
                .after_write(&*objs[0])
                .spawn();
            for sink in &objs[1..] {
                s.task(move |_| sink.store(objs[0].load(Ordering::Relaxed), Ordering::Relaxed))
                    .after_read(&*objs[0])
                    .after_write(&**sink)
                    .spawn();
            }
        });
        for obj in &objs {
            assert_eq!(obj.load(Ordering::Relaxed), round + 1, "round {round}");
        }
    }
    let s = rt.stats();
    assert_eq!(s.replays_recorded, 1);
    assert_eq!(s.replays_hit, 3);
    assert_eq!(s.replays_diverged, 0);
}

/// A submit whose spawn sequence stops matching the recording diverges:
/// the matched prefix drains, the rest registers live, the results are
/// exactly what a live run would produce, and the stale graph is
/// invalidated so the *next* submit re-records.
#[test]
fn divergence_falls_back_to_live_and_re_records() {
    let rt = Runtime::with_threads(2);
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    const TOKEN: u64 = 7;

    // Record: write a → read a.
    rt.parallel_replay(TOKEN, |s| {
        let a = &a;
        s.task(move |_| a.store(1, Ordering::Relaxed))
            .after_write(a)
            .spawn();
        s.task(move |_| {
            a.fetch_add(10, Ordering::Relaxed);
        })
        .after_read(a)
        .spawn();
    });
    assert_eq!(a.load(Ordering::Relaxed), 11);

    // Same token, different shape: the first spawn matches the recording,
    // the second (write, not read — and a second address) does not.
    a.store(0, Ordering::Relaxed);
    rt.parallel_replay(TOKEN, |s| {
        let (a, b) = (&a, &b);
        s.task(move |_| a.store(2, Ordering::Relaxed))
            .after_write(a)
            .spawn();
        s.task(move |_| b.store(a.load(Ordering::Relaxed), Ordering::Relaxed))
            .after_read(a)
            .after_write(b)
            .spawn();
        s.task(move |_| {
            b.fetch_add(100, Ordering::Relaxed);
        })
        .after_read(b)
        .spawn();
    });
    assert_eq!(a.load(Ordering::Relaxed), 2);
    assert_eq!(
        b.load(Ordering::Relaxed),
        102,
        "post-divergence ordering held"
    );

    let s = rt.stats();
    assert_eq!(s.replays_recorded, 1);
    assert_eq!(s.replays_diverged, 1, "the mismatch diverged");
    assert_eq!(s.replays_hit, 0);

    // The stale graph was invalidated: the same token records afresh, and
    // the new recording replays.
    rt.parallel_replay(TOKEN, |s| {
        let a = &a;
        s.task(move |_| a.store(3, Ordering::Relaxed))
            .after_write(a)
            .spawn();
    });
    rt.parallel_replay(TOKEN, |s| {
        let a = &a;
        s.task(move |_| a.store(4, Ordering::Relaxed))
            .after_write(a)
            .spawn();
    });
    assert_eq!(a.load(Ordering::Relaxed), 4);
    let s = rt.stats();
    assert_eq!(s.replays_recorded, 2, "divergence invalidated the graph");
    assert_eq!(s.replays_hit, 1);
}

/// Spawning *more* tasks than the recording is a divergence too (the
/// overrun claims an index past the frozen task count).
#[test]
fn overrunning_the_recording_diverges() {
    let rt = Runtime::with_threads(2);
    let a = AtomicU64::new(0);
    const TOKEN: u64 = 8;
    rt.parallel_replay(TOKEN, |s| {
        let a = &a;
        s.task(move |_| a.store(1, Ordering::Relaxed))
            .after_write(a)
            .spawn();
    });
    rt.parallel_replay(TOKEN, |s| {
        let a = &a;
        for add in [1u64, 10, 100] {
            s.task(move |_| {
                a.fetch_add(add, Ordering::Relaxed);
            })
            .after_write(a)
            .spawn();
        }
    });
    assert_eq!(a.load(Ordering::Relaxed), 112);
    assert_eq!(rt.stats().replays_diverged, 1);
}

/// Cancelling a replayed region drains it cleanly and returns the graph
/// to the cache: the next submit under the token replays again. A
/// cancelled *recording* is invalidated instead — its shape is truncated.
#[test]
fn cancellation_composes_with_replay() {
    let rt = Runtime::with_threads(2);
    const TOKEN: u64 = 9;
    static TICKS: AtomicU64 = AtomicU64::new(0);

    // A cancelled recording does not deposit a truncated graph.
    let h = rt.submit_replay(TOKEN, |s| {
        s.task(|_| {
            TICKS.store(1, Ordering::Relaxed);
        })
        .after_write(&TICKS)
        .spawn();
        s.cancel_region();
    });
    assert!(h.outcome().is_err(), "cancelled region reports Cancelled");
    assert_eq!(
        rt.stats().replays_recorded,
        0,
        "truncated recording dropped"
    );

    // Record for real, then cancel a replay mid-flight.
    let chain = |cancel: bool| {
        move |s: &bots_runtime::Scope<'_>| {
            s.task(|_| {
                TICKS.fetch_add(1, Ordering::Relaxed);
            })
            .after_write(&TICKS)
            .spawn();
            s.task(|_| {
                TICKS.fetch_add(1, Ordering::Relaxed);
            })
            .after_write(&TICKS)
            .spawn();
            if cancel {
                s.cancel_region();
            }
        }
    };
    rt.submit_replay(TOKEN, chain(false))
        .outcome()
        .expect("recording run completes");
    let h = rt.submit_replay(TOKEN, chain(true));
    assert!(h.outcome().is_err(), "cancelled replay reports Cancelled");
    // The graph went back: the token still replays, to completion.
    TICKS.store(0, Ordering::Relaxed);
    rt.submit_replay(TOKEN, chain(false))
        .outcome()
        .expect("replay after a cancelled replay completes");
    assert_eq!(TICKS.load(Ordering::Relaxed), 2);
    let s = rt.stats();
    assert_eq!(s.replays_recorded, 1);
    assert_eq!(
        s.replays_hit, 2,
        "the cancelled replay and the clean one both count as hits"
    );
    assert_eq!(s.replays_diverged, 0);
}

/// Region-level observability: `RegionStats::replay` reports the phase the
/// region finished in.
#[test]
fn region_stats_report_the_replay_phase() {
    let rt = Runtime::with_threads(2);
    static OBJ: AtomicU64 = AtomicU64::new(0);
    let body = |s: &bots_runtime::Scope<'_>| {
        s.task(|_| {
            OBJ.fetch_add(1, Ordering::Relaxed);
        })
        .after_write(&OBJ)
        .spawn();
    };
    // The phase is armed before `submit_replay` returns, so the handle can
    // report it before (and while) the region runs.
    let h = rt.submit_replay(11, body);
    assert_eq!(h.stats().replay, ReplayPhase::Recording);
    h.outcome().expect("recording run completes");
    let h = rt.submit_replay(11, body);
    assert_eq!(h.stats().replay, ReplayPhase::Replaying);
    h.outcome().expect("replayed run completes");
    let h = rt.submit(body);
    assert_eq!(h.stats().replay, ReplayPhase::Off);
    h.outcome().expect("plain submit completes");
}

/// Admitting tokens past the cache capacity evicts the
/// least-recently-armed graph; the evicted token simply records again.
#[test]
fn cache_eviction_recycles_capacity() {
    let rt = Runtime::new(RuntimeConfig::new(2).with_replay_cache(1));
    static OBJ: AtomicU64 = AtomicU64::new(0);
    let body = |s: &bots_runtime::Scope<'_>| {
        s.task(|_| {
            OBJ.fetch_add(1, Ordering::Relaxed);
        })
        .after_write(&OBJ)
        .spawn();
    };
    let _ = rt.submit_replay(1, body).outcome();
    let _ = rt.submit_replay(1, body).outcome();
    let _ = rt.submit_replay(2, body).outcome(); // evicts token 1's graph
    let _ = rt.submit_replay(1, body).outcome(); // records afresh
    let s = rt.stats();
    assert_eq!(s.replays_hit, 1);
    assert!(s.graphs_evicted >= 1, "capacity 1 must evict");
    assert_eq!(s.replays_recorded, 3);
    assert_eq!(s.replays_diverged, 0);
}

/// A dependency task that is **ready at registration** now honors the
/// inline cascade (the README's long-standing deviation, removed): with
/// `if(false)` and no unretired predecessors it executes synchronously —
/// its side effect is visible the moment `spawn()` returns.
#[test]
fn ready_dep_task_honors_if_clause_inline() {
    let rt = Runtime::with_threads(2);
    let obj = [0u8; 1];
    let flag = AtomicU64::new(0);
    rt.parallel(|s| {
        let (obj, flag) = (&obj, &flag);
        s.task(move |_| {
            flag.store(1, Ordering::Relaxed);
        })
        .after_write(obj)
        .if_clause(false)
        .spawn();
        assert_eq!(
            flag.load(Ordering::Relaxed),
            1,
            "a ready undeferred dep task must run before spawn() returns"
        );
    });
    let s = rt.stats();
    assert!(s.inlined_if >= 1, "the inline was attributed");
}

/// The other half of the contract: an `if(false)` dep task whose
/// predecessor has not retired **cannot** run inline — it defers like any
/// clause-carrying task and runs after its predecessor. On one thread the
/// predecessor cannot have run when the successor registers, making the
/// deferral deterministic.
#[test]
fn unready_dep_task_defers_despite_if_clause() {
    let rt = Runtime::with_threads(1);
    let obj = [0u8; 1];
    let log = Mutex::new(Vec::new());
    rt.parallel(|s| {
        let (obj, log) = (&obj, &log);
        s.task(move |_| log.lock().unwrap().push("pred"))
            .after_write(obj)
            .spawn();
        s.task(move |_| log.lock().unwrap().push("succ"))
            .after_read(obj)
            .if_clause(false)
            .spawn();
        assert!(
            log.lock().unwrap().is_empty(),
            "an unready task cannot run inline, whatever its attributes"
        );
    });
    assert_eq!(*log.lock().unwrap(), vec!["pred", "succ"]);
    assert_eq!(rt.stats().deps_deferred, 1);
}
