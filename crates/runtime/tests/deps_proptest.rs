//! Property test for the depend-clause subsystem, run under the counting
//! allocator: randomly shaped dependency DAGs — chains, diamond layers and
//! random fan-ins, with panics injected into nodes, across budgeted and
//! unbudgeted regions and team sizes — must uphold the data-flow
//! invariants:
//!
//! * **topological execution** — a node never runs before every declared
//!   predecessor has completed (each node checks its predecessors' done
//!   flags on entry);
//! * **no lost or double release** — every node executes exactly once: a
//!   lost release would wedge the region (the join would hang until the
//!   exec counts fell short), a double release would run a record twice;
//!   the deferral telemetry must balance (`deps_deferred ==
//!   deps_released`);
//! * **panic containment** — a panicking node still retires and releases
//!   its successors (they run; the payload reaches the region's joiner);
//! * **leak freedom** — with the runtime dropped, live heap bytes return
//!   to baseline: dep blocks, list nodes and map entries all flowed back
//!   through their pools.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_profile::current_bytes;
use bots_runtime::{RegionBudget, Runtime, RuntimeConfig, MAX_TASK_DEPS};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// Tiny deterministic generator for DAG shapes (the shim proptest
/// strategies are integer ranges; structure is derived from a seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Predecessors of node `i` for the given shape. Node indices are spawn
/// order and edges always point backwards, so every generated graph is a
/// DAG by construction — like any clause-declared graph.
fn preds(shape: u64, i: usize, rng: &mut Rng) -> Vec<usize> {
    if i == 0 {
        return Vec::new();
    }
    match shape {
        // Chain: i depends on i-1.
        0 => vec![i - 1],
        // Diamond layers of 3: each node depends on every node of the
        // previous layer (fan-out then fan-in, repeated).
        1 => {
            let layer = i / 3;
            if layer == 0 {
                Vec::new()
            } else {
                ((layer - 1) * 3..layer * 3).filter(|&p| p < i).collect()
            }
        }
        // Random fan-in: up to MAX_TASK_DEPS - 1 distinct predecessors.
        _ => {
            let k = (rng.below(MAX_TASK_DEPS as u64 - 1) + 1).min(i as u64);
            let mut ps: Vec<usize> = (0..k).map(|_| rng.below(i as u64) as usize).collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_dags_execute_topologically(
        workers in 1usize..5,
        n in 2usize..25,
        shape in 0u64..3,
        seed in 1u64..10_000,
        budget in 0usize..5,
        panic_node in 0usize..26,
    ) {
        // Quiet panics + warm lazy machinery, as in the other proptests.
        static QUIET_PANICS: std::sync::Once = std::sync::Once::new();
        QUIET_PANICS.call_once(|| {
            std::panic::set_hook(Box::new(|info| eprintln!("panic: {info}")));
            let _ = std::panic::catch_unwind(|| panic!("warm-up panic"));
            drop(Runtime::with_threads(2));
        });

        let mut rng = Rng(seed);
        let graph: Vec<Vec<usize>> = (0..n).map(|i| preds(shape, i, &mut rng)).collect();
        let panics = panic_node < n;
        // One flag per node: the depend-clause token *and* the done flag.
        let flags: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let execs: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let violations = AtomicU64::new(0);

        // Baseline after the test's own allocations: what must return to
        // this level is everything the *runtime lifecycle* allocates.
        let heap_before = current_bytes();
        let (stats, outcome) = {
            let region_budget = match budget {
                0 => RegionBudget::Inherit,
                b => RegionBudget::MaxQueued(b),
            };
            let rt = Runtime::new(
                RuntimeConfig::new(workers).with_region_budget(region_budget),
            );
            let before = rt.stats();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.parallel(|s| {
                    for (i, ps) in graph.iter().enumerate() {
                        let (flags, execs, violations) = (&flags, &execs, &violations);
                        let node_panics = panics && i == panic_node;
                        let mut b = s.task(move |_| {
                            for &p in ps {
                                if flags[p].load(Ordering::Acquire) == 0 {
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            execs[i].fetch_add(1, Ordering::Relaxed);
                            flags[i].store(1, Ordering::Release);
                            if node_panics {
                                panic!("node {i} panics");
                            }
                        });
                        for &p in ps {
                            b = b.after_read(&flags[p]);
                        }
                        b.after_write(&flags[i]).spawn();
                    }
                });
            }));
            (rt.stats().since(&before), outcome)
            // Runtime drops here; all pooled dep memory is freed.
        };
        let heap_after = current_bytes();

        if panics {
            prop_assert!(outcome.is_err(), "a node panic must reach the joiner");
        } else {
            prop_assert!(outcome.is_ok());
        }
        prop_assert_eq!(violations.load(Ordering::Relaxed), 0,
            "a node ran before one of its declared predecessors");
        for (i, e) in execs.iter().enumerate() {
            prop_assert_eq!(e.load(Ordering::Relaxed), 1,
                "node {} executed {} times (lost or double release)",
                i, e.load(Ordering::Relaxed));
        }
        let edges: u64 = graph.iter().map(|ps| ps.len() as u64).sum();
        prop_assert_eq!(stats.deps_registered, edges + n as u64,
            "one in-clause per edge plus one out-clause per node");
        prop_assert_eq!(stats.deps_deferred, stats.deps_released,
            "every deferred task must be released exactly once");

        let leaked = heap_after.saturating_sub(heap_before);
        prop_assert!(
            leaked < 512,
            "live heap grew by {leaked} bytes across a full runtime lifecycle"
        );
    }
}
