//! Property test for pooled taskgroups, run under the counting allocator:
//! randomly shaped groves of **nested and overlapping** taskgroups —
//! sibling groups per frame, concurrently active groups across workers and
//! across budgeted/unbudgeted regions, with panics injected into group
//! members — must uphold the group lifecycle invariants:
//!
//! * **no lost or double `leave()`** — every group wait returns exactly
//!   when its members are done, so the leaf/side-effect counts are exact
//!   and nothing deadlocks (a lost leave wedges the waiter; a double leave
//!   underflows the count and releases the wait early, losing bumps);
//! * **descriptors always return to the pool** — the fresh/recycled
//!   telemetry accounts for every `taskgroup` call, and descriptor memory
//!   is leak-checked via live heap bytes after the runtime drops;
//! * **a panic in a group member does not wedge the group waiter** — the
//!   wait drains (the member's `leave` runs after its panic is captured)
//!   and the payload is re-raised by the region's joiner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bots_profile::current_bytes;
use bots_runtime::{RegionBudget, Runtime, RuntimeConfig, Scope};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// A grove of nested taskgroups: each frame above the leaves opens **two**
/// sibling groups (nesting within the first, a flat fan-out in the second),
/// so sibling and nested groups overlap within a frame while spawned
/// subtrees overlap across workers. Leaves bump `count` — before their
/// injected panic, so the expected total stays exact under panics.
fn grove(s: &Scope<'_>, depth: u32, width: u64, panic_leaves: bool, count: &AtomicU64) {
    if depth == 0 {
        count.fetch_add(1, Ordering::Relaxed);
        if panic_leaves {
            panic!("leaf panic");
        }
        return;
    }
    s.taskgroup(|s| {
        for _ in 0..width {
            s.spawn(move |s| grove(s, depth - 1, width, panic_leaves, count));
        }
    });
    s.taskgroup(|s| {
        for _ in 0..width {
            s.spawn(move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
}

/// Leaves of a `grove` call tree rooted at `depth`.
fn leaves(depth: u32, width: u64) -> u64 {
    width.pow(depth)
}

/// Total leaf + flat-group bumps a grove performs.
fn expected_bumps(depth: u32, width: u64) -> u64 {
    // Internal nodes at depths 1..=depth each run one flat group of
    // `width` bumps; there are width^(depth - d) nodes at depth d.
    let internal_bumps: u64 = (1..=depth).map(|d| width.pow(depth - d) * width).sum();
    leaves(depth, width) + internal_bumps
}

/// `taskgroup` calls a grove makes (two per internal node).
fn expected_groups(depth: u32, width: u64) -> u64 {
    (1..=depth).map(|d| width.pow(depth - d) * 2).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn groups_drain_recycle_and_survive_panics(
        workers in 1usize..5,
        depth in 1u32..4,
        width in 1u64..4,
        budget in 0usize..6,
        panic_region in 0u8..2,
    ) {
        let panic_region = panic_region == 1;
        // The default panic hook captures and symbolises a backtrace per
        // panic — megabytes of std-internal caches that would swamp the
        // leak measurement below. Print the one-line message only, and
        // warm the lazy panic/runtime machinery up before the baseline.
        static QUIET_PANICS: std::sync::Once = std::sync::Once::new();
        QUIET_PANICS.call_once(|| {
            std::panic::set_hook(Box::new(|info| eprintln!("panic: {info}")));
            let _ = std::panic::catch_unwind(|| panic!("warm-up panic"));
            drop(Runtime::with_threads(2));
        });
        let heap_before = current_bytes();
        let healthy_count = Arc::new(AtomicU64::new(0));
        let panicky_count = Arc::new(AtomicU64::new(0));
        let (group_waits, groups_seen) = {
            let rt = Runtime::new(RuntimeConfig::new(workers));
            // 0 encodes "unbudgeted" (the shim strategy set is ranges only).
            let budget = match budget {
                0 => RegionBudget::Inherit,
                n => RegionBudget::MaxQueued(n),
            };

            // Two overlapping regions on one team: a healthy grove and —
            // when `panic_region` — a grove whose every leaf panics.
            let healthy = {
                let count = healthy_count.clone();
                rt.submit_with_budget(budget, move |s| {
                    grove(s, depth, width, false, &count)
                })
            };
            let panicky = panic_region.then(|| {
                let count = panicky_count.clone();
                rt.submit_with_budget(budget, move |s| {
                    grove(s, depth, width, true, &count)
                })
            });

            healthy.join();
            if let Some(h) = panicky {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
                prop_assert!(out.is_err(), "a member panic must reach the joiner");
            }

            let stats = rt.stats();
            (stats.group_waits, stats.groups_fresh + stats.groups_recycled)
            // Runtime drops here: every group descriptor the pool ever
            // created is freed, or the live-bytes check below trips.
        };

        // No lost/double leave: every wait returned only after its members
        // were done, so the healthy region's side-effect total is exact.
        // The panicky region's is bounded, not exact: when the budget
        // inlines a leaf, its panic legitimately unwinds through the
        // spawning frame (skipping that frame's remaining spawns and later
        // sibling groups) — but at least the first panicking leaf bumped,
        // and no wait released early enough to lose a bump it waited on.
        prop_assert_eq!(healthy_count.load(Ordering::Relaxed), expected_bumps(depth, width));
        if panic_region {
            let got = panicky_count.load(Ordering::Relaxed);
            prop_assert!(
                (1..=expected_bumps(depth, width)).contains(&got),
                "panicky grove bumped {} of at most {}",
                got,
                expected_bumps(depth, width)
            );
        }

        // Pool accounting: every group wait consumed exactly one lease
        // (fresh or recycled) — a lease that never waited, or a wait on an
        // unleased group, would split these. The healthy region accounts
        // for its full grove; the panicky region for at least its root
        // group (the guard counts the wait even while unwinding).
        prop_assert_eq!(groups_seen, group_waits);
        let healthy_groups = expected_groups(depth, width);
        let min = healthy_groups + u64::from(panic_region);
        let max = healthy_groups * (1 + u64::from(panic_region));
        prop_assert!(
            (min..=max).contains(&group_waits),
            "{} group waits outside [{}, {}]",
            group_waits,
            min,
            max
        );

        // Descriptor leak check: with the runtime gone, the heap is back
        // to its baseline (modulo the Arc counters this case still holds
        // and allocator slack — well under one leaked descriptor per
        // group).
        let heap_after = current_bytes();
        let leaked = heap_after.saturating_sub(heap_before);
        prop_assert!(
            leaked < 512,
            "live heap grew by {leaked} bytes across a full runtime lifecycle"
        );
    }
}
