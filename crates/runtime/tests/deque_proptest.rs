//! Property tests for the Chase-Lev deque: sequential operation sequences
//! must behave exactly like a double-ended queue model (owner side = LIFO
//! end, thief side = FIFO end).

use std::collections::VecDeque;
use std::ptr::NonNull;

use bots_runtime::deque::{deque, Steal};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    PopFifo,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1000).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::PopFifo),
        Just(Op::Steal),
    ]
}

fn leak(v: u64) -> NonNull<u64> {
    NonNull::new(Box::into_raw(Box::new(v))).unwrap()
}

unsafe fn reclaim(p: NonNull<u64>) -> u64 {
    *Box::from_raw(p.as_ptr())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_vecdeque_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let (owner, stealer) = deque::<u64>();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut outstanding: Vec<NonNull<u64>> = Vec::new();

        for op in ops {
            match op {
                Op::Push(v) => {
                    let p = leak(v);
                    outstanding.push(p);
                    owner.push(p);
                    model.push_back(v);
                }
                Op::Pop => {
                    let got = owner.pop().map(|p| unsafe { reclaim(p) });
                    prop_assert_eq!(got, model.pop_back());
                }
                Op::PopFifo => {
                    let got = owner.pop_fifo().map(|p| unsafe { reclaim(p) });
                    prop_assert_eq!(got, model.pop_front());
                }
                Op::Steal => {
                    let got = match stealer.steal() {
                        Steal::Success(p) => Some(unsafe { reclaim(p) }),
                        Steal::Empty => None,
                        // Single-threaded: Retry is impossible.
                        Steal::Retry => {
                            prop_assert!(false, "retry without contention");
                            unreachable!()
                        }
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(owner.len(), model.len());
            prop_assert_eq!(owner.is_empty(), model.is_empty());
        }

        // Drain what's left so the boxes are reclaimed.
        while let Some(p) = owner.pop() {
            let v = unsafe { reclaim(p) };
            prop_assert_eq!(Some(v), model.pop_back());
        }
        prop_assert!(model.is_empty());
    }
}
