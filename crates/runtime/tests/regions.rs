//! Concurrent multi-region behaviour: the non-blocking `submit` API,
//! overlapping regions on one team, per-region panic isolation, region
//! handle semantics and per-region stats attribution.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bots_runtime::{Runtime, Scope};

mod common;
use common::block_on;

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn fib_region(s: &Scope<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n < 10 {
        return fib_seq(n);
    }
    let a = AtomicU64::new(0);
    let b = AtomicU64::new(0);
    s.taskgroup(|s| {
        s.spawn(|s| a.store(fib_region(s, n - 1), Ordering::Relaxed));
        s.spawn(|s| b.store(fib_region(s, n - 2), Ordering::Relaxed));
    });
    a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed)
}

#[test]
fn submit_returns_result_through_join() {
    let rt = Runtime::with_threads(2);
    let h = rt.submit(|s| fib_region(s, 16));
    assert_eq!(h.join(), fib_seq(16));
}

#[test]
fn submitted_regions_overlap_on_one_team() {
    // Two long-lived regions in flight at once: each one's root blocks on a
    // rendezvous that only the *other* region can complete, so the test
    // passes iff both regions genuinely run concurrently (with the old
    // global region lock this deadlocks until the park-timeout safety net —
    // in fact it deadlocks forever, since the lock is held to quiescence).
    let rt = Runtime::with_threads(4);
    let a_ready = Arc::new(AtomicUsize::new(0));
    let b_ready = Arc::new(AtomicUsize::new(0));

    let ha = {
        let (a_ready, b_ready) = (a_ready.clone(), b_ready.clone());
        rt.submit(move |_| {
            a_ready.store(1, Ordering::Release);
            while b_ready.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            'a'
        })
    };
    let hb = {
        let (a_ready, b_ready) = (a_ready, b_ready);
        rt.submit(move |_| {
            b_ready.store(1, Ordering::Release);
            while a_ready.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            'b'
        })
    };
    assert_eq!(ha.join(), 'a');
    assert_eq!(hb.join(), 'b');
}

#[test]
fn eight_simultaneous_submitters_complete_correctly() {
    // The acceptance scenario for deleting `region_lock`: 8 client threads,
    // each submitting task-tree regions concurrently, all with correct
    // isolated results.
    let rt = Runtime::with_threads(4);
    let expected = fib_seq(14);
    std::thread::scope(|clients| {
        for client in 0..8u64 {
            let rt = &rt;
            clients.spawn(move || {
                for round in 0..6u64 {
                    let salt = client * 1000 + round;
                    let h = rt.submit(move |s| fib_region(s, 14) + salt);
                    assert_eq!(h.join(), expected + salt, "client {client} round {round}");
                }
            });
        }
    });
}

#[test]
fn submit_batches_pipeline_without_blocking() {
    // A single client keeps many regions in flight before joining any:
    // submission must not block on previously submitted regions.
    let rt = Runtime::with_threads(2);
    let handles: Vec<_> = (0..32u64).map(|i| rt.submit(move |_| i * i)).collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join(), (i as u64) * (i as u64));
    }
}

#[test]
fn panic_stays_inside_its_region() {
    // Region A panics while region B is still running on the same team; A's
    // joiner sees the panic, B's joiner sees its result. This is the
    // regression test for the old shared panic slot, which could re-raise
    // A's payload into B's caller.
    let rt = Runtime::with_threads(4);
    let release_b = Arc::new(AtomicUsize::new(0));

    let hb = {
        let release_b = release_b.clone();
        rt.submit(move |s| {
            let acc = AtomicU64::new(0);
            s.taskgroup(|s| {
                for i in 0..16u64 {
                    let acc = &acc;
                    s.spawn(move |_| {
                        acc.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            // Hold region B open until A's panic has been captured.
            while release_b.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            acc.load(Ordering::Relaxed)
        })
    };

    let ha = rt.submit(|s| {
        s.spawn(|_| panic!("boom in region A"));
        s.taskwait();
    });
    let a_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ha.join()));
    assert!(a_outcome.is_err(), "region A's panic reaches A's joiner");
    release_b.store(1, Ordering::Release);
    assert_eq!(hb.join(), (0..16).sum::<u64>(), "region B is unaffected");

    // And the team is still healthy afterwards.
    assert_eq!(rt.parallel(|s| fib_region(s, 12)), fib_seq(12));
}

#[test]
fn two_panicking_regions_each_get_their_own_payload() {
    let rt = Runtime::with_threads(4);
    let ha = rt.submit(|s| {
        s.spawn(|_| panic!("payload-A"));
        s.taskwait();
    });
    let hb = rt.submit(|s| {
        s.spawn(|_| panic!("payload-B"));
        s.taskwait();
    });
    for (h, want) in [(ha, "payload-A"), (hb, "payload-B")] {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
            .expect_err("panic expected");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| err.downcast_ref::<String>().unwrap().as_str());
        assert_eq!(msg, want, "each joiner re-raises its own region's payload");
    }
}

#[test]
fn dropping_a_handle_joins_the_region() {
    let rt = Runtime::with_threads(2);
    let done = Arc::new(AtomicUsize::new(0));
    {
        let done = done.clone();
        let _unjoined = rt.submit(move |s| {
            s.taskgroup(|s| {
                for _ in 0..32 {
                    let done = done.clone();
                    s.spawn(move |_| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        // Handle dropped here without join(): must block until quiescence.
    }
    assert_eq!(done.load(Ordering::Relaxed), 32);
}

#[test]
fn dropping_a_panicked_handle_discards_the_panic() {
    let rt = Runtime::with_threads(2);
    {
        let _h = rt.submit(|_| panic!("nobody is listening"));
    }
    // The drop above must neither unwind nor poison the team.
    assert_eq!(rt.parallel(|_| 5), 5);
}

#[test]
fn is_finished_flips_after_quiescence() {
    let rt = Runtime::with_threads(2);
    let gate = Arc::new(AtomicUsize::new(0));
    let h = {
        let gate = gate.clone();
        rt.submit(move |_| {
            while gate.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        })
    };
    assert!(!h.is_finished(), "region is gated open");
    gate.store(1, Ordering::Release);
    while !h.is_finished() {
        std::thread::yield_now();
    }
    h.join();
}

#[test]
fn region_stats_attribute_tasks_to_their_region() {
    let rt = Runtime::with_threads(4);
    let big = rt.submit(|s| {
        s.taskgroup(|s| {
            for _ in 0..300 {
                s.spawn(|_| {});
            }
        });
    });
    let small = rt.submit(|s| {
        s.taskgroup(|s| {
            for _ in 0..7 {
                s.spawn(|_| {});
            }
        });
    });
    // Attribution is per region, not per team: each handle reports exactly
    // its own task traffic however the workers interleaved the two regions.
    let (big_stats, small_stats) = {
        let (sb, ss) = (&big, &small);
        while !(sb.is_finished() && ss.is_finished()) {
            std::thread::yield_now();
        }
        (sb.stats(), ss.stats())
    };
    assert_eq!(big_stats.spawned, 300);
    assert_eq!(small_stats.spawned, 7);
    // `executed` includes the region root task.
    assert_eq!(big_stats.executed, 301);
    assert_eq!(small_stats.executed, 8);
    big.join();
    small.join();
}

#[test]
fn parallel_still_supports_borrows_and_matches_submit_join() {
    // `parallel` is submit + join; its non-'static borrow support must be
    // intact.
    let rt = Runtime::with_threads(2);
    let data: Vec<u64> = (0..256).collect();
    let acc = AtomicU64::new(0);
    let got = rt.parallel(|s| {
        let (data, acc) = (&data, &acc);
        s.taskgroup(|s| {
            for chunk in 0..4 {
                s.spawn(move |_| {
                    let part: u64 = data[chunk * 64..(chunk + 1) * 64].iter().sum();
                    acc.fetch_add(part, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(got, (0..256).sum::<u64>());
}

#[test]
fn joining_from_inside_a_task_panics_instead_of_deadlocking() {
    // A worker parked in a region join cannot task-switch, so a nested
    // join could wedge the whole team (trivially on a team of one). The
    // runtime turns that latent deadlock into a clean panic; the submitted
    // region keeps running detached.
    let rt = Runtime::with_threads(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|_| {
            let h = rt.submit(|_| 1u64);
            h.join() // panics: blocking join on a worker of the same team
        })
    }));
    assert!(outcome.is_err(), "nested join must panic");
    // The team survives and still serves regions.
    assert_eq!(rt.parallel(|_| 2), 2);
}

#[test]
fn mixed_parallel_and_submit_callers_coexist() {
    // Blocking `parallel` callers and non-blocking `submit` clients hitting
    // the same team at once.
    let rt = Runtime::with_threads(4);
    std::thread::scope(|ts| {
        for c in 0..4u64 {
            let rt = &rt;
            ts.spawn(move || {
                if c % 2 == 0 {
                    for _ in 0..8 {
                        assert_eq!(rt.parallel(|s| fib_region(s, 13)), fib_seq(13));
                    }
                } else {
                    let hs: Vec<_> = (0..8).map(|_| rt.submit(|s| fib_region(s, 13))).collect();
                    for h in hs {
                        assert_eq!(h.join(), fib_seq(13));
                    }
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Async joins: the handle as a Future, and completion callbacks.
// ---------------------------------------------------------------------------

#[test]
fn handle_completes_as_a_future() {
    let rt = Runtime::with_threads(2);
    let got = block_on(rt.submit(|s| fib_region(s, 16)));
    assert_eq!(got, fib_seq(16));
}

#[test]
fn many_futures_complete_without_blocked_threads() {
    // One client thread drives 32 in-flight regions to completion through
    // polling alone — the old one-parked-thread-per-region pattern gone.
    let rt = Runtime::with_threads(4);
    let handles: Vec<_> = (0..32u64)
        .map(|i| rt.submit(move |s| fib_region(s, 12) + i))
        .collect();
    let expected = fib_seq(12);
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(block_on(h), expected + i as u64);
    }
}

#[test]
fn future_rethrows_region_panic_on_completion() {
    let rt = Runtime::with_threads(2);
    let h = rt.submit(|s| {
        s.spawn(|_| panic!("async boom"));
        s.taskwait();
    });
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| block_on(h)));
    assert!(outcome.is_err(), "poll must re-raise the region's panic");
    assert_eq!(rt.parallel(|_| 7), 7, "team unaffected");
}

#[test]
fn on_complete_delivers_result_exactly_once() {
    let rt = Runtime::with_threads(2);
    let fired = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = std::sync::mpsc::channel();
    {
        let fired = fired.clone();
        rt.submit(|s| fib_region(s, 14)).on_complete(move |result| {
            fired.fetch_add(1, Ordering::SeqCst);
            tx.send(result.expect("no panic")).unwrap();
        });
    }
    assert_eq!(rx.recv().unwrap(), fib_seq(14));
    // Quiesce more work through the team; the callback must not re-fire.
    for _ in 0..4 {
        rt.parallel(|s| fib_region(s, 10));
    }
    assert_eq!(fired.load(Ordering::SeqCst), 1, "completion double-fired");
}

#[test]
fn on_complete_after_quiescence_runs_immediately() {
    let rt = Runtime::with_threads(2);
    let h = rt.submit(|_| 99u64);
    while !h.is_finished() {
        std::thread::yield_now();
    }
    let delivered = Arc::new(AtomicU64::new(0));
    let d = delivered.clone();
    h.on_complete(move |result| {
        d.store(result.unwrap(), Ordering::SeqCst);
    });
    // Already-quiescent registration fires on the calling thread, inline.
    assert_eq!(delivered.load(Ordering::SeqCst), 99);
}

#[test]
fn on_complete_reports_region_panic_as_err() {
    let rt = Runtime::with_threads(2);
    let (tx, rx) = std::sync::mpsc::channel();
    rt.submit(|s| {
        s.spawn(|_| panic!("cb boom"));
        s.taskwait();
        5u64
    })
    .on_complete(move |result| {
        tx.send(result.is_err()).unwrap();
    });
    assert!(rx.recv().unwrap(), "callback must see the panic as Err");
    assert_eq!(rt.parallel(|_| 1), 1);
}

#[test]
fn runtime_drop_waits_for_detached_regions() {
    // The callback must fire even when the runtime is dropped right after
    // submission: Drop drains in-flight regions before shutdown.
    let fired = Arc::new(AtomicUsize::new(0));
    {
        let rt = Runtime::with_threads(2);
        let fired = fired.clone();
        rt.submit(|s| {
            s.taskgroup(|s| {
                for _ in 0..64 {
                    s.spawn(|_| {
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    });
                }
            });
        })
        .on_complete(move |result| {
            result.unwrap();
            fired.fetch_add(1, Ordering::SeqCst);
        });
        // rt dropped here with the region possibly still in flight.
    }
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn dropping_handle_inside_task_panics_instead_of_blocking() {
    // The silent-block variant of the nested-join bug: a handle *dropped*
    // (not joined) inside a task of the same runtime must raise the same
    // explicit panic as the nested-`parallel` guard, not park the worker.
    let rt = Runtime::with_threads(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.parallel(|_| {
            let h = rt.submit(|_| 1u64);
            drop(h); // would previously block the worker silently
        })
    }));
    let payload = outcome.expect_err("drop-in-task must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("inside a task of the same"),
        "unexpected panic payload: {msg}"
    );
    // The team survives; the detached region quiesces on its own.
    assert_eq!(rt.parallel(|_| 3), 3);
}

// ---------------------------------------------------------------------------
// Per-region cut-off budgets.
// ---------------------------------------------------------------------------

#[test]
fn budget_serializes_a_greedy_region() {
    use bots_runtime::RegionBudget;
    let rt = Runtime::with_threads(2);
    let h = rt.submit_with_budget(RegionBudget::MaxQueued(4), |s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            for _ in 0..10_000u64 {
                let acc = &acc;
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(h.join(), 10_000, "serialised spawns still all run");
    let stats = rt.stats();
    assert!(
        stats.inlined_budget > 0,
        "a 4-task budget against a 10k spawn storm never tripped: {stats}"
    );
}

#[test]
fn budget_isolation_spam_region_never_serializes_sibling() {
    use bots_runtime::RegionBudget;
    let rt = Runtime::with_threads(2);

    // The spammer: tiny budget, huge fan-out — it must throttle itself.
    let spam = rt.submit_with_budget(RegionBudget::MaxQueued(2), |s| {
        s.taskgroup(|s| {
            for _ in 0..20_000u64 {
                s.spawn(|_| {});
            }
        });
    });
    // The sibling: unbudgeted, spawning steadily while the spammer storms.
    let sibling = rt.submit(|s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            for i in 0..2_000u64 {
                let acc = &acc;
                s.spawn(move |_| {
                    acc.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });

    let spam_stats = {
        while !spam.is_finished() {
            std::thread::yield_now();
        }
        spam.stats()
    };
    let sibling_stats = {
        while !sibling.is_finished() {
            std::thread::yield_now();
        }
        sibling.stats()
    };
    assert_eq!(sibling.join(), (0..2_000).sum::<u64>());
    spam.join();

    assert!(
        spam_stats.serialized > 0,
        "the spam region's own budget must trip: {spam_stats:?}"
    );
    assert_eq!(
        sibling_stats.serialized, 0,
        "an unbudgeted sibling must never be serialised by a spammer's budget"
    );
}

#[test]
fn adaptive_region_budget_recovers() {
    use bots_runtime::RegionBudget;
    let rt = Runtime::with_threads(2);
    let h = rt.submit_with_budget(RegionBudget::Adaptive { low: 2, high: 16 }, |s| {
        let acc = AtomicU64::new(0);
        s.taskgroup(|s| {
            for _ in 0..5_000u64 {
                let acc = &acc;
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    });
    assert_eq!(h.join(), 5_000);
}

#[test]
fn config_default_budget_applies_to_submit() {
    use bots_runtime::{RegionBudget, RuntimeConfig};
    let rt = Runtime::new(RuntimeConfig::new(2).with_region_budget(RegionBudget::MaxQueued(2)));
    let h = rt.submit(|s| {
        s.taskgroup(|s| {
            for _ in 0..5_000u64 {
                s.spawn(|_| {});
            }
        });
    });
    while !h.is_finished() {
        std::thread::yield_now();
    }
    let stats = h.stats();
    h.join();
    assert!(
        stats.serialized > 0,
        "the team-default budget must throttle plain submits: {stats:?}"
    );
}

#[test]
fn region_descriptors_recycle_across_submissions() {
    let rt = Runtime::with_threads(2);
    for round in 0..64u64 {
        assert_eq!(rt.submit(move |_| round).join(), round);
    }
    let stats = rt.stats();
    assert!(
        stats.regions_recycled >= 60,
        "sequential submits must recycle one descriptor: fresh={} recycled={}",
        stats.regions_fresh,
        stats.regions_recycled
    );
    assert!(
        stats.regions_fresh <= 4,
        "descriptor pool failed to bound growth: fresh={}",
        stats.regions_fresh
    );
}
