//! Integration tests for continuation stealing: blocked waits suspend
//! their pooled cactus-stack frames, any worker resumes them, and the
//! books balance afterwards.
//!
//! The invariants pinned here:
//!
//! * **exactly-once resumption** — `cont_suspends == cont_resumes` at
//!   quiescence, whatever the schedule: no lost wakeup (the region would
//!   hang), no double wakeup (two workers would run one stack);
//! * **migration really happens** — a staged wait whose children finish
//!   on another worker resumes *there* (`cont_migrations`), and post-wait
//!   code observes every child done even so;
//! * **lease accounting** — continuations leased are released: the pool's
//!   created count is bounded by live suspension depth, not by how many
//!   waits ran, and warm waits lease recycled frames;
//! * **TSC-2 regression** — a *tied* task's wait on a child with a
//!   cross-subtree dependence completes on a one-thread team, the exact
//!   shape that deadlocked when tied waits pinned their worker;
//! * **panics and cancellation unwind through suspension points** —
//!   a body that suspended earlier (or whose children panic) still
//!   settles to balanced counters and a reusable team.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_runtime::{Runtime, RuntimeConfig, Scope};

/// A spawn-then-wait ladder `depth` rungs tall: every rung defers exactly
/// one child and immediately `taskwait`s, so on a single thread *every*
/// rung's wait finds the child pending and must suspend.
fn wait_ladder(s: &Scope<'_>, depth: u32, ticks: &'static AtomicU64) {
    ticks.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    s.spawn(move |s| wait_ladder(s, depth - 1, ticks));
    s.taskwait();
}

/// Every rung of a one-thread ladder suspends, every suspend resumes
/// exactly once, and the ladder completes: the tightest deterministic
/// exercise of the suspend/wake/resume protocol (no thief can drain a
/// child before its parent reaches the wait).
#[test]
fn single_thread_ladder_suspends_every_rung() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(1);
    let before = rt.stats();
    rt.parallel(|s| wait_ladder(s, 64, &TICKS));
    assert_eq!(TICKS.load(Ordering::Relaxed), 65);
    let d = rt.stats().since(&before);
    assert!(
        d.cont_suspends >= 64,
        "every rung's taskwait must suspend on one thread, saw {}",
        d.cont_suspends
    );
    assert_eq!(
        d.cont_suspends, d.cont_resumes,
        "every suspend must resume exactly once"
    );
    assert_eq!(d.cont_migrations, 0, "one thread has nowhere to migrate to");
}

/// Suspends equal resumes at quiescence across team widths and repeated
/// regions — no lost or double wakeups survive the full-team schedule
/// noise of many concurrent ladders.
#[test]
fn suspends_equal_resumes_at_quiescence() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    for workers in [1usize, 2, 4] {
        let rt = Runtime::with_threads(workers);
        for _ in 0..8 {
            rt.parallel(|s| {
                for _ in 0..8 {
                    s.spawn(|s| wait_ladder(s, 24, &TICKS));
                }
            });
            let stats = rt.stats();
            assert_eq!(
                stats.cont_suspends, stats.cont_resumes,
                "quiescent team with unbalanced suspend/resume books at {workers} workers"
            );
        }
        let stats = rt.stats();
        assert!(
            stats.cont_suspends > 0,
            "ladders must actually suspend at {workers} workers"
        );
    }
}

/// A staged migration: worker A's tied task spawns children, a thief
/// steals and completes them while A is held busy, and A's `taskwait`
/// resumes on the thief. The post-wait assertion proves the resumed frame
/// observed every child; the counter proves the frame really moved.
#[test]
fn blocked_waiters_migrate_to_the_waking_worker() {
    static DONE: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(4);
    let before = rt.stats();
    // Many rounds of wide waves: with 4 workers racing on 16-child waves,
    // some wave's last child retires on a worker other than the one that
    // suspended the waiter (probabilistically certain across 64 rounds).
    for _ in 0..64 {
        rt.parallel(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    let local = AtomicU64::new(0);
                    s.taskgroup(|s| {
                        let local = &local;
                        for _ in 0..16 {
                            s.spawn(move |_| {
                                local.fetch_add(1, Ordering::Relaxed);
                                DONE.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    assert_eq!(
                        local.load(Ordering::Relaxed),
                        16,
                        "a resumed group wait must observe every member"
                    );
                });
            }
        });
    }
    assert_eq!(DONE.load(Ordering::Relaxed), 64 * 4 * 16);
    let d = rt.stats().since(&before);
    assert_eq!(d.cont_suspends, d.cont_resumes);
    assert!(
        d.cont_migrations > 0,
        "64 rounds of stolen waves never migrated a waiter \
         (suspends={}, resumes={})",
        d.cont_suspends,
        d.cont_resumes
    );
}

/// The TSC-2 regression: a **tied** task taskwaits on a child that
/// depends on a task *outside* the waiting subtree, on one thread. Under
/// worker-pinned tied waits this deadlocked (the waiter could not legally
/// run the cross-subtree predecessor); with suspension the worker is
/// freed, runs the predecessor, and the graph drains — no untied
/// attribute, no config escape hatch.
#[test]
fn cross_subtree_dependence_completes_with_tied_waiter() {
    static DONE: AtomicU64 = AtomicU64::new(0);
    static OBJ: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(1);
    rt.parallel(|s| {
        // The predecessor: a sibling of the waiter, outside its subtree.
        s.task(move |_| {
            DONE.fetch_add(1, Ordering::Relaxed);
        })
        .after_write(&OBJ)
        .spawn();
        // The waiter is deliberately plain `spawn` — tied, the default.
        s.spawn(move |s| {
            s.task(move |_| {
                DONE.fetch_add(10, Ordering::Relaxed);
            })
            .after_read(&OBJ)
            .spawn();
            s.taskwait();
            assert_eq!(DONE.load(Ordering::Relaxed), 11);
        });
    });
    assert_eq!(DONE.load(Ordering::Relaxed), 11);
}

/// Lease accounting: the pool's created population tracks peak concurrent
/// suspension depth, not wait volume — thousands of warm waits lease
/// recycled frames and create (almost) nothing new.
#[test]
fn warm_waits_lease_recycled_continuations() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    let run = || {
        rt.parallel(|s| {
            for _ in 0..4 {
                s.spawn(|s| wait_ladder(s, 16, &TICKS));
            }
        });
    };
    for _ in 0..4 {
        run();
    }
    let created_warm = rt.conts_created();
    let before = rt.stats();
    for _ in 0..32 {
        run();
    }
    let d = rt.stats().since(&before);
    let created_after = rt.conts_created();
    assert!(
        d.conts_recycled > 0,
        "warm ladders must lease from the free lists"
    );
    assert!(
        d.conts_recycled > d.conts_fresh,
        "recycling never took over: fresh={} recycled={}",
        d.conts_fresh,
        d.conts_recycled
    );
    // 32 more regions of identical shape may grow the pool a little
    // (schedule noise shifts which worker leases), but never in
    // proportion to the waits served.
    assert!(
        created_after <= created_warm * 2 + 8,
        "pool population exploded: {created_warm} warm, {created_after} after"
    );
}

/// A panicking child unwinds through its parent's suspended wait: the
/// wait still completes (panics count as completion), the region reports
/// the payload, the books balance, and the team is reusable.
#[test]
fn child_panics_unwind_through_suspended_waits() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(2);
    for round in 0..8 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.parallel(|s| {
                s.spawn(|s| {
                    for i in 0..8 {
                        s.spawn(move |_| {
                            TICKS.fetch_add(1, Ordering::Relaxed);
                            if i == 3 {
                                panic!("child fault");
                            }
                        });
                    }
                    // On one side of the race this wait suspends before
                    // the faulting child runs; either way it must return.
                    s.taskwait();
                });
            });
        }));
        assert!(outcome.is_err(), "round {round}: the panic must surface");
        let stats = rt.stats();
        assert_eq!(
            stats.cont_suspends, stats.cont_resumes,
            "round {round}: unbalanced books after a panicking child"
        );
    }
    // The team survived eight faulted regions: an ordinary region still
    // runs to completion afterwards.
    static AFTER: AtomicU64 = AtomicU64::new(0);
    rt.parallel(|s| wait_ladder(s, 16, &AFTER));
    assert_eq!(AFTER.load(Ordering::Relaxed), 17);
}

/// Mid-wait cancellation: a region cancelled while frames sit suspended
/// in group waits still drains to a typed `Cancelled` outcome with
/// balanced suspend/resume books — a cancel must wake suspended waiters,
/// not strand them.
#[test]
fn cancellation_drains_suspended_waiters() {
    static TICKS: AtomicU64 = AtomicU64::new(0);

    fn storm(s: &Scope<'_>, depth: u32) {
        if depth == 0 || s.is_cancelled() {
            return;
        }
        TICKS.fetch_add(1, Ordering::Relaxed);
        s.taskgroup(|s| {
            for _ in 0..2 {
                s.spawn(move |s| storm(s, depth - 1));
            }
        });
    }

    let rt = Runtime::with_threads(4);
    for _ in 0..8 {
        let before = TICKS.load(Ordering::Relaxed);
        let mut h = rt.submit(|s| {
            storm(s, 40);
            s.taskwait();
        });
        while TICKS.load(Ordering::Relaxed) - before < 500 && !h.is_finished() {
            std::hint::spin_loop();
        }
        h.cancel();
        let outcome = loop {
            if let Some(o) = h.try_join(std::time::Duration::from_millis(50)) {
                break o;
            }
        };
        assert!(
            outcome.is_err(),
            "an effectively unbounded storm quiesces only by cancellation"
        );
        let stats = rt.stats();
        assert_eq!(
            stats.cont_suspends, stats.cont_resumes,
            "cancellation stranded suspended waiters"
        );
    }
}

/// Deep suspension on small stacks: a 512-rung ladder (512 concurrently
/// suspended frames) on a one-thread team with the smallest permitted
/// continuation stacks — the cactus stack grows by pooled frames, never
/// by worker-stack recursion.
#[test]
fn deep_suspension_chains_fit_small_stacks() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::new(RuntimeConfig::new(1).with_cont_stack(16 * 1024));
    rt.parallel(|s| wait_ladder(s, 512, &TICKS));
    assert_eq!(TICKS.load(Ordering::Relaxed), 513);
    let stats = rt.stats();
    assert!(stats.cont_suspends >= 512);
    assert_eq!(stats.cont_suspends, stats.cont_resumes);
}
