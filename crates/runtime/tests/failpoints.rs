//! Fault-injection coverage for `--features failpoints`: every compiled-in
//! site is actually driven by an ordinary workload, armed actions perturb
//! without hanging, and a panic injected at the one panic-safe site
//! (`task_invoke`, inside the dispatcher's `catch_unwind`) is contained as
//! a typed region outcome, leaving the team reusable.
#![cfg(feature = "failpoints")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use bots_runtime::{failpoint, RegionError, Runtime, Scope};

/// The failpoint registry is process-global; serialise the tests in this
/// binary so one test's arming never leaks into another's assertions.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    let guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::teardown();
    guard
}

/// Every site compiled into the runtime, exported by the module itself so
/// this coverage test and the registry prewarm can never drift apart.
use bots_runtime::failpoint::SITES;

static TICKS: AtomicU64 = AtomicU64::new(0);
static BURST_SINK: AtomicU64 = AtomicU64::new(0);
static DEP_CHAIN: AtomicU64 = AtomicU64::new(0);
static DEP_SINK: AtomicU64 = AtomicU64::new(0);
static LOOP_SINK: AtomicU64 = AtomicU64::new(0);
static WAIT_SINK: AtomicU64 = AtomicU64::new(0);

fn storm(s: &Scope<'_>, depth: u32) {
    if depth == 0 {
        return;
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
    for _ in 0..2 {
        s.spawn(move |s| storm(s, depth - 1));
    }
}

/// A spawn-then-wait ladder: every rung defers exactly one child and
/// immediately `taskwait`s on it, so each wait finds the child unfinished
/// (certainly on one thread, overwhelmingly likely on wider teams) and
/// suspends its pooled continuation — the coverage driver for the
/// `cont_suspend`/`cont_resume` sites. Ticks its own sink so the TICKS
/// arithmetic elsewhere stays exact.
fn wait_ladder(s: &Scope<'_>, depth: u32) {
    WAIT_SINK.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    s.spawn(move |s| wait_ladder(s, depth - 1));
    s.taskwait();
}

/// One region exercising every protocol with a failpoint in it: injector
/// submit + steal-heavy storm (injector, steal, slab reclaim), a taskgroup
/// (group leave), a dependency chain (dep retire), a worksharing loop
/// (loop claim/drain) and a deep spawn-then-wait ladder whose every rung
/// suspends its continuation (cont suspend/resume) — plus two replay
/// submits: a stable token whose first recording freezes a graph
/// (`replay_freeze`), and a token whose shape alternates between calls so
/// every second submit diverges mid-replay (`replay_diverge`).
fn workload(rt: &Runtime) {
    rt.parallel(|s| {
        storm(s, 8);
        s.taskgroup(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    TICKS.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for _ in 0..32 {
            s.task(|_| {}).after_write(&DEP_CHAIN).spawn();
            s.task(|_| {})
                .after_read(&DEP_CHAIN)
                .after_write(&DEP_SINK)
                .spawn();
        }
        s.taskwait();
        // A worksharing loop drives `loop_claim`/`loop_drain`; it ticks a
        // sink of its own so the TICKS arithmetic above stays exact.
        s.for_each(0..64, |_, _| {
            LOOP_SINK.fetch_add(1, Ordering::Relaxed);
        })
        .chunk(4)
        .mode(bots_runtime::LoopMode::Worksharing)
        .run();
        wait_ladder(s, 16);
    });
    // A burst of non-blocking submits from this one thread stacks several
    // roots on a single injector shard (a thread's submissions share its
    // cached shard slot), so some worker's pop swaps out a multi-record
    // chain and takes the tail-sever + republish path
    // (`injector_pop_republish`). Own sink: the TICKS arithmetic elsewhere
    // stays exact.
    let burst: Vec<_> = (0..8)
        .map(|_| {
            rt.submit(|_| {
                BURST_SINK.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in burst {
        h.join();
    }
    rt.parallel_replay(0xF00D, |s| {
        s.task(|_| {}).after_write(&DEP_CHAIN).spawn();
    });
    static FLIP: AtomicU64 = AtomicU64::new(0);
    let diverge = FLIP.fetch_add(1, Ordering::Relaxed) % 2 == 1;
    rt.parallel_replay(0xD1FF, move |s| {
        if diverge {
            s.task(|_| {})
                .after_read(&DEP_CHAIN)
                .after_write(&DEP_SINK)
                .spawn();
        } else {
            s.task(|_| {}).after_write(&DEP_CHAIN).spawn();
        }
    });
}

/// Acceptance: an ordinary workload drives **every** injection site. Hit
/// counting is on whether or not a site is armed, so this pins the sites
/// to the paths they claim to be on — a refactor that silently moves a
/// protocol off its failpoint fails here, not in a 2 a.m. CI hang.
#[test]
fn every_site_fires_under_an_ordinary_workload() {
    let _serial = exclusive();
    let rt = Runtime::with_threads(4);
    // Cross-thread reclaim (`slab_free_remote`) needs a steal to land; a
    // bounded number of rounds makes the schedule-dependent sites certain
    // without risking an unbounded loop on a bad day.
    for round in 0..100 {
        workload(&rt);
        if SITES.iter().all(|s| failpoint::hits(s) >= 1) {
            eprintln!("all {} sites hit after {} round(s)", SITES.len(), round + 1);
            break;
        }
    }
    for site in SITES {
        assert!(
            failpoint::hits(site) >= 1,
            "site '{site}' never fired: the workload no longer reaches it"
        );
    }
}

/// The README's failpoint site table must list exactly the sites in
/// `SITES` — this is the assertion the README advertises, so a site
/// added (or renamed) in code without a documentation row fails here.
#[test]
fn readme_site_table_matches_the_registry() {
    let readme = include_str!("../README.md");
    let mut documented = Vec::new();
    for line in readme.lines() {
        // A site row looks like ``| `site_name` | file.rs | ... |``; the
        // second cell ending in `.rs` distinguishes the site table from
        // every other table in the README.
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() >= 4
            && cells[1].starts_with('`')
            && cells[1].ends_with('`')
            && cells[2].ends_with(".rs")
        {
            documented.push(cells[1].trim_matches('`').to_string());
        }
    }
    let mut expected: Vec<String> = SITES.iter().map(|s| s.to_string()).collect();
    documented.sort();
    expected.sort();
    assert_eq!(
        documented, expected,
        "README failpoint table and failpoint::SITES disagree — update the table"
    );
}

/// Armed perturbations (yield and bounded delay) widen race windows
/// without changing results or hanging the team.
#[test]
fn armed_perturbations_do_not_change_results() {
    let _serial = exclusive();
    failpoint::cfg("injector_pop", "yield").unwrap();
    failpoint::cfg("steal", "yield").unwrap();
    failpoint::cfg("group_leave", "yield").unwrap();
    failpoint::cfg("slab_drain", "8*delay(1)").unwrap();
    failpoint::cfg("dep_retire", "8*delay(1)").unwrap();
    let rt = Runtime::with_threads(4);
    let before = TICKS.load(Ordering::Relaxed);
    workload(&rt);
    // 2^8-1 storm tasks roots-included minus leaves... the storm ticks per
    // non-leaf visit (255) plus 32 group members.
    assert_eq!(TICKS.load(Ordering::Relaxed) - before, 255 + 32);
    let stats = rt.stats();
    assert_eq!(stats.deps_deferred, stats.deps_released);
    failpoint::teardown();
}

/// The bounded-count grammar (`N*action`) drains: after N firings the site
/// keeps counting but stops acting.
#[test]
fn bounded_actions_drain() {
    let _serial = exclusive();
    failpoint::cfg("task_invoke", "2*delay(1)").unwrap();
    let rt = Runtime::with_threads(2);
    workload(&rt);
    let after_drain = failpoint::hits("task_invoke");
    assert!(after_drain > 2, "the workload outran the bound");
    // Nothing observable to measure for a drained delay except progress:
    // a second workload completes promptly with the bound long gone.
    workload(&rt);
    assert!(failpoint::hits("task_invoke") > after_drain);
    failpoint::teardown();
}

/// A panic injected at the dispatch site is contained by the region's
/// panic channel: typed outcome, team intact, pools balanced.
#[test]
fn injected_panic_is_contained_as_a_region_outcome() {
    let _serial = exclusive();
    let rt = Runtime::with_threads(2);
    // Warm the team first so the injected panic lands in a steady state.
    workload(&rt);
    failpoint::cfg("task_invoke", "1*panic(injected-fault)").unwrap();
    let outcome = rt
        .submit(|s| {
            storm(s, 6);
            s.taskwait();
        })
        .outcome();
    match outcome {
        Err(RegionError::Panicked(payload)) => {
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                msg.contains("injected-fault"),
                "panic payload must carry the failpoint message, got '{msg}'"
            );
        }
        other => panic!("injected panic must surface as Panicked, got {other:?}"),
    }
    // The team survived the fault: the very next region is business as
    // usual, and the dependency ledger still balances.
    workload(&rt);
    let stats = rt.stats();
    assert_eq!(stats.deps_deferred, stats.deps_released);
    failpoint::teardown();
}
