//! Property test for the server-grade region lifecycle: across randomly
//! sized swarms of concurrent submitters that finish their regions through
//! every completion path the API offers — blocking `join`, polling the
//! handle as a `Future`, detaching with `on_complete`, or plain `drop` —
//! interleaved across budgeted and unbudgeted regions:
//!
//! * **no completion is lost** — every region's side effects land and every
//!   collected result is correct;
//! * **no completion double-fires** — each `on_complete` callback runs
//!   exactly once, each future resolves exactly once;
//! * **budget isolation** — a budget-throttled spam region may serialise
//!   *itself*, but an unbudgeted sibling's `serialized` count stays zero.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bots_runtime::{RegionBudget, Runtime, RuntimeConfig, Scope};
use proptest::prelude::*;

mod common;
use common::block_on;

/// The region body: some task traffic, then a unique token as result. The
/// ledger records execution (exactly-once from the region's side).
fn region_body(s: &Scope<'_>, spawns: u64, token: u64, ledger: &Mutex<Vec<u64>>) -> u64 {
    let acc = AtomicU64::new(0);
    s.taskgroup(|s| {
        for _ in 0..spawns {
            let acc = &acc;
            s.spawn(move |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(acc.load(Ordering::Relaxed), spawns);
    ledger.lock().unwrap().push(token);
    token
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn no_completion_lost_none_double_fired_budgets_isolated(
        workers in 1usize..5,
        clients in 1usize..7,
        regions_per_client in 1usize..17,
        spawns in 0u64..40,
    ) {
        let rt = Runtime::new(RuntimeConfig::new(workers));
        // Every region pushes its token here from inside the region body...
        let ledger: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        // ...and every *observed* completion (join result, future output,
        // callback argument) lands here. Dropped handles observe nothing
        // but must still have run (ledger) and not fire anything extra.
        // Arcs, because detached callbacks are 'static.
        let observed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let callbacks_fired = Arc::new(AtomicUsize::new(0));
        // Sibling serialized counts: every *unbudgeted* region's stats must
        // show zero budget serialisation, however hard the spammers storm.
        let sibling_serialized = AtomicU64::new(0);

        std::thread::scope(|ts| {
            for client in 0..clients as u64 {
                let rt = &rt;
                let ledger = ledger.clone();
                let (observed, callbacks_fired) = (observed.clone(), callbacks_fired.clone());
                let sibling_serialized = &sibling_serialized;
                ts.spawn(move || {
                    for region in 0..regions_per_client as u64 {
                        let token = client * 10_000 + region;
                        // Odd clients are spammers: heavy fan-out under a
                        // tiny budget. Even clients are unbudgeted siblings.
                        let spammer = client % 2 == 1;
                        let (budget, my_spawns) = if spammer {
                            (RegionBudget::MaxQueued(2), spawns * 8)
                        } else {
                            (RegionBudget::Inherit, spawns)
                        };
                        let ledger = ledger.clone();
                        let h = rt.submit_with_budget(budget, move |s| {
                            region_body(s, my_spawns, token, &ledger)
                        });
                        // Interleave all four completion paths.
                        match region % 4 {
                            0 => {
                                // Post-quiescence stats probe: definitive
                                // serialized count for this region.
                                while !h.is_finished() {
                                    std::thread::yield_now();
                                }
                                if !spammer {
                                    sibling_serialized
                                        .fetch_add(h.stats().serialized, Ordering::Relaxed);
                                }
                                // Join *before* taking the lock: worker-side
                                // callbacks also push to `observed`, and
                                // holding the lock across a blocking join
                                // would deadlock the team.
                                let value = h.join();
                                observed.lock().unwrap().push(value);
                            }
                            1 => {
                                // Same lock-ordering care as the join arm.
                                let value = block_on(h);
                                observed.lock().unwrap().push(value);
                            }
                            2 => {
                                let fired = callbacks_fired.clone();
                                let observed = observed.clone();
                                h.on_complete(move |result| {
                                    fired.fetch_add(1, Ordering::SeqCst);
                                    observed.lock().unwrap().push(result.unwrap());
                                });
                            }
                            _ => drop(h),
                        }
                    }
                });
            }
        });
        // Every client thread has returned; joins and drops are quiescent
        // by construction, and detached callbacks fire before `Drop` of the
        // runtime — force that now, then read the totals.
        drop(rt);

        let want: HashSet<u64> = (0..clients as u64)
            .flat_map(|c| (0..regions_per_client as u64).map(move |r| c * 10_000 + r))
            .collect();
        let ran = ledger.lock().unwrap().clone();
        prop_assert_eq!(ran.len(), want.len(), "a region ran twice or never");
        prop_assert_eq!(&ran.iter().copied().collect::<HashSet<u64>>(), &want);

        // Observed completions: every non-dropped region exactly once, with
        // the right token (join/future/callback all deliver the result).
        let observed = Arc::try_unwrap(observed)
            .expect("all observers done")
            .into_inner()
            .unwrap();
        let want_observed: HashSet<u64> = want
            .iter()
            .copied()
            .filter(|t| (t % 10_000) % 4 != 3)
            .collect();
        prop_assert_eq!(
            observed.len(),
            want_observed.len(),
            "a completion was lost or double-fired"
        );
        prop_assert_eq!(&observed.into_iter().collect::<HashSet<u64>>(), &want_observed);

        // Each on_complete callback fired exactly once.
        let want_callbacks = want.iter().filter(|t| (*t % 10_000) % 4 == 2).count();
        prop_assert_eq!(callbacks_fired.load(Ordering::SeqCst), want_callbacks);

        // Budget isolation: no unbudgeted sibling was ever serialised.
        prop_assert_eq!(sibling_serialized.load(Ordering::Relaxed), 0u64);
    }
}
