//! The zero-allocation-spawn acceptance test: once the record pools are
//! warm, a deferred spawn with an inline-sized closure must perform **zero
//! heap allocations** — the whole point of the pooled single-block task
//! records.
//!
//! Methodology: the binary installs the counting allocator from
//! `bots-profile` globally, warms a team up, then times two batches of
//! regions that differ only in spawn count. Whatever constant number of
//! allocations a region costs (the boxed root record, mainly), the *extra*
//! spawns must contribute exactly zero.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_profile::alloc_calls;
use bots_runtime::Runtime;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// One region of `batch` empty spawns under a taskgroup.
fn region(rt: &Runtime, batch: u64) -> u64 {
    let acc = AtomicU64::new(0);
    rt.parallel(|s| {
        let acc = &acc;
        s.taskgroup(|s| {
            for _ in 0..batch {
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    acc.load(Ordering::Relaxed)
}

/// Minimum allocation-call count over several runs of `batch` spawns
/// (minimum, because an unrelated thread parking at an unlucky moment
/// cannot *remove* allocations — the floor is the region's true cost). An
/// unmeasured settle run first lets in-flight cross-thread record reclaim
/// drain home, so a worker briefly starved by steal traffic does not carve
/// a fresh slab chunk inside the measurement.
fn min_alloc_delta(rt: &Runtime, batch: u64) -> u64 {
    assert_eq!(region(rt, batch), batch);
    (0..9)
        .map(|_| {
            let before = alloc_calls();
            assert_eq!(region(rt, batch), batch);
            alloc_calls() - before
        })
        .min()
        .unwrap()
}

#[test]
fn steady_state_spawn_allocates_nothing() {
    let rt = Runtime::with_threads(4);

    // Warm-up: grow the slabs, the deques and the injector once. The warm-up
    // batch is the *larger* of the two measured batches so no pool growth is
    // left to attribute to the measurement runs.
    for _ in 0..3 {
        region(&rt, 20_000);
    }

    let small = min_alloc_delta(&rt, 10_000);
    let large = min_alloc_delta(&rt, 20_000);

    // A region may cost a constant number of allocations (the boxed root
    // record); 10k extra spawns must cost zero more.
    assert_eq!(
        large,
        small,
        "10_000 extra steady-state spawns performed {} heap allocations",
        large as i64 - small as i64
    );
    // And that constant itself stays tiny — a handful of allocations for
    // region setup, nothing proportional to anything.
    assert!(
        small <= 8,
        "a warm region should cost a handful of allocations, not {small}"
    );
}
