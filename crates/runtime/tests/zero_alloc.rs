//! The zero-allocation-spawn acceptance test: once the record pools are
//! warm, a deferred spawn with an inline-sized closure must perform **zero
//! heap allocations** — the whole point of the pooled single-block task
//! records.
//!
//! Methodology: the binary installs the counting allocator from
//! `bots-profile` globally, warms a team up, then times two batches of
//! regions that differ only in spawn count. Whatever constant number of
//! allocations a region costs (the boxed root record, mainly), the *extra*
//! spawns must contribute exactly zero.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_profile::alloc_calls;
use bots_runtime::Runtime;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// One region of `batch` empty spawns under a taskgroup.
fn region(rt: &Runtime, batch: u64) -> u64 {
    let acc = AtomicU64::new(0);
    rt.parallel(|s| {
        let acc = &acc;
        s.taskgroup(|s| {
            for _ in 0..batch {
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    acc.load(Ordering::Relaxed)
}

/// Minimum allocation-call count over several runs of `batch` spawns
/// (minimum, because an unrelated thread parking at an unlucky moment
/// cannot *remove* allocations — the floor is the region's true cost). An
/// unmeasured settle run first lets in-flight cross-thread record reclaim
/// drain home, so a worker briefly starved by steal traffic does not carve
/// a fresh slab chunk inside the measurement.
fn min_alloc_delta(rt: &Runtime, batch: u64) -> u64 {
    assert_eq!(region(rt, batch), batch);
    (0..9)
        .map(|_| {
            let before = alloc_calls();
            assert_eq!(region(rt, batch), batch);
            alloc_calls() - before
        })
        .min()
        .unwrap()
}

#[test]
fn steady_state_spawn_allocates_nothing() {
    let rt = Runtime::with_threads(4);

    // Warm-up: grow the slabs, the deques and the injector once. The warm-up
    // batch is the *larger* of the two measured batches so no pool growth is
    // left to attribute to the measurement runs.
    for _ in 0..3 {
        region(&rt, 20_000);
    }

    let small = min_alloc_delta(&rt, 10_000);
    let large = min_alloc_delta(&rt, 20_000);

    // A region may cost a constant number of allocations; 10k extra spawns
    // must cost zero more.
    assert_eq!(
        large,
        small,
        "10_000 extra steady-state spawns performed {} heap allocations",
        large as i64 - small as i64
    );
    // And that constant itself stays tiny — nothing proportional to
    // anything (with pooled region descriptors it is in fact zero, which
    // `steady_state_submit_allocates_nothing` asserts exactly).
    assert!(
        small <= 8,
        "a warm region should cost a handful of allocations, not {small}"
    );
}

/// The pooled-region acceptance test: once the descriptor pool is warm, a
/// whole `submit` + `join` round trip — descriptor lease, root record,
/// result slot, completion — performs **exactly zero** heap allocations.
///
/// The region body uses `spawn` + `taskwait` rather than `taskgroup`: a
/// taskgroup costs one `Arc` by design (that is a construct cost, not a
/// region-lifecycle cost), and the tasks bump a static so their closures
/// are `'static` without an owning allocation.
#[test]
fn steady_state_submit_allocates_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let rt = Runtime::with_threads(4);

    let roundtrip = |i: u64| {
        let before = TICKS.load(Ordering::Relaxed);
        let h = rt.submit(move |s| {
            for task in 0..64u64 {
                s.spawn(move |_| {
                    TICKS.fetch_add(i + task, Ordering::Relaxed);
                });
            }
            s.taskwait();
            i
        });
        assert_eq!(h.join(), i);
        assert_eq!(
            TICKS.load(Ordering::Relaxed) - before,
            (0..64).map(|t| i + t).sum::<u64>()
        );
    };

    // Warm the descriptor pool, the slabs and every thread-local the
    // submit/join path touches.
    for i in 0..32 {
        roundtrip(i);
    }

    // Minimum over several runs: an unlucky interleaving (a worker briefly
    // starved into growing a slab) cannot subtract allocations, so the
    // floor is the path's true cost — and it must be zero.
    let min = (0..9)
        .map(|rep| {
            let before = alloc_calls();
            for i in 0..16 {
                roundtrip(rep * 100 + i);
            }
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm submit+join round trip performed {min} heap allocations \
         across 16 regions"
    );

    // The recycling telemetry agrees: by now virtually every lease comes
    // from the pool free list.
    let stats = rt.stats();
    assert!(
        stats.regions_recycled > stats.regions_fresh,
        "descriptor recycling never took over: fresh={} recycled={}",
        stats.regions_fresh,
        stats.regions_recycled
    );
}
