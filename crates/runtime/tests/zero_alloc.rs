//! The zero-allocation-spawn acceptance test: once the record pools are
//! warm, a deferred spawn with an inline-sized closure must perform **zero
//! heap allocations** — the whole point of the pooled single-block task
//! records.
//!
//! Methodology: the binary installs the counting allocator from
//! `bots-profile` globally, warms a team up, then times two batches of
//! regions that differ only in spawn count. Whatever constant number of
//! allocations a region costs (the boxed root record, mainly), the *extra*
//! spawns must contribute exactly zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use bots_profile::alloc_calls;
use bots_runtime::Runtime;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// The allocation counter is process-global, and libtest runs the tests in
/// this binary on concurrent threads: another test's warm-up allocations
/// landing inside every measurement window would make an exact-zero
/// assertion fail spuriously. Each test holds this for its whole body.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// One region of `batch` empty spawns under a taskgroup.
fn region(rt: &Runtime, batch: u64) -> u64 {
    let acc = AtomicU64::new(0);
    rt.parallel(|s| {
        let acc = &acc;
        s.taskgroup(|s| {
            for _ in 0..batch {
                s.spawn(move |_| {
                    acc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    acc.load(Ordering::Relaxed)
}

/// Minimum allocation-call count over several runs of `batch` spawns
/// (minimum, because an unrelated thread parking at an unlucky moment
/// cannot *remove* allocations — the floor is the region's true cost). An
/// unmeasured settle run first lets in-flight cross-thread record reclaim
/// drain home, so a worker briefly starved by steal traffic does not carve
/// a fresh slab chunk inside the measurement.
fn min_alloc_delta(rt: &Runtime, batch: u64) -> u64 {
    assert_eq!(region(rt, batch), batch);
    (0..9)
        .map(|_| {
            let before = alloc_calls();
            assert_eq!(region(rt, batch), batch);
            alloc_calls() - before
        })
        .min()
        .unwrap()
}

#[test]
fn steady_state_spawn_allocates_nothing() {
    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    // Warm-up: grow the slabs, the deques and the injector once. The warm-up
    // batch is the *larger* of the two measured batches so no pool growth is
    // left to attribute to the measurement runs.
    for _ in 0..3 {
        region(&rt, 20_000);
    }

    let small = min_alloc_delta(&rt, 10_000);
    let large = min_alloc_delta(&rt, 20_000);

    // A region may cost a constant number of allocations; 10k extra spawns
    // must cost zero more.
    assert_eq!(
        large,
        small,
        "10_000 extra steady-state spawns performed {} heap allocations",
        large as i64 - small as i64
    );
    // And with pooled region descriptors *and* pooled taskgroup
    // descriptors, that constant is exactly zero: nothing on the
    // region-body path touches the allocator once the pools are warm.
    assert_eq!(
        small, 0,
        "a warm taskgroup region must cost zero allocations, not {small}"
    );
}

/// The whole-kernel acceptance test: a region body shaped like the
/// recursive BOTS kernels — nested `taskgroup`s returning results through
/// parent frames (the fib shape) plus `parallel_for` / chunked generator
/// loops (the sparselu/strassen shape) — performs **exactly zero** heap
/// allocations once the pools are warm. This is the end of the story PR 1
/// (pooled task records) and PR 3 (pooled region descriptors) started:
/// with pooled groups and borrow-based `parallel_for`, no construct a
/// kernel body uses allocates any more.
#[test]
fn steady_state_kernel_allocates_nothing() {
    fn fib_shape(s: &bots_runtime::Scope<'_>, n: u64, out: &AtomicU64) {
        if n < 2 {
            out.store(n, Ordering::Relaxed);
            return;
        }
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        s.taskgroup(|s| {
            s.spawn(|s| fib_shape(s, n - 1, &a));
            s.spawn(|s| fib_shape(s, n - 2, &b));
        });
        out.store(
            a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    // A static so one kernel closure serves every region (closures are
    // repeated across measurement runs, hence higher-ranked over the scope
    // lifetime); reset at entry, regions run one at a time here.
    static ACC: AtomicU64 = AtomicU64::new(0);

    // Dependency-chain objects: statics so one kernel closure (reused
    // across regions) can name them in `'scope`-bounded clauses. The dep
    // tasks have no barrier inside the kernel (that is the point), so
    // their side effects land in their own counter, asserted after the
    // region quiesces.
    static DEP_OBJS: [AtomicU64; 4] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    static DEP_TICKS: AtomicU64 = AtomicU64::new(0);

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);
    let kernel = |s: &bots_runtime::Scope<'_>| -> u64 {
        ACC.store(0, Ordering::Relaxed);
        // fib shape: one taskgroup per frame, results through locals.
        let fib = AtomicU64::new(0);
        fib_shape(s, 12, &fib);
        // generator shapes: one borrow-captured body, spawns per index.
        s.parallel_for(0..64, |i, s| {
            s.spawn(move |_| {
                ACC.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        s.parallel_for_chunked(0..64, 8, |i, _| {
            ACC.fetch_add(i as u64, Ordering::Relaxed);
        });
        // data-flow shape (the sparselu-deps inner loop): a write chain
        // fanning out to readers that funnel into the next link — warm
        // dep blocks, map entries and list nodes must all come from the
        // region's pools.
        for link in 0..16u64 {
            s.task(move |_| {
                DEP_TICKS.fetch_add(link, Ordering::Relaxed);
            })
            .after_read(&DEP_OBJS[1])
            .after_read(&DEP_OBJS[2])
            .after_write(&DEP_OBJS[0])
            .spawn();
            s.task(|_| {})
                .after_read(&DEP_OBJS[0])
                .after_write(&DEP_OBJS[1])
                .spawn();
            s.task(|_| {})
                .after_read(&DEP_OBJS[0])
                .after_write(&DEP_OBJS[2])
                .spawn();
        }
        fib.load(Ordering::Relaxed) + ACC.load(Ordering::Relaxed)
    };
    let expected = 144 + 2 * (0..64u64).sum::<u64>();
    let run = |rt: &Runtime| {
        let dep_before = DEP_TICKS.load(Ordering::Relaxed);
        assert_eq!(rt.parallel(kernel), expected);
        // Quiescence is the dep chain's only join; by now it has run.
        assert_eq!(
            DEP_TICKS.load(Ordering::Relaxed) - dep_before,
            (0..16u64).sum::<u64>()
        );
    };

    // Warm-up: grow the record slabs, the group, region and dep pools.
    for _ in 0..4 {
        run(&rt);
    }

    let min = (0..9)
        .map(|_| {
            let before = alloc_calls();
            run(&rt);
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm taskgroup+parallel_for kernel performed {min} heap allocations"
    );

    // The pool telemetry agrees: groups were leased over and over without
    // fresh allocations taking over, and the dependency machinery really
    // ran (and balanced) inside the zero-allocation window.
    let stats = rt.stats();
    assert!(
        stats.groups_recycled > stats.groups_fresh,
        "group recycling never took over: fresh={} recycled={}",
        stats.groups_fresh,
        stats.groups_recycled
    );
    assert!(stats.deps_registered > 0, "the dep shape must register");
    assert_eq!(
        stats.deps_deferred, stats.deps_released,
        "every deferred task released exactly once"
    );
    assert_eq!(stats.closure_spilled, 0, "no kernel closure may spill");
}

/// The dependency-path acceptance test: once a region descriptor's dep
/// pools are warm, registering clauses, holding tasks in the Deferred
/// state and releasing them on predecessor exit performs **exactly zero**
/// heap allocations — dep blocks, address-map entries and list nodes all
/// recycle, chain after chain, region after region.
#[test]
fn steady_state_deps_allocate_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    static CHAIN: AtomicU64 = AtomicU64::new(0);
    static SINKS: [AtomicU64; 8] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    // One region of `links` chain links, each fanning out to 8 readers
    // (diamonds): every task carries clauses, so the whole region runs
    // through the tracker.
    let region = |links: u64| {
        let before = TICKS.load(Ordering::Relaxed);
        rt.parallel(move |s| {
            for _ in 0..links {
                s.task(move |_| {
                    TICKS.fetch_add(1, Ordering::Relaxed);
                })
                .after_write(&CHAIN)
                .spawn();
                for sink in SINKS.iter() {
                    s.task(move |_| {
                        TICKS.fetch_add(1, Ordering::Relaxed);
                    })
                    .after_read(&CHAIN)
                    .after_write(sink)
                    .spawn();
                }
            }
        });
        assert_eq!(TICKS.load(Ordering::Relaxed) - before, links * 9);
    };

    // Warm-up with the *larger* batch: grow the record slabs and the dep
    // pools once, so no growth is left to blame on the measurement.
    for _ in 0..3 {
        region(2_000);
    }

    let min_for = |links: u64| {
        (0..9)
            .map(|_| {
                let before = alloc_calls();
                region(links);
                alloc_calls() - before
            })
            .min()
            .unwrap()
    };
    let small = min_for(1_000);
    let large = min_for(2_000);
    assert_eq!(
        large,
        small,
        "1_000 extra warm dependency diamonds performed {} heap allocations",
        large as i64 - small as i64
    );
    assert_eq!(
        small, 0,
        "a warm dependency-chain region must cost zero allocations, not {small}"
    );

    // The tracker really held tasks back and released every one of them.
    let stats = rt.stats();
    assert!(stats.deps_deferred > 0, "chains must defer");
    assert_eq!(stats.deps_deferred, stats.deps_released);
}

/// The replay acceptance test: once a token's graph is recorded (the cold
/// run may allocate — the recorder's vectors grow once), a **warm replayed
/// region** performs exactly zero heap allocations *and* zero tracker
/// traffic: arming the frozen graph, claiming slots, the preresolved
/// successor walks and handing the graph back to the cache all run on
/// pooled or frozen storage.
#[test]
fn steady_state_replay_allocates_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    static CHAIN: AtomicU64 = AtomicU64::new(0);
    static SINKS: [AtomicU64; 8] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    // The same dependency-diamond chain as the live test above, submitted
    // under a shape token (one token per batch size — the token promises a
    // shape, and the two batches have different ones).
    let region = |links: u64, token: u64| {
        let before = TICKS.load(Ordering::Relaxed);
        rt.parallel_replay(token, move |s| {
            for _ in 0..links {
                s.task(move |_| {
                    TICKS.fetch_add(1, Ordering::Relaxed);
                })
                .after_write(&CHAIN)
                .spawn();
                for sink in SINKS.iter() {
                    s.task(move |_| {
                        TICKS.fetch_add(1, Ordering::Relaxed);
                    })
                    .after_read(&CHAIN)
                    .after_write(sink)
                    .spawn();
                }
            }
        });
        assert_eq!(TICKS.load(Ordering::Relaxed) - before, links * 9);
    };

    // Cold runs record (and may allocate: recorder growth, the frozen
    // graph itself); warm-up replays settle the record slabs.
    region(1_000, 100);
    region(2_000, 101);
    for _ in 0..3 {
        region(1_000, 100);
        region(2_000, 101);
    }

    let tracker_before = rt.stats().deps_registered;
    let min_for = |links: u64, token: u64| {
        (0..9)
            .map(|_| {
                let before = alloc_calls();
                region(links, token);
                alloc_calls() - before
            })
            .min()
            .unwrap()
    };
    let small = min_for(1_000, 100);
    let large = min_for(2_000, 101);
    assert_eq!(
        large,
        small,
        "1_000 extra warm replayed diamonds performed {} heap allocations",
        large as i64 - small as i64
    );
    assert_eq!(
        small, 0,
        "a warm replayed region must cost zero allocations, not {small}"
    );

    // Zero tracker traffic: warm replays never touched the dep tracker.
    let stats = rt.stats();
    assert_eq!(
        stats.deps_registered, tracker_before,
        "warm replays must register nothing with the tracker"
    );
    assert!(stats.replays_hit >= 18, "the measurement runs all replayed");
    assert_eq!(stats.replays_diverged, 0);
}

/// The pooled-region acceptance test: once the descriptor pool is warm, a
/// whole `submit` + `join` round trip — descriptor lease, root record,
/// result slot, completion — performs **exactly zero** heap allocations.
///
/// The region body uses `spawn` + `taskwait` so the measurement isolates
/// the submit/join lifecycle itself (taskgroups, now pooled too, get their
/// own whole-kernel test above); the tasks bump a static so their closures
/// are `'static` without an owning allocation.
#[test]
fn steady_state_submit_allocates_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);
    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    let roundtrip = |i: u64| {
        let before = TICKS.load(Ordering::Relaxed);
        let h = rt.submit(move |s| {
            for task in 0..64u64 {
                s.spawn(move |_| {
                    TICKS.fetch_add(i + task, Ordering::Relaxed);
                });
            }
            s.taskwait();
            i
        });
        assert_eq!(h.join(), i);
        assert_eq!(
            TICKS.load(Ordering::Relaxed) - before,
            (0..64).map(|t| i + t).sum::<u64>()
        );
    };

    // Warm the descriptor pool, the slabs and every thread-local the
    // submit/join path touches.
    for i in 0..32 {
        roundtrip(i);
    }

    // Minimum over several runs: an unlucky interleaving (a worker briefly
    // starved into growing a slab) cannot subtract allocations, so the
    // floor is the path's true cost — and it must be zero.
    let min = (0..9)
        .map(|rep| {
            let before = alloc_calls();
            for i in 0..16 {
                roundtrip(rep * 100 + i);
            }
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm submit+join round trip performed {min} heap allocations \
         across 16 regions"
    );

    // The recycling telemetry agrees: by now virtually every lease comes
    // from the pool free list.
    let stats = rt.stats();
    assert!(
        stats.regions_recycled > stats.regions_fresh,
        "descriptor recycling never took over: fresh={} recycled={}",
        stats.regions_fresh,
        stats.regions_recycled
    );
}

/// The cancellation acceptance test: cancelling a deep in-flight region —
/// flag broadcast, suppressed spawns, skip-dispatch drain, typed
/// `Cancelled` outcome, descriptor back to the pool — performs **exactly
/// zero** heap allocations once the pools are warm. Robustness machinery
/// that allocates under overload is machinery that fails exactly when it
/// is needed; the cancel path must be as pool-clean as the spawn path.
#[test]
fn steady_state_cancel_allocates_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);

    /// An effectively unbounded storm: 2^50 tasks, stoppable only by the
    /// cancellation points at its spawn sites.
    fn storm(s: &bots_runtime::Scope<'_>, depth: u32) {
        if depth == 0 || s.is_cancelled() {
            return;
        }
        TICKS.fetch_add(1, Ordering::Relaxed);
        for _ in 0..2 {
            s.spawn(move |s| storm(s, depth - 1));
        }
    }

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    let cancelled_run = || {
        let before = TICKS.load(Ordering::Relaxed);
        let mut h = rt.submit(|s| {
            storm(s, 50);
            s.taskwait();
        });
        // Let the storm build real in-flight depth, then pull the plug and
        // ride the bounded join until the drain reaches quiescence.
        while TICKS.load(Ordering::Relaxed) - before < 3_000 {
            std::hint::spin_loop();
        }
        h.cancel();
        let outcome = loop {
            if let Some(o) = h.try_join(std::time::Duration::from_millis(50)) {
                break o;
            }
        };
        assert!(
            matches!(outcome, Err(bots_runtime::RegionError::Cancelled)),
            "the storm cannot quiesce except by cancellation"
        );
    };

    // Warm-up: grow the slabs and queues to storm scale, and touch every
    // thread-local the cancel/drain path uses.
    for _ in 0..4 {
        cancelled_run();
    }

    // Minimum over several runs, as everywhere in this binary: a storm
    // that races ahead of its warm-up sizing can grow a slab, but the
    // floor is the cancel path's true cost — and it must be zero.
    let min = (0..9)
        .map(|_| {
            let before = alloc_calls();
            cancelled_run();
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm cancel+drain round trip performed {min} heap allocations"
    );

    // The drain really skipped queued work and the pools really reclaimed:
    // cancelled descriptors keep recycling instead of leaking away.
    let stats = rt.stats();
    assert!(stats.skipped > 0, "cancelled storms must skip queued tasks");
    assert!(
        stats.regions_recycled > stats.regions_fresh,
        "cancelled regions must return their descriptors: fresh={} recycled={}",
        stats.regions_fresh,
        stats.regions_recycled
    );
}

/// The continuation acceptance test: once the continuation pool is warm,
/// a wait that actually **suspends** — parks its pooled cactus-stack
/// frame in the awaited record or group descriptor, frees the worker, and
/// is later resumed (possibly on another worker) — performs **exactly
/// zero** heap allocations. Suspension is the machinery that replaced the
/// tied-wait workarounds; if it allocated per wait, every deep kernel
/// would pay it on the hot path.
#[test]
fn steady_state_waits_allocate_nothing() {
    static TICKS: AtomicU64 = AtomicU64::new(0);

    /// A spawn-then-wait ladder: every rung defers one child and
    /// immediately waits on it, so the wait routinely finds the child
    /// pending and suspends. Alternating rungs seal with `taskwait` and
    /// `taskgroup` so both wait sites pay their way.
    fn ladder(s: &bots_runtime::Scope<'_>, depth: u32) {
        TICKS.fetch_add(1, Ordering::Relaxed);
        if depth == 0 {
            return;
        }
        if depth.is_multiple_of(2) {
            s.spawn(move |s| ladder(s, depth - 1));
            s.taskwait();
        } else {
            s.taskgroup(|s| {
                s.spawn(move |s| ladder(s, depth - 1));
            });
        }
    }

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    let run = |rt: &Runtime| {
        let before = TICKS.load(Ordering::Relaxed);
        rt.parallel(|s| {
            for _ in 0..8 {
                s.spawn(|s| ladder(s, 48));
            }
        });
        assert_eq!(TICKS.load(Ordering::Relaxed) - before, 8 * 49);
    };

    // Warm-up: grow the continuation pool to this shape's peak concurrent
    // suspension depth (each ladder can hold every rung suspended at
    // once), plus the slabs and group pools the rungs lease from.
    for _ in 0..8 {
        run(&rt);
    }

    let stats_before = rt.stats();
    let min = (0..9)
        .map(|_| {
            let before = alloc_calls();
            run(&rt);
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm deep-wait region performed {min} heap allocations"
    );

    // Telemetry agrees: the ladders really suspended (this is not a test
    // of waits that happened to find their children done), every suspend
    // resumed exactly once, and recycling served the leases.
    let d = rt.stats().since(&stats_before);
    assert!(d.cont_suspends > 0, "the ladders must actually suspend");
    assert_eq!(
        d.cont_suspends, d.cont_resumes,
        "every suspend must resume exactly once"
    );
    assert!(
        d.conts_recycled > d.conts_fresh,
        "continuation recycling never took over: fresh={} recycled={}",
        d.conts_fresh,
        d.conts_recycled
    );
}

/// The worksharing acceptance test: once the loop-descriptor pool is warm,
/// a worksharing `for_each` — one pooled descriptor leased per loop,
/// helper tasks from the record slabs, chunks claimed off the atomic
/// cursor — performs **exactly zero** heap allocations, and the loop
/// telemetry proves the descriptors recycle.
#[test]
fn steady_state_worksharing_allocates_nothing() {
    use bots_runtime::LoopMode;
    static WS_ACC: AtomicU64 = AtomicU64::new(0);

    let _serial = exclusive();
    let rt = Runtime::with_threads(4);

    let run = |rt: &Runtime| {
        WS_ACC.store(0, Ordering::Relaxed);
        rt.parallel(|s| {
            s.for_each(0..4096, |i, _| {
                WS_ACC.fetch_add(i as u64, Ordering::Relaxed);
            })
            .chunk(64)
            .mode(LoopMode::Worksharing)
            .run();
        });
        assert_eq!(WS_ACC.load(Ordering::Relaxed), (0..4096u64).sum::<u64>());
    };

    // Warm-up: grow the record slabs and lease first-time loop
    // descriptors. The region root (the loop's lessor) lands on a
    // different worker shard run to run, so loop enough times that every
    // shard has almost certainly held a lease at least once.
    for _ in 0..16 {
        run(&rt);
    }

    let stats_before = rt.stats();
    let min = (0..9)
        .map(|_| {
            let before = alloc_calls();
            run(&rt);
            alloc_calls() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min, 0,
        "a warm worksharing loop performed {min} heap allocations"
    );

    // Telemetry agrees: the 9 measured loops leased one descriptor each —
    // mostly recycled. Leases come off the root worker's shard while
    // releases land on the shard of whichever worker the generating frame
    // *resumed* on (the frame may migrate mid-drain), so a shard the
    // schedule starves can take a couple of fresh leases; the min-of-9
    // gate above is the hard zero-allocation acceptance. The loops also
    // claimed exactly 4096/64 chunks each and spilled no closure.
    let d = rt.stats().since(&stats_before);
    assert_eq!(d.loops_fresh + d.loops_recycled, 9);
    assert!(
        d.loops_recycled > d.loops_fresh,
        "warm loops must lease mostly recycled descriptors: fresh={} recycled={}",
        d.loops_fresh,
        d.loops_recycled
    );
    assert_eq!(d.ws_chunks, 9 * (4096 / 64));
    assert_eq!(d.closure_spilled, 0);
}
