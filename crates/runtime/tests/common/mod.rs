//! Helpers shared between integration-test binaries.

use std::sync::Arc;

/// A minimal single-future executor, standing in for a real async runtime:
/// parks the calling thread; the future's completion (here, a region's
/// quiescence transition) wakes it through the registered waker. Nothing
/// polls in a loop or spins.
pub fn block_on<F: std::future::Future>(fut: F) -> F::Output {
    use std::task::{Context, Poll, Wake, Waker};
    struct Unpark(std::thread::Thread);
    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            self.0.unpark()
        }
    }
    let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}
