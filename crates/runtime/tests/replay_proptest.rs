//! Property test for task-graph record-and-replay, run under the counting
//! allocator: randomly shaped dependency DAGs — chains, diamond layers and
//! random fan-ins — are submitted repeatedly under one shape token, and
//! every round (the recording round, every warm replay, an optionally
//! injected shape mutation and the re-recording after it) must uphold the
//! data-flow invariants:
//!
//! * **topological execution** — a node never observes an unfinished
//!   predecessor, recorded or replayed;
//! * **sequential semantics** — each node folds its predecessors' values
//!   into its own, so the final state is exactly the sequential
//!   simulation of the DAG, schedule and replay mode notwithstanding;
//! * **divergence falls back to live** — a mutated round (one extra node)
//!   diverges, still produces the mutated DAG's sequential result, and
//!   invalidates the graph so the next round re-records;
//! * **warm replays allocate nothing** — the minimum allocation delta
//!   over the warm rounds is exactly zero;
//! * **leak freedom** — dropping the runtime returns live heap bytes to
//!   baseline: frozen graphs and the cache flow back too.

use std::sync::atomic::{AtomicU64, Ordering};

use bots_profile::{alloc_calls, current_bytes};
use bots_runtime::{Runtime, MAX_TASK_DEPS};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: bots_profile::CountingAlloc = bots_profile::CountingAlloc;

/// Tiny deterministic generator for DAG shapes (the shim proptest
/// strategies are integer ranges; structure is derived from a seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Predecessors of node `i` for the given shape; edges point backwards,
/// so every generated graph is a DAG by construction.
fn preds(shape: u64, i: usize, rng: &mut Rng) -> Vec<usize> {
    if i == 0 {
        return Vec::new();
    }
    match shape {
        0 => vec![i - 1],
        1 => {
            let layer = i / 3;
            if layer == 0 {
                Vec::new()
            } else {
                ((layer - 1) * 3..layer * 3).filter(|&p| p < i).collect()
            }
        }
        _ => {
            let k = (rng.below(MAX_TASK_DEPS as u64 - 1) + 1).min(i as u64);
            let mut ps: Vec<usize> = (0..k).map(|_| rng.below(i as u64) as usize).collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        }
    }
}

/// The sequential simulation: node `i` is worth `i + 1` plus the sum of
/// its predecessors' values. Any schedule that respects the declared
/// edges — live, replayed, or post-divergence — must reproduce exactly
/// this.
fn simulate(graph: &[Vec<usize>]) -> Vec<u64> {
    let mut vals = vec![0u64; graph.len()];
    for (i, ps) in graph.iter().enumerate() {
        vals[i] = i as u64 + 1 + ps.iter().map(|&p| vals[p]).sum::<u64>();
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn replayed_dags_match_the_sequential_simulation(
        workers in 1usize..5,
        n in 2usize..20,
        shape in 0u64..3,
        seed in 1u64..10_000,
        rounds in 2u64..6,
        mutate in 0u64..2,
    ) {
        const TOKEN: u64 = 42;
        let mut rng = Rng(seed);
        let graph: Vec<Vec<usize>> = (0..n).map(|i| preds(shape, i, &mut rng)).collect();
        // The mutated shape: one extra node reading node 0 — the matched
        // prefix replays, the overrunning spawn diverges.
        let mut mutated = graph.clone();
        mutated.push(vec![0]);

        // One flag per node (including the mutation's extra node): the
        // depend-clause token, the done flag and the checksum cell in one.
        let flags: Vec<AtomicU64> = (0..=n).map(|_| AtomicU64::new(0)).collect();
        let violations = AtomicU64::new(0);

        // Warm process-level one-time allocations (thread bootstrap, lazy
        // synchronisation primitives, the failpoint registry when the
        // feature is compiled in) out of the leak window.
        drop(Runtime::with_threads(workers));
        let heap_before = current_bytes();
        {
            let rt = Runtime::with_threads(workers);
            // Expected values are precomputed per shape: `simulate`
            // allocates, and run_round's body sits inside the measured
            // zero-allocation windows.
            let graph_expected = simulate(&graph);
            let mutated_expected = simulate(&mutated);
            let run_round = |g: &[Vec<usize>], expected: &[u64]| {
                for f in &flags {
                    f.store(0, Ordering::Relaxed);
                }
                rt.parallel_replay(TOKEN, |s| {
                    for (i, ps) in g.iter().enumerate() {
                        let (flags, violations) = (&flags, &violations);
                        let mut b = s.task(move |_| {
                            let mut v = i as u64 + 1;
                            for &p in ps {
                                let pv = flags[p].load(Ordering::Acquire);
                                if pv == 0 {
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                                v += pv;
                            }
                            flags[i].store(v, Ordering::Release);
                        });
                        for &p in ps {
                            b = b.after_read(&flags[p]);
                        }
                        b.after_write(&flags[i]).spawn();
                    }
                });
                for (i, e) in expected.iter().enumerate() {
                    assert_eq!(
                        flags[i].load(Ordering::Relaxed),
                        *e,
                        "node {i} broke the sequential simulation"
                    );
                }
            };

            // Round 0 records; two unmeasured settle replays let in-flight
            // cross-thread record reclaim drain home (as in the zero_alloc
            // binary); then the minimum allocation delta over the measured
            // warm rounds is the replay path's true cost.
            run_round(&graph, &graph_expected);
            run_round(&graph, &graph_expected);
            run_round(&graph, &graph_expected);
            let warm_min = (0..rounds)
                .map(|_| {
                    let before = alloc_calls();
                    run_round(&graph, &graph_expected);
                    alloc_calls() - before
                })
                .min()
                .unwrap();
            prop_assert_eq!(
                warm_min, 0,
                "a warm replayed DAG round performed heap allocations"
            );
            let s = rt.stats();
            prop_assert_eq!(s.replays_recorded, 1);
            prop_assert_eq!(s.replays_hit, rounds + 2);
            prop_assert_eq!(s.replays_diverged, 0);

            if mutate == 1 {
                // The mutated round diverges but still produces the
                // mutated DAG's sequential result; the stale graph is
                // invalidated, so the next round re-records and the one
                // after replays the *new* shape.
                run_round(&mutated, &mutated_expected);
                prop_assert_eq!(rt.stats().replays_diverged, 1);
                run_round(&mutated, &mutated_expected);
                run_round(&mutated, &mutated_expected);
                let s = rt.stats();
                prop_assert_eq!(s.replays_recorded, 2, "divergence must re-record");
                prop_assert_eq!(s.replays_hit, rounds + 3);
            }

            prop_assert_eq!(violations.load(Ordering::Relaxed), 0,
                "a node ran before one of its declared predecessors");
            // Runtime drops here: graphs, cache, pools all freed.
        }
        let heap_after = current_bytes();
        let leaked = heap_after.saturating_sub(heap_before);
        prop_assert!(
            leaked < 512,
            "live heap grew by {leaked} bytes across a full replay lifecycle"
        );
    }
}
