//! The loop-surface contract: `for_each` runs every iteration **exactly
//! once** — in both [`LoopMode`]s, at any chunk size and team width, and
//! under injected panics and mid-loop cancellation (where "exactly once"
//! relaxes to "at most once, and never lost silently": a skipped tail is
//! the *documented* effect of the fault, a doubled iteration is a claim
//! protocol bug).
//!
//! The worksharing claim protocol is the interesting case: chunks are
//! handed out by an unconditional `fetch_add` on a shared cursor, so
//! overshoot past `end` is normal and must map to "no chunk", never to a
//! replayed index. The property test drives that edge across grain sizes
//! including 1 (maximal cursor contention) and grains larger than the
//! whole space.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use bots_runtime::{LoopMode, RegionError, Runtime, RuntimeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_iteration_runs_exactly_once(
        workers in 1usize..5,
        len in 0usize..240,
        chunk in 0usize..9,      // 0 = let the grain default
        ws in 0u8..2,
        fault in 0u8..3,         // 0 = none, 1 = panic, 2 = cancel_region
        fault_at in 0usize..240,
    ) {
        // Keep injected panics one-line (the default hook symbolises a
        // backtrace per panic, which swamps a 10-case property run).
        static QUIET_PANICS: std::sync::Once = std::sync::Once::new();
        QUIET_PANICS.call_once(|| {
            std::panic::set_hook(Box::new(|info| eprintln!("panic: {info}")));
        });

        let mode = if ws == 1 { LoopMode::Worksharing } else { LoopMode::Tasks };
        let fault = if len == 0 { 0 } else { fault };
        let fault_at = if len == 0 { 0 } else { fault_at % len };
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..len).map(|_| AtomicU8::new(0)).collect());

        let rt = Runtime::new(RuntimeConfig::new(workers));
        let handle = {
            let counts = Arc::clone(&counts);
            rt.submit(move |s| {
                let builder = s.for_each(0..len, move |i, s| {
                    let prev = counts[i].fetch_add(1, Ordering::Relaxed);
                    assert_eq!(prev, 0, "iteration {i} ran twice");
                    match fault {
                        1 if i == fault_at => panic!("injected iteration panic"),
                        2 if i == fault_at => s.cancel_region(),
                        _ => {}
                    }
                });
                let builder = if chunk == 0 { builder } else { builder.chunk(chunk) };
                builder.mode(mode).run();
            })
        };
        let out = handle.outcome();

        // The in-body assert catches a double execution while it happens;
        // this re-checks from the outside in case the doubled slot was the
        // faulted iteration itself (whose own panic would mask the assert).
        for (i, c) in counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            prop_assert!(n <= 1, "iteration {i} ran {n} times (mode {mode:?}, chunk {chunk})");
        }

        match fault {
            0 => {
                prop_assert!(out.is_ok(), "fault-free loop failed: {out:?}");
                for (i, c) in counts.iter().enumerate() {
                    prop_assert_eq!(
                        c.load(Ordering::Relaxed), 1,
                        "iteration {} lost (mode {:?}, chunk {})", i, mode, chunk
                    );
                }
            }
            1 => {
                prop_assert!(
                    matches!(out, Err(RegionError::Panicked(_))),
                    "injected panic must reach the joiner, got {out:?}"
                );
                prop_assert_eq!(counts[fault_at].load(Ordering::Relaxed), 1);
            }
            _ => {
                // Cancellation is cooperative: the region either finished
                // storing its (unit) result or reports Cancelled — but a
                // Panicked outcome here means an iteration doubled.
                prop_assert!(
                    !matches!(out, Err(RegionError::Panicked(_))),
                    "cancelled loop must not panic: {out:?}"
                );
                prop_assert_eq!(counts[fault_at].load(Ordering::Relaxed), 1);
            }
        }
    }
}

/// Counts how many iterations of `0..len` execute under the given builder
/// configuration and returns the runtime's stats delta for the loop.
fn run_ws_loop(rt: &Runtime, len: usize, chunk: Option<usize>) -> bots_runtime::RuntimeStats {
    let before = rt.stats();
    let hits = AtomicUsize::new(0);
    rt.parallel(|s| {
        let builder = s.for_each(0..len, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        let builder = match chunk {
            Some(c) => builder.chunk(c),
            None => builder,
        };
        builder.mode(LoopMode::Worksharing).run();
    });
    assert_eq!(hits.load(Ordering::Relaxed), len);
    rt.stats().since(&before)
}

/// One worksharing loop produces exactly `ceil(len / grain)` successful
/// claims — the cursor's overshoot never yields an extra chunk — and at
/// most `min(workers, chunks)` participants ever join in.
#[test]
fn claim_counts_are_exact_and_participants_bounded() {
    let rt = Runtime::new(RuntimeConfig::new(4));
    let d = run_ws_loop(&rt, 100, Some(7));
    assert_eq!(d.ws_chunks, 100usize.div_ceil(7) as u64);
    assert!(d.ws_participations >= 1);
    assert!(d.ws_participations <= 4, "more participants than workers");

    // A 3-chunk space on an 8-wide team: at most 3 participants.
    let rt = Runtime::new(RuntimeConfig::new(8));
    let d = run_ws_loop(&rt, 3, Some(1));
    assert_eq!(d.ws_chunks, 3);
    assert!(
        d.ws_participations <= 3,
        "helpers must be bounded by chunks"
    );
}

/// The grain default is `len / (4 × workers)` (at least 1), and the
/// config knob / builder chunk override it in that order.
#[test]
fn grain_resolution_defaults_config_then_chunk() {
    // Default: len 160 on 2 workers → grain 20 → 8 chunks.
    let rt = Runtime::new(RuntimeConfig::new(2));
    assert_eq!(run_ws_loop(&rt, 160, None).ws_chunks, 8);

    // Config knob: grain 5 → 32 chunks.
    let rt = Runtime::new(RuntimeConfig::new(2).with_loop_grain(5));
    assert_eq!(run_ws_loop(&rt, 160, None).ws_chunks, 32);

    // Explicit .chunk(40) beats the config knob.
    let rt = Runtime::new(RuntimeConfig::new(2).with_loop_grain(5));
    assert_eq!(run_ws_loop(&rt, 160, Some(40)).ws_chunks, 4);
}

/// Degenerate spaces: empty and single-iteration loops work in both modes,
/// and an empty worksharing loop never leases a descriptor.
#[test]
fn empty_and_tiny_loops() {
    let rt = Runtime::new(RuntimeConfig::new(2));
    for mode in [LoopMode::Tasks, LoopMode::Worksharing] {
        for len in [0usize, 1, 2] {
            let hits = AtomicUsize::new(0);
            rt.parallel(|s| {
                s.for_each(0..len, |_, _| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .mode(mode)
                .run();
            });
            assert_eq!(hits.load(Ordering::Relaxed), len, "mode {mode:?}");
        }
    }
    let before = rt.stats();
    rt.parallel(|s| {
        s.for_each(0..0, |_, _| {})
            .mode(LoopMode::Worksharing)
            .run()
    });
    let d = rt.stats().since(&before);
    assert_eq!(d.loops_fresh + d.loops_recycled, 0);
}

/// Warm loops lease recycled descriptors. The lease comes off the shard
/// of whichever worker runs the region root; the release lands on the
/// shard of whichever worker the generating frame *resumed* on after the
/// drain (the frame may migrate mid-wait), so a shard can miss its own
/// descriptor and take an extra fresh lease. The standing invariant is
/// that recycling dominates: fresh leases track shard misses, not loop
/// volume.
#[test]
fn loop_descriptors_recycle() {
    let rt = Runtime::new(RuntimeConfig::new(2));
    let before = rt.stats();
    for _ in 0..20 {
        run_ws_loop(&rt, 64, Some(8));
    }
    let d = rt.stats().since(&before);
    assert_eq!(d.loops_fresh + d.loops_recycled, 20);
    assert!(
        d.loops_recycled > d.loops_fresh,
        "recycling never took over: fresh={} recycled={}",
        d.loops_fresh,
        d.loops_recycled
    );
}

/// `parallel_for` / `parallel_for_chunked` are now wrappers over the
/// builder and still behave identically to `.mode(Tasks)`.
#[test]
fn legacy_wrappers_still_work() {
    let rt = Runtime::new(RuntimeConfig::new(3));
    let sum = AtomicUsize::new(0);
    rt.parallel(|s| {
        s.parallel_for(0..100, |i, _| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        s.parallel_for_chunked(100..200, 16, |i, _| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
    });
    assert_eq!(sum.load(Ordering::Relaxed), (0..200).sum::<usize>());
}

/// Worksharing loops compose with deadlines: a loop that overruns its
/// region's deadline is cut short cooperatively at claim boundaries, and
/// the joiner sees a typed outcome, not a hang.
#[test]
fn worksharing_observes_deadlines() {
    let rt = Runtime::new(RuntimeConfig::new(2));
    let h = rt.submit_with_deadline(std::time::Duration::from_millis(2), |s| {
        s.for_each(0..1_000_000, |_, _| {
            std::thread::sleep(std::time::Duration::from_micros(50));
        })
        .chunk(1)
        .mode(LoopMode::Worksharing)
        .run();
    });
    let out = h.outcome();
    assert!(
        matches!(out, Err(RegionError::Cancelled)) || out.is_ok(),
        "deadline either cancels the loop or it finished in time"
    );
}
