//! Pooled worksharing-loop descriptors: team-wide chunk dispatch without
//! one task record per chunk.
//!
//! A generator-task loop (`parallel_for`'s `Tasks` mode) pays a pooled
//! [`TaskRecord`](crate::task::TaskRecord) per chunk — cheap, but on
//! fine-grained loops the per-chunk spawn/dispatch protocol dominates the
//! body. The worksharing mode (Maroñas et al., *Worksharing Tasks*)
//! publishes **one** descriptor for the whole iteration space and lets the
//! participating workers *claim* grain-sized strides off a shared atomic
//! cursor: the per-chunk cost collapses to one `fetch_add`, and the number
//! of task records is bounded by the team size (one helper task per
//! worker), not by the chunk count.
//!
//! ## Claim protocol
//!
//! [`WsLoop::claim`] is one unconditional `fetch_add(grain)` on the
//! cursor; a claimer whose start lands at or past `end` observes the loop
//! as drained and stops. The cursor may overshoot `end` by at most
//! `participants × grain` — bounded, because every participant stops at
//! its first failed claim — and overshoot is harmless: indices past `end`
//! are never executed. A claimed `[lo, hi)` chunk is executed by exactly
//! one participant (fetch_add hands out disjoint strides), which is the
//! exactly-once property the loop proptest pins down.
//!
//! All descriptor accesses are `Relaxed`: the descriptor and the borrowed
//! loop body are published to helpers through the deque push of the
//! participant tasks (a release/acquire edge the work-stealing protocol
//! already provides), and the owner's closing `taskwait` orders every
//! helper's last access before the lease is returned.
//!
//! ## Lifetime protocol
//!
//! The lease is owned by the **generating frame** ([`Scope::for_each`]
//! with `LoopMode::Worksharing`): it arms the descriptor, spawns the
//! helper tasks (which hold raw pointers, never counted references),
//! participates itself, and returns the lease only after its `taskwait`
//! has observed every helper's completion — on unwind too, via a guard
//! that drains the helpers before the frame's locals (which the body
//! borrows) are popped. This is the [`GroupPool`](crate::group::GroupPool)
//! protocol verbatim: the waiter is the owner, and an ex-participant never
//! looks back.
//!
//! [`Scope::for_each`]: crate::Scope::for_each

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::local::CacheAligned;

/// The signature every erased loop body is invoked through: `(body, lo,
/// hi, scope)` runs iterations `lo..hi` of the borrowed body against the
/// participant's scope. Monomorphised per body type in `scope.rs` and
/// stored type-erased in the descriptor.
pub(crate) type ChunkInvoke = unsafe fn(*const (), usize, usize, *const ());

/// One worksharing loop: the whole iteration space as a single shared
/// descriptor, claimed in grain-sized strides by the participating
/// workers.
pub(crate) struct WsLoop {
    /// Pool free-list link. Only touched while the descriptor is free (the
    /// owner has drained its helpers and returned the lease), so it cannot
    /// race with live-loop use.
    next: AtomicPtr<WsLoop>,
    /// Next unclaimed iteration index. The only contended word; lives in
    /// its own descriptor so claims from different loops never false-share.
    cursor: AtomicUsize,
    /// One past the last iteration index.
    end: AtomicUsize,
    /// Stride handed out per claim. Invariant: non-zero while armed.
    grain: AtomicUsize,
    /// The borrowed loop body, type-erased (`*const F`). Valid for the
    /// whole arm→drain window: the owner's frame keeps `F` alive until
    /// every participant has finished.
    body: AtomicPtr<()>,
    /// The monomorphised trampoline for `body`, stored as a bare pointer
    /// (`ChunkInvoke` transmuted) so the descriptor stays type-free.
    invoke: AtomicPtr<()>,
}

impl WsLoop {
    fn new() -> WsLoop {
        WsLoop {
            next: AtomicPtr::new(std::ptr::null_mut()),
            cursor: AtomicUsize::new(0),
            end: AtomicUsize::new(0),
            grain: AtomicUsize::new(1),
            body: AtomicPtr::new(std::ptr::null_mut()),
            invoke: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Arms a just-leased descriptor for one loop (exclusive: the pool
    /// only hands out drained descriptors, and the owner arms before any
    /// helper is spawned — the helpers' deque push is the publication
    /// edge, so plain `Relaxed` stores suffice here).
    pub(crate) fn arm(
        &self,
        start: usize,
        end: usize,
        grain: usize,
        body: *const (),
        invoke: ChunkInvoke,
    ) {
        debug_assert!(grain > 0, "worksharing grain must be positive");
        self.cursor.store(start, Ordering::Relaxed);
        self.end.store(end, Ordering::Relaxed);
        self.grain.store(grain, Ordering::Relaxed);
        self.body.store(body.cast_mut(), Ordering::Relaxed);
        // A fn pointer is thin; round-trip through `*mut ()` for storage.
        self.invoke.store(invoke as *mut (), Ordering::Relaxed);
    }

    /// Claims the next grain-sized chunk, or `None` once the space is
    /// drained. One unconditional `fetch_add` — see the module docs for
    /// the (bounded, harmless) overshoot analysis.
    #[inline]
    pub(crate) fn claim(&self) -> Option<(usize, usize)> {
        // Fault injection at the claim edge: a delay/yield here perturbs
        // which participant wins which stride.
        crate::bots_failpoint!("loop_claim");
        let grain = self.grain.load(Ordering::Relaxed);
        let end = self.end.load(Ordering::Relaxed);
        let lo = self.cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= end {
            None
        } else {
            Some((lo, (lo + grain).min(end)))
        }
    }

    /// Runs one claimed chunk through the armed trampoline. Caller (a
    /// participant) guarantees the descriptor is still armed — i.e. the
    /// owner's frame, which keeps the body alive, has not been left.
    #[inline]
    pub(crate) unsafe fn run_chunk(&self, lo: usize, hi: usize, scope: *const ()) {
        let body = self.body.load(Ordering::Relaxed).cast_const();
        let invoke = self.invoke.load(Ordering::Relaxed);
        debug_assert!(!invoke.is_null(), "chunk run on an unarmed loop descriptor");
        let invoke: ChunkInvoke = std::mem::transmute(invoke);
        invoke(body, lo, hi, scope);
    }
}

/// The loop-descriptor free list: one singly-linked shard per worker,
/// **owner-only** — every push and pop targets the *calling* worker's own
/// shard, so each shard is single-threaded and pops are plain load+store.
/// Since the generating frame runs on a pooled continuation, its closing
/// drain may suspend and resume on a different worker; the release then
/// lands on *that* worker's shard (the slot is re-resolved at drop time),
/// so descriptors migrate between shards but no shard is ever touched by
/// two threads. Mirrors [`GroupPool`](crate::group::GroupPool).
pub(crate) struct LoopPool {
    shards: Box<[CacheAligned<AtomicPtr<WsLoop>>]>,
    /// Every descriptor ever allocated (cold path; freed on drop).
    all: Mutex<Vec<NonNull<WsLoop>>>,
}

// Safety: each shard is only ever touched by its own worker thread (see
// the owner-only contract on `lease`/`release`); `all` is mutex-guarded;
// `WsLoop` is all atomics. The teardown free in `Drop` happens-after
// every worker has been joined.
unsafe impl Send for LoopPool {}
unsafe impl Sync for LoopPool {}

impl LoopPool {
    pub(crate) fn new(workers: usize) -> LoopPool {
        LoopPool {
            shards: (0..workers.max(1))
                .map(|_| CacheAligned::default())
                .collect(),
            all: Mutex::new(Vec::new()),
        }
    }

    /// Leases a descriptor. Returns the descriptor and whether it had to
    /// be freshly allocated (`true`) or came recycled (`false`).
    ///
    /// Owner-only: `slot` must be the calling worker's own index (both
    /// ends of a shard run on one thread, so the pop is a plain
    /// load + store, no RMW).
    pub(crate) fn lease(&self, slot: usize) -> (NonNull<WsLoop>, bool) {
        let shard = &self.shards[slot % self.shards.len()].0;
        if let Some(head) = NonNull::new(shard.load(Ordering::Relaxed)) {
            let next = unsafe { head.as_ref() }.next.load(Ordering::Relaxed);
            shard.store(next, Ordering::Relaxed);
            return (head, false);
        }
        let fresh = NonNull::from(Box::leak(Box::new(WsLoop::new())));
        self.all
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(fresh);
        (fresh, true)
    }

    /// Returns a drained descriptor to the free list. `slot` must be the
    /// *current* worker's index — not necessarily the leasing worker's,
    /// because the generating frame's drain wait can migrate it — and the
    /// caller must have drained every participant first.
    pub(crate) fn release(&self, wsl: NonNull<WsLoop>, slot: usize) {
        let shard = &self.shards[slot % self.shards.len()].0;
        let head = shard.load(Ordering::Relaxed);
        unsafe { wsl.as_ref().next.store(head, Ordering::Relaxed) };
        shard.store(wsl.as_ptr(), Ordering::Relaxed);
    }

    /// Free descriptors currently pooled (diagnostics/tests only; racy).
    #[cfg(test)]
    pub(crate) fn free_len(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            let mut cur = shard.0.load(Ordering::Acquire);
            while let Some(l) = NonNull::new(cur) {
                n += 1;
                cur = unsafe { l.as_ref() }.next.load(Ordering::Relaxed);
            }
        }
        n
    }
}

impl Drop for LoopPool {
    fn drop(&mut self) {
        let all = std::mem::take(&mut *self.all.lock().unwrap_or_else(|e| e.into_inner()));
        for wsl in all {
            drop(unsafe { Box::from_raw(wsl.as_ptr()) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    unsafe fn count_invoke(body: *const (), lo: usize, hi: usize, _scope: *const ()) {
        let sum = &*(body as *const AtomicUsize);
        for i in lo..hi {
            sum.fetch_add(i, Ordering::Relaxed);
        }
    }

    #[test]
    fn claims_cover_the_space_exactly_once() {
        let l = WsLoop::new();
        let sum = AtomicUsize::new(0);
        l.arm(
            0,
            100,
            7,
            &sum as *const AtomicUsize as *const (),
            count_invoke,
        );
        let mut chunks = 0;
        while let Some((lo, hi)) = l.claim() {
            assert!(lo < hi && hi <= 100);
            unsafe { l.run_chunk(lo, hi, std::ptr::null()) };
            chunks += 1;
        }
        assert_eq!(chunks, 100usize.div_ceil(7));
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<usize>());
        assert!(l.claim().is_none(), "a drained loop stays drained");
    }

    #[test]
    fn empty_space_yields_no_chunks() {
        let l = WsLoop::new();
        let sum = AtomicUsize::new(0);
        l.arm(
            5,
            5,
            4,
            &sum as *const AtomicUsize as *const (),
            count_invoke,
        );
        assert!(l.claim().is_none());
        assert_eq!(sum.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lease_recycles_released_descriptors() {
        let pool = LoopPool::new(2);
        let (a, fresh) = pool.lease(0);
        assert!(fresh, "empty pool allocates");
        let (b, fresh) = pool.lease(0);
        assert!(fresh);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.release(a, 0);
        let (a2, fresh) = pool.lease(0);
        assert!(!fresh, "released descriptor must be recycled");
        assert_eq!(a2.as_ptr(), a.as_ptr());
        pool.release(a2, 0);
        pool.release(b, 1);
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn shards_do_not_alias_across_workers() {
        let pool = LoopPool::new(2);
        let (a, _) = pool.lease(0);
        pool.release(a, 0);
        // Worker 1's shard is empty: it allocates fresh rather than raid
        // worker 0's shard (per-worker population stays worker-local).
        let (b, fresh) = pool.lease(1);
        assert!(fresh);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.release(b, 1);
    }
}
