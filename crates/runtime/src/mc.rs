//! Model-checking surface: thin, documented wrappers re-exposing the
//! runtime's internal lock-free protocol types so `crates/modelcheck` can
//! drive them under a deterministic virtual scheduler.
//!
//! Only compiled with `--features modelcheck` (which implies
//! `failpoints`, so every protocol's `bots_failpoint!` sites are live and
//! the harness can install a [schedule hook](crate::failpoint::set_schedule_hook)
//! to own each interleaving decision). `crates/modelcheck` is excluded
//! from the workspace default-members precisely so this feature — and the
//! failpoint instrumentation it implies — can never unify into a tier-1
//! or benchmarked build.
//!
//! The wrappers are handles, not abstractions: each method is a direct
//! call into the same code path production uses, so an interleaving the
//! explorer enumerates here is an interleaving the real runtime can
//! execute. Task records are surfaced as opaque [`Rec`] handles (the
//! record's address) so scenarios can assert set-equality invariants —
//! no record lost, none duplicated — without touching record internals.

use std::mem::MaybeUninit;
use std::ptr::NonNull;

use crate::cont::Continuation;
use crate::deps::{DepAccess, DepBlock, DepClause, DepTracker};
use crate::group::{Group, GroupPool};
use crate::injector::Injector as RawInjector;
use crate::slab::{AllocSource, RecordSlab};
use crate::task::{TaskAttrs, TaskRecord, HOME_BOXED};

/// Opaque handle to a heap-boxed [`TaskRecord`]: the record's address,
/// stable for the record's whole life, usable as a set-membership key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rec(usize);

impl Rec {
    fn ptr(self) -> NonNull<TaskRecord> {
        NonNull::new(self.0 as *mut TaskRecord).expect("null Rec handle")
    }

    /// The record's address, for trace labels.
    pub fn addr(self) -> usize {
        self.0
    }
}

/// Boxes and initialises one task record (refcount 1, no parent, no
/// body). Free it with [`free_record`] exactly once, after it has left
/// every queue.
pub fn new_record() -> Rec {
    let slot = NonNull::new(Box::into_raw(Box::new(MaybeUninit::<TaskRecord>::uninit())))
        .unwrap()
        .cast::<TaskRecord>();
    unsafe {
        TaskRecord::init(
            slot,
            None,
            None,
            std::ptr::null(),
            HOME_BOXED,
            TaskAttrs::tied(),
        )
    };
    Rec(slot.as_ptr() as usize)
}

/// Releases the final reference and frees a record made by
/// [`new_record`]. Panics if anything else still holds a reference.
pub fn free_record(rec: Rec) {
    let rec = rec.ptr();
    assert_eq!(unsafe { rec.as_ref() }.release_ref(), 1);
    unsafe {
        drop(Box::from_raw(
            rec.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
        ))
    };
}

/// The sharded lock-free injector (swap-drain protocol). See
/// `crate::injector` for the protocol description.
pub struct Injector(RawInjector);

impl Injector {
    /// One shard per worker.
    pub fn new(workers: usize) -> Injector {
        Injector(RawInjector::new(workers))
    }

    /// Pushes a record onto the shard for `slot`. Transfers the record's
    /// queue handle to the injector.
    pub fn push(&self, rec: Rec, slot: usize) {
        self.0.push(rec.ptr(), slot);
    }

    /// Pops the oldest root from the first non-empty shard from `start`.
    pub fn pop(&self, start: usize) -> Option<Rec> {
        self.0.pop(start).map(|p| Rec(p.as_ptr() as usize))
    }

    /// Lock-free idle probe.
    pub fn is_probably_empty(&self) -> bool {
        self.0.is_probably_empty()
    }
}

/// A worker's record slab (owner free list + cross-thread Treiber reclaim
/// stack). See `crate::slab`.
pub struct Slab(RecordSlab);

impl Slab {
    /// A slab carving `chunk_records` records per fresh chunk.
    pub fn new(chunk_records: usize) -> Slab {
        Slab(RecordSlab::new(chunk_records))
    }

    /// Allocates and initialises one record; `true` means it came
    /// recycled (local list or reclaim stack) rather than fresh.
    ///
    /// # Safety
    /// Owner thread only — in a scenario, the one virtual thread playing
    /// the slab owner.
    pub unsafe fn alloc_init(&self) -> (Rec, bool) {
        let (rec, src) = self.0.alloc();
        TaskRecord::init(
            rec,
            None,
            None,
            std::ptr::null(),
            HOME_BOXED,
            TaskAttrs::tied(),
        );
        (Rec(rec.as_ptr() as usize), src == AllocSource::Recycled)
    }

    /// Releases the record's reference and returns it to the owner's
    /// local free list.
    ///
    /// # Safety
    /// Owner thread only; `rec` must have come from this slab.
    pub unsafe fn free_local(&self, rec: Rec) {
        assert_eq!(rec.ptr().as_ref().release_ref(), 1);
        self.0.free_local(rec.ptr());
    }

    /// Releases the record's reference and pushes it onto the reclaim
    /// stack (any thread; the cross-thread half of the protocol).
    pub fn free_remote(&self, rec: Rec) {
        assert_eq!(unsafe { rec.ptr().as_ref() }.release_ref(), 1);
        self.0.free_remote(rec.ptr());
    }
}

/// A dependency clause for [`Deps::register`].
#[derive(Debug, Clone, Copy)]
pub struct Clause(DepClause);

/// `depend(in: addr)`.
pub fn dep_read(addr: usize) -> Clause {
    Clause(DepClause {
        addr,
        access: DepAccess::Read,
    })
}

/// `depend(out: addr)` / `depend(inout: addr)`.
pub fn dep_write(addr: usize) -> Clause {
    Clause(DepClause {
        addr,
        access: DepAccess::Write,
    })
}

/// The per-region dependency tracker (CLOSED-swap release protocol). See
/// `crate::deps`.
pub struct Deps(DepTracker);

impl Default for Deps {
    fn default() -> Self {
        Self::new()
    }
}

impl Deps {
    /// An empty tracker.
    pub fn new() -> Deps {
        Deps(DepTracker::new())
    }

    /// Registers `rec`'s clauses atomically; `true` means the task is
    /// immediately ready (no unretired predecessor), `false` means it is
    /// Deferred and will be handed to some predecessor's retire sink.
    ///
    /// Careful: registration holds the tracker's map mutex across the
    /// `dep_edge_cas` yield point — scenarios must not run two virtual
    /// registrants concurrently or the harness deadlocks on a lock the
    /// scheduler cannot see. Retires are lock-free and race freely.
    pub fn register(&self, rec: Rec, clauses: &[Clause]) -> bool {
        let raw: Vec<DepClause> = clauses.iter().map(|c| c.0).collect();
        unsafe { self.0.register(rec.ptr(), &raw) }
    }

    /// Retires `rec` (its body finished): closes the successor list and
    /// hands every task this retire released to `sink`.
    pub fn retire(&self, rec: Rec, mut sink: impl FnMut(Rec)) {
        let block: NonNull<DepBlock> = unsafe { rec.ptr().as_ref() }
            .take_dep_state()
            .expect("retire on a record with no dep state")
            .cast();
        unsafe { self.0.retire(block, |r| sink(Rec(r.as_ptr() as usize))) };
    }

    /// Drops every entry and recycles all pool items (the region
    /// re-lease path).
    pub fn reset(&self) {
        self.0.reset();
    }
}

/// A fake waiter token for [`GroupRef`] registration calls: a non-null,
/// non-CLAIMED pointer value the protocol stores but never dereferences.
/// Distinct ids give distinct tokens.
pub fn waiter_token(id: usize) -> usize {
    // The CLAIMED sentinel is 1; stay clear of 0 and 1 and keep pointer
    // alignment plausible.
    (id + 2) * 128
}

/// Borrowed handle to a pooled [`Group`] descriptor.
#[derive(Clone, Copy)]
pub struct GroupRef(NonNull<Group>);

// SAFETY: every `Group` field is an atomic; the methods documented as
// owner-only are serialized by the scenario script under the virtual
// scheduler, exactly as the lease owner serializes them in production.
unsafe impl Send for GroupRef {}
unsafe impl Sync for GroupRef {}

impl GroupRef {
    fn g(&self) -> &Group {
        unsafe { self.0.as_ref() }
    }

    /// Registers one member.
    pub fn join(&self) {
        self.g().join();
    }

    /// Leaves; `true` on the zero transition (caller must then
    /// [`claim_waiter`](Self::claim_waiter) exactly once).
    pub fn leave(&self) -> bool {
        self.g().leave()
    }

    /// Outstanding members (lease owner only).
    pub fn outstanding(&self) -> usize {
        self.g().outstanding()
    }

    /// Registers a waiter token; `false` means the drain claim already
    /// landed (CLAIMED stays in the slot).
    pub fn try_register_waiter(&self, token: usize) -> bool {
        self.g()
            .try_register_waiter(NonNull::new(token as *mut Continuation).expect("zero token"))
    }

    /// The drain claim: swaps CLAIMED in, returns the registered token.
    pub fn claim_waiter(&self) -> Option<usize> {
        self.g().claim_waiter().map(|p| p.as_ptr() as usize)
    }

    /// Takes a registration back; `false` means the claim won.
    pub fn unregister_waiter(&self, token: usize) -> bool {
        self.g()
            .unregister_waiter(NonNull::new(token as *mut Continuation).expect("zero token"))
    }

    /// Spins until the drain claim's CLAIMED stamp lands, then clears it.
    /// NOT a yield point: the stamp is at most two instructions away on
    /// the draining thread, and scenarios must schedule the drainer to
    /// completion before (or while) calling this.
    pub fn await_drain_claim(&self) {
        self.g().await_drain_claim();
    }

    /// Re-arms a just-leased descriptor.
    pub fn reset(&self) {
        self.g().reset();
    }
}

/// The taskgroup descriptor pool (owner-only shards). See `crate::group`.
pub struct Groups(GroupPool);

impl Groups {
    /// One shard per worker.
    pub fn new(workers: usize) -> Groups {
        Groups(GroupPool::new(workers))
    }

    /// Leases a descriptor on `slot`'s shard; `true` = freshly allocated.
    pub fn lease(&self, slot: usize) -> (GroupRef, bool) {
        let (g, fresh) = self.0.lease(slot);
        (GroupRef(g), fresh)
    }

    /// Returns a drained descriptor (lease owner only).
    pub fn release(&self, group: GroupRef, slot: usize) {
        self.0.release(group.0, slot);
    }
}
