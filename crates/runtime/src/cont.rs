//! Pooled cactus-stack continuations: the mechanism that lets a blocked
//! wait leave its worker.
//!
//! Every deferred task body runs on a **fiber** — a heap-allocated stack
//! plus a saved register context — rather than on the worker's native
//! stack. When a scheduling-point wait (`taskwait`, taskgroup wait, loop
//! drain) cannot complete, the frame does not spin or nest: it parks its
//! fiber ([`Continuation`]) in a waiter slot on the thing it is waiting
//! for and switches back to the worker's dispatch loop, which moves on to
//! other work. Whichever worker later drives the wait's condition to its
//! zero transition (last child retiring, last group member leaving)
//! claims the slot and queues the continuation on its *own* deque — so a
//! blocked waiter migrates to wherever its wake happened, including onto
//! a thief. This is the continuation-stealing shape TraceForge uses for
//! its simulated threads, applied to OpenMP-style waits.
//!
//! Continuations are pooled exactly like task records ([`crate::slab`]):
//! per-worker owner-only free lists plus a lock-free Treiber reclaim
//! stack for cross-thread release, so a warm suspend/resume cycle
//! performs **zero heap allocations**. A recycled fiber is *live*: it
//! sits parked inside [`bots_fiber_main`]'s loop at the switch-out point
//! after finishing its previous task, so re-entering it needs no stack
//! re-crafting — just a task hand-off and a context switch.
//!
//! Fiber stacks default to [`RuntimeConfig::cont_stack`] bytes (256 KiB)
//! of *uninitialised* memory: untouched pages are never committed, so a
//! parked deep-wait costs pages, not megabytes. There is no guard page —
//! a body that out-recurses its fiber stack is undefined behaviour; raise
//! `cont_stack` for unusually deep inline cascades.
//!
//! ## The suspend/wake state machine
//!
//! A continuation's [`state`](Continuation::state) moves through:
//!
//! * `RUNNING` — mounted on some worker, executing.
//! * `SUSPENDING` — the fiber decided to park and is switching out; the
//!   hosting worker has not yet finished detaching it.
//! * `SUSPENDED` — fully parked; a waker owns requeueing it.
//! * `QUEUED` — a waker claimed it. If the claim landed before the park
//!   finished (`RUNNING`/`SUSPENDING`), the wake is a *token* the
//!   suspend path consumes without a queue round-trip; from `SUSPENDED`
//!   the waker pushes the tagged pointer itself.
//! * `DONE` — the task body finished; the host recycles the fiber.
//!
//! The waker is made exclusive by the waiter *slot* (an atomic pointer
//! swap claims it), so exactly one wake per suspend can ever fire: at
//! quiescence `cont_suspends == cont_resumes`.
//!
//! [`RuntimeConfig::cont_stack`]: crate::RuntimeConfig::cont_stack

use std::alloc::Layout;
use std::cell::Cell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};
use std::sync::Mutex;

use crate::task::TaskRecord;

/// Mounted on a worker, executing.
pub(crate) const RUNNING: u8 = 0;
/// Switching out; the host has not finished detaching it.
pub(crate) const SUSPENDING: u8 = 1;
/// Fully parked; the claiming waker queues it.
pub(crate) const SUSPENDED: u8 = 2;
/// Claimed by a waker (queued, or a wake token the suspend path eats).
pub(crate) const QUEUED: u8 = 3;
/// Task body finished; the host recycles the fiber.
pub(crate) const DONE: u8 = 4;

// The context switch. `bots_cont_switch(save, to)` pushes the SysV
// callee-saved registers, stores the old stack pointer through `save`,
// installs `to` as the new stack pointer, pops the callee-saved set the
// target context pushed when *it* switched out, and returns into the
// target. A freshly crafted stack (see `Continuation::craft`) fakes that
// frame so the first switch-in "returns" into `bots_fiber_boot`, which
// moves the continuation pointer parked in r12 into rdi and calls
// `bots_fiber_main`.
//
// Alignment: `craft` leaves the saved rsp 56 bytes below the 16-aligned
// stack top, so after six 8-byte pops and the 8-byte `ret`, `boot` runs
// with rsp ≡ 0 (mod 16) and its `call` gives `bots_fiber_main` the
// standard post-call rsp ≡ 8 (mod 16).
#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    ".globl bots_cont_switch",
    ".type bots_cont_switch, @function",
    "bots_cont_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".globl bots_fiber_boot",
    ".type bots_fiber_boot, @function",
    "bots_fiber_boot:",
    "mov rdi, r12",
    "xor ebp, ebp",
    "call bots_fiber_main",
    "ud2",
);

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "continuation stealing is implemented for x86_64 SysV only; \
     port bots_cont_switch/bots_fiber_boot for this architecture"
);

extern "C" {
    fn bots_cont_switch(save: *mut *mut u8, to: *mut u8);
    fn bots_fiber_boot();
}

/// Offsets (in 8-byte words, from the saved rsp) of the fake
/// callee-saved frame `craft` writes: r15 r14 r13 r12 rbx rbp ret.
const FRAME_WORDS: usize = 7;
const R12_WORD: usize = 3;
const RET_WORD: usize = 6;

/// A pooled fiber: heap stack + saved contexts + pool linkage.
///
/// Cache-line aligned so the low pointer bit is free for the deque's
/// resume tag and so `state` does not false-share with neighbours.
#[repr(align(128))]
pub(crate) struct Continuation {
    /// Intrusive pool link (free list / reclaim stack), only touched while
    /// the continuation is released.
    pub(crate) next: AtomicPtr<Continuation>,
    /// Suspend/wake state machine (see module docs).
    pub(crate) state: AtomicU8,
    /// Index of the worker whose pool shard owns this continuation.
    pub(crate) home: u16,
    /// Worker the fiber last ran on; a resume elsewhere is a migration.
    pub(crate) last_worker: Cell<u16>,
    /// The fiber's saved stack pointer while it is switched out.
    pub(crate) ctx: Cell<*mut u8>,
    /// The host's saved stack pointer while the fiber runs. Overwritten at
    /// every switch-in, so a continuation may be resumed from a different
    /// host each time (worker loop or a nested fiber).
    pub(crate) parent_ctx: Cell<*mut u8>,
    /// Task hand-off slot: set by the dispatcher before the first
    /// switch-in of a lease, taken by `bots_fiber_main`.
    pub(crate) task: Cell<Option<NonNull<TaskRecord>>>,
    /// Base of the fiber stack allocation.
    stack: NonNull<u8>,
    /// Size of the fiber stack allocation in bytes.
    stack_size: usize,
}

// Safety: a continuation is only ever *mounted* on one thread at a time
// (the state machine plus the single-claimant waiter slot enforce the
// hand-offs); `next` and `state` are atomics; the Cells are only touched
// by the mounting/dispatching thread.
unsafe impl Send for Continuation {}
unsafe impl Sync for Continuation {}

impl Continuation {
    fn stack_layout(size: usize) -> Layout {
        Layout::from_size_align(size, 16).expect("fiber stack layout")
    }

    /// Heap-allocates a fresh continuation with a crafted entry context.
    fn new(home: u16, stack_size: usize) -> NonNull<Continuation> {
        let stack = unsafe { std::alloc::alloc(Self::stack_layout(stack_size)) };
        let stack = NonNull::new(stack).expect("fiber stack allocation failed");
        let cont = Box::leak(Box::new(Continuation {
            next: AtomicPtr::new(std::ptr::null_mut()),
            state: AtomicU8::new(RUNNING),
            home,
            last_worker: Cell::new(home),
            ctx: Cell::new(std::ptr::null_mut()),
            parent_ctx: Cell::new(std::ptr::null_mut()),
            task: Cell::new(None),
            stack,
            stack_size,
        }));
        cont.craft();
        NonNull::from(cont)
    }

    /// Writes the fake switch-out frame a first switch-in "returns"
    /// through: r12 = self (moved to rdi by `bots_fiber_boot`), return
    /// address = `bots_fiber_boot`. Only fresh fibers need this — a
    /// recycled fiber is parked live inside `bots_fiber_main`'s loop.
    fn craft(&self) {
        unsafe {
            let top = self.stack.as_ptr().add(self.stack_size);
            let top = top.sub(top as usize % 16);
            let sp = top.sub(FRAME_WORDS * 8).cast::<u64>();
            for w in 0..FRAME_WORDS {
                sp.add(w).write(0);
            }
            sp.add(R12_WORD).write(self as *const Continuation as u64);
            sp.add(RET_WORD)
                .write(bots_fiber_boot as *const () as usize as u64);
            self.ctx.set(sp.cast());
        }
    }

    /// Mounts the fiber on the calling thread. Returns when the fiber
    /// switches out (suspending or done); inspect `state` to learn which.
    ///
    /// # Safety
    /// The caller must hold exclusive dispatch rights (fresh lease, or a
    /// `QUEUED` continuation it popped), and `task` must be set if the
    /// fiber has none pending.
    pub(crate) unsafe fn switch_in(&self) {
        bots_cont_switch(self.parent_ctx.as_ptr(), self.ctx.get());
    }

    /// Parks the fiber and returns control to its current host. Called
    /// from *inside* the fiber; returns when somebody resumes it.
    ///
    /// # Safety
    /// Must be called on the fiber's own stack.
    pub(crate) unsafe fn switch_out(&self) {
        bots_cont_switch(self.ctx.as_ptr(), self.parent_ctx.get());
    }

    unsafe fn destroy(cont: NonNull<Continuation>) {
        let size = cont.as_ref().stack_size;
        let stack = cont.as_ref().stack.as_ptr();
        drop(Box::from_raw(cont.as_ptr()));
        std::alloc::dealloc(stack, Self::stack_layout(size));
    }
}

/// The fiber trampoline target: runs tasks handed to `cont` forever.
///
/// Never returns — on task completion it marks the continuation `DONE`
/// and switches out; the host recycles the (still-live) fiber, and the
/// next lease switches back in right here to take the next task. Panics
/// must not unwind through the crafted base frame (that would be UB), so
/// anything escaping the execution hook aborts; task-body panics are
/// already contained as region outcomes inside the hook.
#[no_mangle]
unsafe extern "C" fn bots_fiber_main(cont: *mut Continuation) -> ! {
    loop {
        let c = &*cont;
        let task = c.task.take().expect("fiber switched in without a task");
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::pool::fiber_execute(task);
        }))
        .is_err()
        {
            std::process::abort();
        }
        c.state.store(DONE, Ordering::Release);
        // Nothing with a destructor may be live across this switch-out:
        // the stack below is freed without unwinding at pool teardown.
        c.switch_out();
    }
}

/// One worker's continuation shard: owner-only free list plus a
/// cross-thread reclaim stack, the `RecordSlab` split applied to fibers.
#[repr(align(128))]
struct ContShard {
    /// Owner-only free list head (`Continuation::next` links).
    free: Cell<*mut Continuation>,
    /// Cross-thread reclaim stack head (Treiber; any thread pushes, the
    /// owner drains).
    reclaim: AtomicPtr<Continuation>,
}

// Safety: `free` is only touched by the owning worker (the `unsafe`
// contracts on the owner-side methods); `reclaim` is lock-free.
unsafe impl Send for ContShard {}
unsafe impl Sync for ContShard {}

/// Where a continuation lease came from, for the recycling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ContSource {
    Recycled,
    Fresh,
}

/// The team-wide continuation pool: one shard per worker plus a teardown
/// registry of every fiber ever created.
pub(crate) struct ContPool {
    shards: Box<[ContShard]>,
    stack_size: usize,
    all: Mutex<Vec<usize>>,
}

impl ContPool {
    pub(crate) fn new(workers: usize, stack_size: usize) -> Self {
        ContPool {
            shards: (0..workers.max(1))
                .map(|_| ContShard {
                    free: Cell::new(std::ptr::null_mut()),
                    reclaim: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
            stack_size,
            all: Mutex::new(Vec::new()),
        }
    }

    /// Leases a ready-to-mount continuation: `state` is `RUNNING`,
    /// `last_worker` is `worker`, and the fiber is either freshly crafted
    /// or parked live at its take-next-task point.
    ///
    /// # Safety
    /// Only worker `worker`'s thread may call this with its own index.
    pub(crate) unsafe fn lease(&self, worker: usize) -> (NonNull<Continuation>, ContSource) {
        let shard = &self.shards[worker];
        let head = shard.free.get();
        let (cont, src) = if !head.is_null() {
            // relaxed-ok: owner-only free list; the link was written by
            // this thread or handed over by the Acquire drain.
            shard.free.set((*head).next.load(Ordering::Relaxed));
            (NonNull::new_unchecked(head), ContSource::Recycled)
        } else if let Some(cont) = Self::drain_reclaim(shard) {
            (cont, ContSource::Recycled)
        } else {
            let cont = Continuation::new(worker as u16, self.stack_size);
            self.all.lock().unwrap().push(cont.as_ptr() as usize);
            (cont, ContSource::Fresh)
        };
        // relaxed-ok: the fiber is exclusively ours until dispatch; the
        // deque push that publishes it supplies the ordering.
        cont.as_ref().state.store(RUNNING, Ordering::Relaxed);
        cont.as_ref().last_worker.set(worker as u16);
        (cont, src)
    }

    /// Returns a finished (`DONE`) continuation to the pool from worker
    /// `worker` — its own shard if it owns the fiber, the home shard's
    /// reclaim stack otherwise.
    ///
    /// # Safety
    /// `cont` must be fully detached (no pending wake, no queued copy),
    /// and `worker` must be the calling worker's index.
    pub(crate) unsafe fn release(&self, cont: NonNull<Continuation>, worker: usize) {
        let home = cont.as_ref().home as usize;
        if home == worker {
            // relaxed-ok: owner-only free list; the fiber is detached.
            cont.as_ref()
                .next
                .store(self.shards[home].free.get(), Ordering::Relaxed);
            self.shards[home].free.set(cont.as_ptr());
        } else {
            let shard = &self.shards[home];
            // relaxed-ok: `head` is only the CAS expectation below.
            let mut head = shard.reclaim.load(Ordering::Relaxed);
            loop {
                // relaxed-ok: the link is published by the Release CAS
                // below; the owner's Acquire drain is the only reader.
                cont.as_ref().next.store(head, Ordering::Relaxed);
                // transition: shard.reclaim: head -> cont (finished fiber
                // handed back to its home shard; Release publishes the
                // link and the fiber's parked state to the owner).
                match shard.reclaim.compare_exchange_weak(
                    head,
                    cont.as_ptr(),
                    Ordering::Release,
                    Ordering::Relaxed, // relaxed-ok: failure path only retries
                ) {
                    Ok(_) => return,
                    Err(cur) => head = cur,
                }
            }
        }
    }

    unsafe fn drain_reclaim(shard: &ContShard) -> Option<NonNull<Continuation>> {
        let head = shard.reclaim.swap(std::ptr::null_mut(), Ordering::Acquire);
        let head = NonNull::new(head)?;
        debug_assert!(shard.free.get().is_null());
        // relaxed-ok: the Acquire swap above took the whole chain
        // exclusively; its links can no longer change.
        shard.free.set(head.as_ref().next.load(Ordering::Relaxed));
        Some(head)
    }

    /// Continuations ever created (== the pool's high-water mark of
    /// concurrently live fibers), for leak checks.
    pub(crate) fn created(&self) -> usize {
        self.all.lock().unwrap().len()
    }
}

impl Drop for ContPool {
    fn drop(&mut self) {
        // Parked fibers are destroyed without unwinding their stacks;
        // `bots_fiber_main` keeps nothing droppable live across its park.
        for &cont in self.all.lock().unwrap().iter() {
            unsafe { Continuation::destroy(NonNull::new_unchecked(cont as *mut Continuation)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_after_release() {
        let pool = ContPool::new(2, 32 * 1024);
        unsafe {
            let (a, src) = pool.lease(0);
            assert_eq!(src, ContSource::Fresh);
            let a_ptr = a.as_ptr();
            pool.release(a, 0);
            let (b, src) = pool.lease(0);
            assert_eq!(src, ContSource::Recycled);
            assert_eq!(b.as_ptr(), a_ptr, "LIFO reuse");
            pool.release(b, 0);
        }
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn cross_worker_release_flows_home() {
        let pool = ContPool::new(2, 32 * 1024);
        unsafe {
            let (a, _) = pool.lease(0);
            // Worker 1 finished worker 0's fiber: it lands on shard 0's
            // reclaim stack, and worker 0's next lease drains it back.
            pool.release(a, 1);
            let (b, src) = pool.lease(0);
            assert_eq!(src, ContSource::Recycled);
            assert_eq!(b.as_ptr(), a.as_ptr());
            pool.release(b, 0);
        }
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn crafted_frame_is_aligned() {
        let pool = ContPool::new(1, 32 * 1024);
        unsafe {
            let (c, _) = pool.lease(0);
            let sp = c.as_ref().ctx.get() as usize;
            // Saved rsp + frame = 16-aligned boot entry.
            assert_eq!((sp + FRAME_WORDS * 8) % 16, 0);
            let ret = (c.as_ref().ctx.get() as *const u64).add(RET_WORD).read();
            assert_eq!(ret, bots_fiber_boot as *const () as usize as u64);
            pool.release(c, 0);
        }
    }
}
