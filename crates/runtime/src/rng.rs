//! A tiny xorshift64* generator for steal-victim selection.
//!
//! Victim selection needs speed and decorrelation between workers, not
//! statistical quality, so a 3-shift xorshift with a multiplicative finaliser
//! is plenty. Each worker seeds from its index so the rotation patterns of
//! different workers diverge immediately.

/// Xorshift64* PRNG (Vigna 2016 parameters).
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        XorShift64 { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[0, bound)` via the widening-multiply trick.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(0x9E37_79B9_7F4A_7C15);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift64::new(42);
        for _ in 0..10_000 {
            let v = rng.below(7);
            assert!(v < 7);
        }
    }

    #[test]
    fn covers_all_residues() {
        let mut rng = XorShift64::new(7);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[rng.below(5)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some residue never produced: {seen:?}"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
