//! Typed outcomes for the cancellation-grade API surface: why a region
//! finished without a value ([`RegionError`]) and why a submission was
//! refused ([`SubmitError`]).
//!
//! Cancellation in this runtime is **cooperative**, modeled on OpenMP 4.0
//! `cancel` / cancellation points: [`RegionHandle::cancel`] (or
//! [`Scope::cancel_region`], or a deadline armed by
//! [`Runtime::submit_with_deadline`]) raises a per-region flag, and the
//! flag is *observed* at task-scheduling points — task dispatch, spawn,
//! `taskwait`/`taskgroup` waits, and the generator loops of
//! `parallel_for`. A task body that never reaches a scheduling point (and
//! never polls [`Scope::is_cancelled`]) runs to completion; nothing is
//! ever interrupted mid-instruction.
//!
//! [`RegionHandle::cancel`]: crate::RegionHandle::cancel
//! [`Scope::cancel_region`]: crate::Scope::cancel_region
//! [`Scope::is_cancelled`]: crate::Scope::is_cancelled
//! [`Runtime::submit_with_deadline`]: crate::Runtime::submit_with_deadline

use std::fmt;

/// Why a region finished without producing its root closure's value.
///
/// Returned by [`RegionHandle::outcome`](crate::RegionHandle::outcome) /
/// [`try_join`](crate::RegionHandle::try_join) and passed to
/// [`on_complete`](crate::RegionHandle::on_complete) callbacks.
/// [`join`](crate::RegionHandle::join) converts `Panicked` back into a
/// resumed panic and `Cancelled` into a panic whose payload is the
/// `RegionError::Cancelled` value itself, so callers that need to
/// distinguish the cases should prefer the `Result`-returning joiners.
pub enum RegionError {
    /// The region was cancelled (explicitly or by its deadline) before the
    /// root task stored a result.
    Cancelled,
    /// A task of the region panicked; the payload is the first panic
    /// captured.
    Panicked(Box<dyn std::any::Any + Send>),
}

impl fmt::Debug for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Cancelled => f.write_str("Cancelled"),
            RegionError::Panicked(_) => f.write_str("Panicked(..)"),
        }
    }
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Cancelled => f.write_str("region was cancelled before completing"),
            RegionError::Panicked(_) => f.write_str("a task of the region panicked"),
        }
    }
}

impl std::error::Error for RegionError {}

impl RegionError {
    /// `true` for [`RegionError::Cancelled`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, RegionError::Cancelled)
    }
}

/// Why [`Runtime::try_submit`](crate::Runtime::try_submit) refused a
/// submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The runtime is over its in-flight region watermark
    /// ([`RuntimeConfig::with_max_live_regions`]) and shed the submission
    /// instead of queueing more work onto an overloaded team.
    ///
    /// [`RuntimeConfig::with_max_live_regions`]: crate::RuntimeConfig::with_max_live_regions
    Shed {
        /// Regions in flight when the submission was refused.
        live: usize,
        /// The configured watermark.
        limit: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Shed { live, limit } => write!(
                f,
                "submission shed: {live} regions in flight, watermark {limit}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_error_formats() {
        assert_eq!(format!("{:?}", RegionError::Cancelled), "Cancelled");
        assert!(RegionError::Cancelled.is_cancelled());
        let p = RegionError::Panicked(Box::new("boom"));
        assert_eq!(format!("{p:?}"), "Panicked(..)");
        assert!(!p.is_cancelled());
        assert!(format!("{p}").contains("panicked"));
    }

    #[test]
    fn submit_error_reports_watermark() {
        let e = SubmitError::Shed { live: 9, limit: 8 };
        let msg = format!("{e}");
        assert!(msg.contains('9') && msg.contains('8'), "{msg}");
    }
}
