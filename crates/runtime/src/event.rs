//! An *event count*: a condition-variable wrapper that lets workers block
//! only when there is provably nothing to do, while keeping the notify path
//! (executed on every task spawn) nearly free when nobody is sleeping.
//!
//! Protocol: a prospective sleeper reads the epoch (`prepare`), re-checks its
//! wake-up condition, and then `wait`s *for that epoch*. Any state change that
//! could satisfy a sleeper must be followed by `notify`, which bumps the epoch
//! and wakes sleepers. A sleeper whose epoch is stale returns immediately, so
//! lost wake-ups are impossible.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// See module docs.
pub struct EventCount {
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Default for EventCount {
    fn default() -> Self {
        Self::new()
    }
}

impl EventCount {
    /// Creates a new event count with epoch zero and no sleepers.
    pub fn new() -> Self {
        EventCount {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Snapshots the epoch. Call *before* re-checking the wait condition.
    #[inline]
    pub fn prepare(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Blocks until the epoch moves past `seen`. Returns immediately if it
    /// already has. Spurious returns are allowed (callers loop).
    pub fn wait(&self, seen: u64) {
        let mut guard = self.mutex.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while self.epoch.load(Ordering::SeqCst) == seen {
            self.cv.wait(&mut guard);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    pub fn wait_timeout(&self, seen: u64, timeout: std::time::Duration) {
        let mut guard = self.mutex.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) == seen {
            let _ = self.cv.wait_for(&mut guard, timeout);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Publishes an event: bumps the epoch and wakes all sleepers.
    ///
    /// Fast path (no sleepers): one RMW + one load.
    #[inline]
    pub fn notify(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders us against a sleeper that has registered
            // but not yet blocked on the condvar.
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }

    /// Number of currently registered sleepers (approximate).
    #[allow(dead_code)] // diagnostic accessor, exercised in tests
    pub fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_returns_after_notify() {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (ec2, flag2) = (ec.clone(), flag.clone());
        let h = std::thread::spawn(move || loop {
            let epoch = ec2.prepare();
            if flag2.load(Ordering::Acquire) {
                break;
            }
            ec2.wait(epoch);
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify();
        h.join().unwrap();
    }

    #[test]
    fn stale_epoch_does_not_block() {
        let ec = EventCount::new();
        let seen = ec.prepare();
        ec.notify();
        // Must return immediately; a hang here fails the test by timeout.
        ec.wait(seen);
    }

    #[test]
    fn timeout_elapses_without_notify() {
        let ec = EventCount::new();
        let seen = ec.prepare();
        let t0 = std::time::Instant::now();
        ec.wait_timeout(seen, Duration::from_millis(30));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn many_sleepers_all_wake() {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (ec, flag) = (ec.clone(), flag.clone());
                std::thread::spawn(move || loop {
                    let epoch = ec.prepare();
                    if flag.load(Ordering::Acquire) {
                        break;
                    }
                    ec.wait(epoch);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify();
        for h in handles {
            h.join().unwrap();
        }
    }
}
