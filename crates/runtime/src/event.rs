//! An *event count*: a condition-variable wrapper that lets workers block
//! only when there is provably nothing to do, while keeping the notify path
//! (executed on every task spawn and completion) **free of shared writes
//! when nobody is sleeping**.
//!
//! The runtime's *progress* channel is one of these: blocking region
//! joiners, taskwaiters and the runtime destructor's in-flight-region
//! drain all park here. Note what does **not** need it any more: a region
//! completion consumed through the async path (a polled `RegionHandle` or
//! an `on_complete` callback) is fired edge-wise by the quiescence
//! transition itself — the event count only wakes the threads that chose
//! to block.
//!
//! Protocol: a prospective sleeper **registers first** ([`prepare`] bumps
//! the sleeper count and snapshots the epoch), re-checks its wake-up
//! condition, and then either [`wait`]s for that epoch or [`cancel`]s the
//! registration. Any state change that could satisfy a sleeper must be
//! followed by [`notify`], which is *sleeper-gated*: a `SeqCst` fence plus
//! one load of the sleeper count, and only when sleepers are registered
//! does it bump the epoch and take the wake lock. On the uncontended spawn
//! fast path this costs a fence and a read of a cache line that only
//! changes when a worker goes idle — no RMW on shared state, unlike the
//! previous design's unconditional epoch increment.
//!
//! Why no wake-up is lost: the sleeper's registration is a `SeqCst` RMW
//! that precedes its condition re-check, and the notifier's condition
//! change precedes its `SeqCst` fence + sleeper-count load. In the single
//! total order of SeqCst operations, either the notifier sees the
//! registration (and wakes), or the sleeper's re-check sees the condition
//! change (and never blocks). This is the classic store-buffering pattern;
//! both sides are ordered through the SeqCst total order.
//!
//! [`prepare`]: EventCount::prepare
//! [`wait`]: EventCount::wait
//! [`cancel`]: EventCount::cancel
//! [`notify`]: EventCount::notify

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// See module docs.
pub struct EventCount {
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Default for EventCount {
    fn default() -> Self {
        Self::new()
    }
}

impl EventCount {
    /// Creates a new event count with epoch zero and no sleepers.
    pub fn new() -> Self {
        EventCount {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Registers the caller as a prospective sleeper and snapshots the
    /// epoch. Call *before* re-checking the wait condition; the caller must
    /// follow up with exactly one of [`wait`](Self::wait),
    /// [`wait_timeout`](Self::wait_timeout) or [`cancel`](Self::cancel).
    #[inline]
    pub fn prepare(&self) -> u64 {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // Fence-to-fence pairing with `notify`: the caller's *subsequent*
        // condition re-check (plain Acquire loads) must be ordered after
        // the registration store even on weakly-ordered targets — a SeqCst
        // RMW alone does not order later non-SeqCst loads against the
        // notifier's fence. With both sides fenced, either the notifier's
        // sleeper load sees the registration or the sleeper's re-check
        // sees the condition change. Free on x86; a dmb on AArch64.
        fence(Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Deregisters after [`prepare`](Self::prepare) when the caller decided
    /// not to sleep (its condition was already satisfied).
    #[inline]
    pub fn cancel(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until the epoch moves past `seen` and deregisters. Returns
    /// immediately if it already has. Spurious returns are allowed (callers
    /// loop).
    ///
    /// The runtime itself always parks with a timeout as a lost-wakeup
    /// safety net; the untimed variant is kept for completeness and tests.
    #[allow(dead_code)]
    pub fn wait(&self, seen: u64) {
        {
            let mut guard = self.mutex.lock().unwrap();
            while self.epoch.load(Ordering::SeqCst) == seen {
                guard = self.cv.wait(guard).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    pub fn wait_timeout(&self, seen: u64, timeout: std::time::Duration) {
        {
            let guard = self.mutex.lock().unwrap();
            if self.epoch.load(Ordering::SeqCst) == seen {
                let _ = self.cv.wait_timeout(guard, timeout).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Publishes an event, waking registered sleepers.
    ///
    /// Fast path (no sleepers): one fence + one load — **no shared write**.
    /// The caller must have made the sleepers' wake-up condition observable
    /// before calling this.
    #[inline]
    pub fn notify(&self) {
        // Orders the caller's preceding (possibly relaxed) state change into
        // the SeqCst total order before the sleeper-count load; pairs with
        // the SeqCst registration RMW in `prepare`.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.notify_slow(true);
        }
    }

    /// Like [`notify`](Self::notify) but wakes at most one sleeper: the
    /// right shape for "one new unit of work arrived" events, where waking
    /// the whole team just creates a thundering herd. Sleepers left behind
    /// hold a stale epoch, so they return as soon as they are next signalled
    /// or their park timeout fires.
    #[inline]
    pub fn notify_one(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.notify_slow(false);
        }
    }

    #[cold]
    fn notify_slow(&self, all: bool) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Taking the lock orders us against a sleeper that has registered
        // and seen a stale epoch but not yet blocked on the condvar.
        let _guard = self.mutex.lock().unwrap();
        if all {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
    }

    /// Number of currently registered sleepers (approximate). Besides the
    /// tests, this feeds the worker loop's wake-propagation gate: a freshly
    /// woken worker only pays for a work-visibility scan (and a possible
    /// `notify_one`) when somebody is actually left to wake.
    pub fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::Relaxed)
    }

    /// Current epoch (diagnostics; bumped only by sleeper-observed
    /// notifies).
    #[cfg(test)]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_returns_after_notify() {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (ec2, flag2) = (ec.clone(), flag.clone());
        let h = std::thread::spawn(move || loop {
            let epoch = ec2.prepare();
            if flag2.load(Ordering::Acquire) {
                ec2.cancel();
                break;
            }
            ec2.wait(epoch);
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify();
        h.join().unwrap();
    }

    #[test]
    fn stale_epoch_does_not_block() {
        let ec = EventCount::new();
        let seen = ec.prepare();
        ec.notify();
        // Must return immediately; a hang here fails the test by timeout.
        ec.wait(seen);
        assert_eq!(ec.sleepers(), 0);
    }

    #[test]
    fn timeout_elapses_without_notify() {
        let ec = EventCount::new();
        let seen = ec.prepare();
        let t0 = std::time::Instant::now();
        ec.wait_timeout(seen, Duration::from_millis(30));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(ec.sleepers(), 0);
    }

    #[test]
    fn notify_without_sleepers_is_silent() {
        let ec = EventCount::new();
        let before = ec.epoch();
        for _ in 0..100 {
            ec.notify();
        }
        assert_eq!(
            ec.epoch(),
            before,
            "ungated notifies must not touch the epoch"
        );
        // With a registered sleeper the epoch moves.
        let seen = ec.prepare();
        ec.notify();
        assert_eq!(ec.epoch(), before + 1);
        ec.wait(seen); // stale: returns immediately, deregisters
        assert_eq!(ec.sleepers(), 0);
    }

    #[test]
    fn cancel_deregisters() {
        let ec = EventCount::new();
        let _ = ec.prepare();
        assert_eq!(ec.sleepers(), 1);
        ec.cancel();
        assert_eq!(ec.sleepers(), 0);
    }

    #[test]
    fn many_sleepers_all_wake() {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (ec, flag) = (ec.clone(), flag.clone());
                std::thread::spawn(move || loop {
                    let epoch = ec.prepare();
                    if flag.load(Ordering::Acquire) {
                        ec.cancel();
                        break;
                    }
                    ec.wait(epoch);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ec.sleepers(), 0);
    }
}
