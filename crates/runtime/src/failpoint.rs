//! Deterministic fault injection for the runtime's lock-free protocols,
//! in the spirit of tikv's `fail-rs`.
//!
//! The four protocols that make the runtime allocation-free — the sharded
//! injector's swap-drain, the slab reclaim stack, the group lease/leave
//! handshake and the dependency tracker's CLOSED-swap — are exactly the
//! code whose rare interleavings stress tests only hope to hit. A
//! *failpoint* is a named hook compiled into those paths that CI can arm
//! with an action (panic, delay, yield) to force the interleaving
//! deterministically.
//!
//! ## Cost model
//!
//! Failpoints are **compile-time gated** behind the `failpoints` cargo
//! feature. With the feature off (the default, and every benchmarked
//! configuration) the [`bots_failpoint!`] macro expands to nothing: zero
//! tokens, zero branches, zero atomics on the hot paths. With the feature
//! on, every hit takes a global mutex — fault-injection builds trade speed
//! for determinism by design.
//!
//! ## Activation
//!
//! Sites are armed programmatically ([`cfg`]) or through the environment:
//!
//! ```text
//! BOTS_FAILPOINTS="injector_pop=yield;steal=3*delay(1);task_invoke=1*panic(boom)"
//! ```
//!
//! Each clause is `site=action` with an optional `N*` prefix bounding how
//! many hits fire the action (after which the site goes silent). Actions:
//!
//! * `panic` / `panic(msg)` — panic at the site. Only safe at sites that
//!   execute under a `catch_unwind` (the runtime arms `task_invoke` this
//!   way in CI); panicking inside a protocol's critical window would kill
//!   the worker thread mid-handshake.
//! * `delay(ms)` — sleep, widening a race window.
//! * `yield` — `std::thread::yield_now()`, perturbing the schedule cheaply.
//! * `off` — keep counting hits, fire nothing.
//!
//! Every `fire` is counted whether or not an action is armed, so a test
//! can assert that a workload actually drove a given site
//! ([`hits`] ≥ 1) without changing the workload's behaviour.
//!
//! ## Schedule control
//!
//! Beyond armed actions, a process-global *schedule hook*
//! ([`set_schedule_hook`]) sees every fire after the armed action has run
//! and the registry lock is dropped. The model-checking harness
//! (`crates/modelcheck`) installs one to turn each site into a yield
//! point owned by a deterministic virtual scheduler: the hook parks the
//! calling (virtual-worker) thread until the explorer grants it the next
//! step, which makes whole interleavings of the real protocol code
//! enumerable and replayable.

/// Names a failpoint site. Expands to a call into this module when the
/// crate is built with `--features failpoints`, and to nothing at all
/// otherwise.
///
/// ```ignore
/// crate::bots_failpoint!("injector_pop");
/// ```
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! bots_failpoint {
    ($name:expr) => {
        $crate::failpoint::fire($name)
    };
}

/// Names a failpoint site. Expands to a call into this module when the
/// crate is built with `--features failpoints`, and to nothing at all
/// otherwise.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! bots_failpoint {
    ($name:expr) => {};
}

#[cfg(feature = "failpoints")]
pub use imp::{cfg, fire, hits, prewarm, remove, set_schedule_hook, teardown, ScheduleHook, SITES};

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Duration;

    /// A schedule-control callback: called with the site name on **every**
    /// fire, after the registry lock is dropped and any armed action has
    /// run. The model-checking harness (`crates/modelcheck`) installs one
    /// to turn every failpoint site into a yield point its virtual
    /// scheduler owns; the hook decides per-thread (via its own
    /// thread-locals) whether the calling thread is a virtual worker that
    /// must park or a bystander that passes straight through.
    pub type ScheduleHook = Arc<dyn Fn(&str) + Send + Sync>;

    static SCHED_HOOK: OnceLock<Mutex<Option<ScheduleHook>>> = OnceLock::new();

    fn sched_hook_slot() -> &'static Mutex<Option<ScheduleHook>> {
        SCHED_HOOK.get_or_init(|| Mutex::new(None))
    }

    /// Installs (or with `None`, removes) the global schedule hook. The
    /// hook must be cheap and must never fire a failpoint itself.
    pub fn set_schedule_hook(hook: Option<ScheduleHook>) {
        *sched_hook_slot().lock().unwrap_or_else(|e| e.into_inner()) = hook;
    }

    /// Every site name compiled into the runtime (the `bots_failpoint!`
    /// call sites). Kept next to the registry so [`prewarm`] and the CI
    /// coverage test agree on the full set.
    pub const SITES: [&str; 20] = [
        "injector_push",
        "injector_push_cas",
        "injector_pop",
        "injector_pop_swap",
        "injector_pop_republish",
        "steal",
        "task_invoke",
        "slab_free_remote",
        "slab_reclaim_cas",
        "slab_drain",
        "group_leave",
        "group_claim",
        "dep_retire",
        "dep_edge_cas",
        "replay_freeze",
        "replay_diverge",
        "loop_claim",
        "loop_drain",
        "cont_suspend",
        "cont_resume",
    ];

    /// What an armed site does when hit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Action {
        /// Count the hit, do nothing.
        Off,
        /// Panic with the given message (or a default).
        Panic(Option<String>),
        /// Sleep for the given number of milliseconds.
        Delay(u64),
        /// `std::thread::yield_now()`.
        Yield,
    }

    struct Site {
        action: Action,
        /// Hits left that still fire the action; `None` = unbounded.
        remaining: Option<u64>,
        hits: u64,
    }

    /// The effect `fire` must perform after dropping the registry lock
    /// (panicking or sleeping while holding it would poison or serialise
    /// every other site).
    enum Fired {
        Panic(Option<String>),
        Delay(u64),
        Yield,
    }

    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("BOTS_FAILPOINTS") {
                for clause in spec.split(';') {
                    let clause = clause.trim();
                    if clause.is_empty() {
                        continue;
                    }
                    let Some((name, action)) = clause.split_once('=') else {
                        eprintln!("BOTS_FAILPOINTS: ignoring '{clause}': missing '='");
                        continue;
                    };
                    match parse_action(action.trim()) {
                        Ok((action, remaining)) => {
                            map.insert(
                                name.trim().to_string(),
                                Site {
                                    action,
                                    remaining,
                                    hits: 0,
                                },
                            );
                        }
                        Err(e) => eprintln!("BOTS_FAILPOINTS: ignoring '{clause}': {e}"),
                    }
                }
            }
            Mutex::new(map)
        })
    }

    /// Parses one action spec (`[N*]action`), returning the action and the
    /// optional hit bound.
    fn parse_action(spec: &str) -> Result<(Action, Option<u64>), String> {
        let (count, spec) = match spec.split_once('*') {
            Some((n, rest)) => {
                let n = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad count '{n}'"))?;
                (Some(n), rest.trim())
            }
            None => (None, spec),
        };
        let action = if spec == "off" {
            Action::Off
        } else if spec == "panic" {
            Action::Panic(None)
        } else if spec == "yield" {
            Action::Yield
        } else if let Some(msg) = spec
            .strip_prefix("panic(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::Panic(Some(msg.to_string()))
        } else if let Some(ms) = spec
            .strip_prefix("delay(")
            .and_then(|s| s.strip_suffix(')'))
        {
            Action::Delay(
                ms.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad delay '{ms}'"))?,
            )
        } else {
            return Err(format!("unknown action '{spec}'"));
        };
        Ok((action, count))
    }

    /// Hits a failpoint site: counts the hit, then performs the armed
    /// action (if any, and if its hit bound has not drained). Called by the
    /// [`bots_failpoint!`](crate::bots_failpoint) macro — not meant to be
    /// invoked directly outside tests.
    pub fn fire(name: &str) {
        let fired = {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            // Not `entry()`: that would allocate the owned key on every
            // hit, and sites fire on the runtime's zero-allocation warm
            // paths. The double lookup keeps warm fires allocation-free.
            #[allow(clippy::map_entry)]
            if !reg.contains_key(name) {
                reg.insert(
                    name.to_string(),
                    Site {
                        action: Action::Off,
                        remaining: None,
                        hits: 0,
                    },
                );
            }
            let site = reg.get_mut(name).expect("present: just inserted");
            site.hits += 1;
            if site.remaining == Some(0) {
                None
            } else {
                if let Some(n) = site.remaining.as_mut() {
                    *n -= 1;
                }
                match &site.action {
                    Action::Off => None,
                    Action::Panic(msg) => Some(Fired::Panic(msg.clone())),
                    Action::Delay(ms) => Some(Fired::Delay(*ms)),
                    Action::Yield => Some(Fired::Yield),
                }
            }
        };
        match fired {
            None => {}
            Some(Fired::Panic(msg)) => {
                let msg = msg.unwrap_or_else(|| format!("failpoint '{name}' panicked"));
                panic!("{msg}");
            }
            Some(Fired::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fired::Yield) => std::thread::yield_now(),
        }
        // Schedule control runs last so the virtual scheduler observes the
        // site exactly at its linearization boundary, with no registry lock
        // held (the hook may park the calling thread indefinitely).
        let hook = sched_hook_slot()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(hook) = hook {
            hook(name);
        }
    }

    /// Arms `name` with `spec` (same grammar as one `BOTS_FAILPOINTS`
    /// clause's action, e.g. `"yield"`, `"2*delay(5)"`, `"1*panic(boom)"`).
    /// Resets the site's hit bound; the hit counter keeps accumulating.
    pub fn cfg(name: &str, spec: &str) -> Result<(), String> {
        let (action, remaining) = parse_action(spec)?;
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let site = reg.entry(name.to_string()).or_insert(Site {
            action: Action::Off,
            remaining: None,
            hits: 0,
        });
        site.action = action;
        site.remaining = remaining;
        Ok(())
    }

    /// Disarms `name` (hit counting continues).
    pub fn remove(name: &str) {
        let _ = cfg(name, "off");
    }

    /// Inserts every known site into the registry (disarmed; already-armed
    /// entries — e.g. from `BOTS_FAILPOINTS` — are untouched). Called at
    /// team construction so the one-time key insertions of first fires
    /// never land on a measured warm path or inside a live-bytes leak
    /// window that was baselined after a runtime warm-up.
    pub fn prewarm() {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for name in SITES {
            #[allow(clippy::map_entry)]
            if !reg.contains_key(name) {
                reg.insert(
                    name.to_string(),
                    Site {
                        action: Action::Off,
                        remaining: None,
                        hits: 0,
                    },
                );
            }
        }
    }

    /// Disarms every site and zeroes all hit counters.
    pub fn teardown() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// How many times `name` has been hit since the last [`teardown`].
    pub fn hits(name: &str) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |s| s.hits)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parse_grammar() {
            assert_eq!(parse_action("off").unwrap(), (Action::Off, None));
            assert_eq!(parse_action("panic").unwrap(), (Action::Panic(None), None));
            assert_eq!(
                parse_action("panic(boom)").unwrap(),
                (Action::Panic(Some("boom".into())), None)
            );
            assert_eq!(parse_action("delay(7)").unwrap(), (Action::Delay(7), None));
            assert_eq!(parse_action("yield").unwrap(), (Action::Yield, None));
            assert_eq!(
                parse_action("3*delay(1)").unwrap(),
                (Action::Delay(1), Some(3))
            );
            assert_eq!(
                parse_action("1*panic").unwrap(),
                (Action::Panic(None), Some(1))
            );
            assert!(parse_action("explode").is_err());
            assert!(parse_action("x*yield").is_err());
            assert!(parse_action("delay(soon)").is_err());
        }
    }
}
