//! Per-region descriptors and the descriptor pool: the state of one
//! parallel region, extracted out of the team-wide [`Shared`] block so that
//! an arbitrary number of regions can run concurrently on a single worker
//! team — and **recycled** through a free list so a steady-state
//! [`Runtime::submit`] performs zero heap allocations.
//!
//! One [`Region`] is leased per [`Runtime::submit`] / [`Runtime::parallel`]
//! call and holds everything whose scope is *that region*, nothing else:
//!
//! * the **root record** — the region's implicit task, embedded in the
//!   descriptor itself (no per-submit box), whose refcount is the
//!   quiescence signal (it falls back to the joiner's lone handle exactly
//!   when every descendant record has been destroyed);
//! * the **result slot** — inline storage for the root closure's return
//!   value (spilled to one box past [`RESULT_INLINE_BYTES`]), consumed by
//!   whoever finishes the region;
//! * the **completion slot** — a parked `Waker` or a detached completion
//!   callback, fired exactly once on the quiescence zero-transition, so a
//!   server frontend never has to burn a blocked thread per in-flight
//!   region;
//! * the **panic slot** — the first panic raised by any task of the region,
//!   re-raised by the region's own joiner and invisible to every other
//!   region;
//! * the **cut-off budget** ([`RegionBudget`]) plus the per-worker queued
//!   count it is checked against, so one greedy region falls back to serial
//!   execution without starving its siblings' spawns;
//! * **stats attribution** — per-worker sharded spawned/executed/serialized
//!   counters, so a server can tell which region generated which task
//!   traffic without the global per-worker counters losing their meaning.
//!
//! ## Descriptor lifetime
//!
//! Records reach their region through a raw pointer stored in every
//! [`TaskRecord`] at init (children inherit it from their parent). The
//! pointer stays valid for as long as any record of the region is live: a
//! leased descriptor is only returned to the pool by the final release of
//! its root record, which happens-after quiescence (every descendant record
//! destroyed) *and* after the joiner/completion path has taken the result
//! and panic out. Descriptor memory itself is never freed before the
//! runtime drops — the pool owns every descriptor it ever created — so even
//! a deliberately leaked lease (see the join-on-worker panic path) leaves
//! no dangling pointer behind.
//!
//! The pool mirrors the task-record slabs ([`crate::slab`]) in spirit and
//! the sharded injector ([`crate::injector`]) in mechanism: one Treiber
//! shard per worker, submitter-hashed, with ABA-free swap-drain pops.
//!
//! [`Shared`]: crate::pool::Runtime
//! [`Runtime::submit`]: crate::pool::Runtime::submit
//! [`Runtime::parallel`]: crate::pool::Runtime::parallel

use std::cell::UnsafeCell;
use std::mem::{align_of, size_of, MaybeUninit};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::config::RegionBudget;
use crate::deps::DepTracker;
use crate::local::CacheAligned;
use crate::replay::{RegionReplay, ReplayPhase};
use crate::task::TaskRecord;

/// A panic payload captured from a task.
pub(crate) type PanicPayload = Box<dyn std::any::Any + Send>;

/// Inline capacity of the region result slot, in bytes. Root closures
/// returning anything larger (or more aligned than
/// [`RESULT_INLINE_ALIGN`]) spill the value to one heap box.
pub(crate) const RESULT_INLINE_BYTES: usize = 64;

/// Maximum supported alignment for inline result storage.
pub(crate) const RESULT_INLINE_ALIGN: usize = 16;

#[repr(align(16))]
struct ResultPayload(#[allow(dead_code)] [MaybeUninit<u8>; RESULT_INLINE_BYTES]);

/// What fires when a region quiesces: a parked future's waker, or a
/// detached cleanup/callback that owns the rest of the region's lifecycle.
pub(crate) enum Completion {
    /// Wake a future that registered interest via `poll`.
    Waker(std::task::Waker),
    /// Run a detached completion: takes result and panic, releases the
    /// final root reference (returning the descriptor to the pool), and
    /// invokes the user callback, all on the completing thread.
    Detached(Box<dyn FnOnce() + Send>),
}

/// The completion slot: fired exactly once per lease, on the quiescence
/// zero-transition.
#[derive(Default)]
struct CompletionSlot {
    /// Has the region quiesced (the zero-transition already ran)?
    fired: bool,
    /// What to fire when it does.
    pending: Option<Completion>,
}

/// Per-worker attribution shard: padded so two workers bumping counters for
/// the same region never share a cache line (the spawn path must stay
/// contention-free). Every field is single-writer: only the worker the
/// shard is indexed by touches it.
#[derive(Default)]
pub(crate) struct RegionShard {
    /// Tasks deferred (queued) on behalf of this region by this worker.
    pub(crate) spawned: AtomicU64,
    /// Deferred tasks of this region executed by this worker (the region
    /// root counts too — it runs through the same execute path).
    pub(crate) executed: AtomicU64,
    /// Spawns of this region this worker ran inline because the region's
    /// own budget tripped.
    pub(crate) serialized: AtomicU64,
    /// Tasks of this region whose bodies this worker skipped (suppressed
    /// at spawn, or dispatched with the closure dropped) because the
    /// region was cancelled.
    pub(crate) skipped: AtomicU64,
    /// Spawns of this region this worker ran inline because the runtime
    /// was shedding load (the in-flight region watermark was exceeded at
    /// submit time).
    pub(crate) shed: AtomicU64,
    /// Queued-but-unstarted tasks of this region, this worker's
    /// contribution (spawners add on their own shard, executors subtract on
    /// theirs, so a shard may go negative; the sum is the true count).
    pub(crate) queued: AtomicIsize,
}

/// State of one in-flight parallel region. See the module docs.
pub(crate) struct Region {
    /// Pool free-list link. Only touched while the descriptor is free (its
    /// lease has been returned), so it cannot race with live-region use.
    next: AtomicPtr<Region>,
    /// The region's root (implicit-task) record, embedded so a submission
    /// allocates nothing. Initialised at lease time, before the root is
    /// published to the injector.
    root: UnsafeCell<MaybeUninit<TaskRecord>>,
    /// First panic payload raised by any task of this region. Isolated here
    /// so a panic in region A can never be re-raised into region B's caller.
    panic: Mutex<Option<PanicPayload>>,
    /// Completion slot; see [`Completion`].
    completion: Mutex<CompletionSlot>,
    /// Effective cut-off budget for this lease. Written once at lease time
    /// (exclusive access, before the root is published) and read on every
    /// spawn; the publish-subscribe edge is the injector/deque handoff.
    budget: UnsafeCell<RegionBudget>,
    /// Hysteresis state for [`RegionBudget::Adaptive`].
    serializing: AtomicBool,
    /// Cooperative cancel flag: raised by `RegionHandle::cancel`,
    /// `Scope::cancel_region` or a tripped deadline; observed at task
    /// scheduling points. Never lowered while the lease is live.
    cancelled: AtomicBool,
    /// Deadline on the runtime's coarse millisecond clock
    /// ([`crate::pool`]'s `clock_ms`), or `0` for none. Written once at
    /// lease time; workers compare it against the stamped clock at
    /// dispatch points and cancel the region when it passes.
    deadline_ms: AtomicU64,
    /// Shed mode: the region was admitted while the runtime was over its
    /// in-flight watermark, so its clause-free spawns run inline instead
    /// of queueing (graceful degradation rather than rejection).
    shed_mode: AtomicBool,
    /// Root-closure result, written in place by the root task. The
    /// write happens-before any reader: readers only run after observing
    /// quiescence, which is downstream of the root's release-sequence.
    result: UnsafeCell<ResultPayload>,
    /// Has a result been stored (and not yet taken)? Distinguishes "root
    /// panicked before returning" from "result ready", and tells cleanup
    /// paths whether there is a value left to drop.
    result_written: AtomicBool,
    /// Per-worker attribution counters, indexed by worker.
    shards: Box<[CacheAligned<RegionShard>]>,
    /// The region's task-dependency tracker ([`crate::deps`]): address
    /// entries, dep blocks and nodes, all pooled inside and reset on
    /// re-lease — deps are region-scoped, and a recycled descriptor keeps
    /// its dependency pools warm.
    deps: DepTracker,
    /// Record-and-replay state ([`crate::replay`]): armed at submit time
    /// for leases carrying a shape token, `Off` otherwise.
    replay: RegionReplay,
}

// Safety: the embedded root record is governed by the record refcount
// protocol (and only initialised while the descriptor is exclusively
// leased); the result/budget cells are written under exclusivity and read
// happens-after publication edges documented on the fields; everything else
// is atomics or mutexes.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// A fresh descriptor for a team of `workers`, in reset state.
    pub(crate) fn new(workers: usize) -> Region {
        Region {
            next: AtomicPtr::new(std::ptr::null_mut()),
            root: UnsafeCell::new(MaybeUninit::uninit()),
            panic: Mutex::new(None),
            completion: Mutex::new(CompletionSlot::default()),
            budget: UnsafeCell::new(RegionBudget::Inherit),
            serializing: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            deadline_ms: AtomicU64::new(0),
            shed_mode: AtomicBool::new(false),
            result: UnsafeCell::new(ResultPayload([MaybeUninit::uninit(); RESULT_INLINE_BYTES])),
            result_written: AtomicBool::new(false),
            shards: (0..workers).map(|_| CacheAligned::default()).collect(),
            deps: DepTracker::new(),
            replay: RegionReplay::new(),
        }
    }

    /// Re-arms a recycled descriptor for a new lease.
    ///
    /// # Safety
    /// The caller must have exclusive access (the descriptor is freshly
    /// popped from the pool and not yet published anywhere).
    pub(crate) unsafe fn reset(&self, budget: RegionBudget) {
        for shard in self.shards.iter() {
            shard.0.spawned.store(0, Ordering::Relaxed);
            shard.0.executed.store(0, Ordering::Relaxed);
            shard.0.serialized.store(0, Ordering::Relaxed);
            shard.0.skipped.store(0, Ordering::Relaxed);
            shard.0.shed.store(0, Ordering::Relaxed);
            shard.0.queued.store(0, Ordering::Relaxed);
        }
        self.serializing.store(false, Ordering::Relaxed);
        self.cancelled.store(false, Ordering::Relaxed);
        self.deadline_ms.store(0, Ordering::Relaxed);
        self.shed_mode.store(false, Ordering::Relaxed);
        *self.budget.get() = budget;
        self.result_written.store(false, Ordering::Relaxed);
        *self.panic.lock().unwrap_or_else(|e| e.into_inner()) = None;
        *self.completion.lock().unwrap_or_else(|e| e.into_inner()) = CompletionSlot::default();
        // Drop the previous lease's dependency entries (exclusive here,
        // and happens-after that region's quiescence); the tracker's pools
        // keep their capacity, so the next lease's dep chains stay warm.
        self.deps.reset();
        self.replay.reset();
    }

    /// The embedded root record's slot. Always a valid address; the record
    /// itself is only initialised while the descriptor is leased.
    pub(crate) fn root(&self) -> NonNull<TaskRecord> {
        // Safety: the address of an embedded field is never null.
        unsafe { NonNull::new_unchecked(self.root.get().cast::<TaskRecord>()) }
    }

    /// Current reference count of the root record: the joiner's quiescence
    /// probe. `1` means every descendant record has been destroyed and only
    /// the joiner's handle remains.
    pub(crate) fn root_refs(&self) -> usize {
        unsafe { self.root().as_ref() }.refs()
    }

    /// Stores `payload` if this is the first panic of the region.
    pub(crate) fn store_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes the region's panic, if any (called by the joiner).
    pub(crate) fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// Registers a completion to fire at quiescence. Returns `None` when
    /// stored (the zero-transition will fire it, replacing any completion
    /// registered earlier — e.g. a stale waker from a previous poll), or
    /// gives `c` back when the region has **already** quiesced: the caller
    /// must then finish the region itself.
    pub(crate) fn register_completion(&self, c: Completion) -> Option<Completion> {
        let mut slot = self.completion.lock().unwrap_or_else(|e| e.into_inner());
        if slot.fired {
            return Some(c);
        }
        slot.pending = Some(c);
        None
    }

    /// Marks the region complete and takes whatever was registered. Called
    /// exactly once per lease, by the quiescence zero-transition; the
    /// returned completion must be fired *after* the lock is dropped.
    pub(crate) fn complete(&self) -> Option<Completion> {
        let mut slot = self.completion.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(!slot.fired, "region quiescence fired twice");
        slot.fired = true;
        slot.pending.take()
    }

    /// Has the quiescence transition fired the completion slot yet?
    ///
    /// Finishing paths that observed quiescence through the root *refcount*
    /// must gate on this before touching result/panic or returning the
    /// lease: the thread that performed the 2→1 drop is still about to
    /// dereference the descriptor inside its completion fire, a few
    /// instructions behind the refcount store.
    pub(crate) fn completion_fired(&self) -> bool {
        self.completion
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .fired
    }

    /// Stores the root closure's result in the inline slot (or one spill
    /// box past the inline capacity — returns `true` in that case).
    ///
    /// # Safety
    /// Called at most once per lease, by the root task, with no concurrent
    /// reader (readers wait for quiescence).
    pub(crate) unsafe fn store_result<R>(&self, value: R) -> bool {
        let payload = self.result.get().cast::<u8>();
        let spilled =
            if size_of::<R>() <= RESULT_INLINE_BYTES && align_of::<R>() <= RESULT_INLINE_ALIGN {
                payload.cast::<R>().write(value);
                false
            } else {
                payload
                    .cast::<*mut R>()
                    .write(Box::into_raw(Box::new(value)));
                true
            };
        // Release pairs with the Acquire in `result_written`: a reader that
        // sees `true` sees the payload bytes. (Quiescence alone already
        // orders the common paths; this covers direct probes.)
        self.result_written.store(true, Ordering::Release);
        spilled
    }

    /// Did the root store a result it has not been relieved of yet?
    pub(crate) fn result_written(&self) -> bool {
        self.result_written.load(Ordering::Acquire)
    }

    /// Moves the stored result out.
    ///
    /// # Safety
    /// `R` must be the type passed to [`store_result`](Self::store_result),
    /// [`result_written`](Self::result_written) must have returned `true`,
    /// and the caller must have exclusive post-quiescence access.
    pub(crate) unsafe fn take_result<R>(&self) -> R {
        self.result_written.store(false, Ordering::Relaxed);
        let payload = self.result.get().cast::<u8>();
        if size_of::<R>() <= RESULT_INLINE_BYTES && align_of::<R>() <= RESULT_INLINE_ALIGN {
            payload.cast::<R>().read()
        } else {
            *Box::from_raw(payload.cast::<*mut R>().read())
        }
    }

    /// Raises the cooperative cancel flag. Returns `true` when this call
    /// was the transition (the region was not cancelled before).
    #[inline]
    pub(crate) fn cancel(&self) -> bool {
        !self.cancelled.swap(true, Ordering::Relaxed)
    }

    /// Has the region been cancelled? Checked at task scheduling points;
    /// Relaxed is enough — cancellation is a monotone flag and the
    /// quiescence protocol supplies the eventual synchronisation.
    #[inline]
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Arms the region's deadline, in runtime coarse-clock milliseconds.
    /// Written once at lease time, before the root is published.
    #[inline]
    pub(crate) fn set_deadline_ms(&self, at: u64) {
        self.deadline_ms.store(at, Ordering::Relaxed);
    }

    /// The armed deadline in coarse-clock milliseconds (`0` = none).
    #[inline]
    pub(crate) fn deadline_ms(&self) -> u64 {
        self.deadline_ms.load(Ordering::Relaxed)
    }

    /// Puts the region in shed mode (set at submit time, before the root
    /// is published, when the runtime is over its in-flight watermark).
    #[inline]
    pub(crate) fn set_shed_mode(&self) {
        self.shed_mode.store(true, Ordering::Relaxed);
    }

    /// Is the region shedding (serialising its clause-free spawns)?
    #[inline]
    pub(crate) fn shed_mode(&self) -> bool {
        self.shed_mode.load(Ordering::Relaxed)
    }

    /// The region's dependency tracker.
    #[inline]
    pub(crate) fn deps(&self) -> &DepTracker {
        &self.deps
    }

    /// The region's record-and-replay state.
    #[inline]
    pub(crate) fn replay(&self) -> &RegionReplay {
        &self.replay
    }

    /// This worker's attribution shard.
    #[inline]
    pub(crate) fn shard(&self, worker: usize) -> &RegionShard {
        &self.shards[worker].0
    }

    /// Sum of the per-worker queued shards, clamped at zero (shards may be
    /// transiently negative; the total drives a heuristic, not correctness).
    pub(crate) fn queued_estimate(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.0.queued.load(Ordering::Relaxed))
            .sum::<isize>()
            .max(0) as usize
    }

    /// Should a spawn of this region be serialised by the region's own
    /// budget? Checked against the region's private queued count, so a
    /// tripping budget slows *this* region down and nobody else.
    #[inline]
    pub(crate) fn budget_trips(&self) -> bool {
        // Safety: written once at lease time, before the region was
        // published; spawners observed the publication edge.
        match unsafe { *self.budget.get() } {
            RegionBudget::Inherit => false,
            RegionBudget::MaxQueued(n) => self.queued_estimate() >= n,
            RegionBudget::Adaptive { low, high } => {
                let queued = self.queued_estimate();
                if self.serializing.load(Ordering::Relaxed) {
                    if queued < low {
                        self.serializing.store(false, Ordering::Relaxed);
                        false
                    } else {
                        true
                    }
                } else if queued > high {
                    self.serializing.store(true, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Adjusts this worker's queued-count shard for the region.
    #[inline]
    pub(crate) fn queued_delta(&self, worker: usize, delta: isize) {
        let shard = &self.shards[worker].0.queued;
        // Single-writer per shard: a plain load+store cannot lose updates.
        shard.store(shard.load(Ordering::Relaxed) + delta, Ordering::Relaxed);
    }

    /// Aggregated attribution snapshot.
    pub(crate) fn stats(&self) -> RegionStats {
        let mut s = RegionStats::default();
        for shard in self.shards.iter() {
            s.spawned += shard.0.spawned.load(Ordering::Relaxed);
            s.executed += shard.0.executed.load(Ordering::Relaxed);
            s.serialized += shard.0.serialized.load(Ordering::Relaxed);
            s.skipped_tasks += shard.0.skipped.load(Ordering::Relaxed);
            s.shed += shard.0.shed.load(Ordering::Relaxed);
        }
        s.cancelled = self.is_cancelled();
        s.replay = self.replay.phase();
        s
    }
}

/// Task-traffic attribution for one region, summed across workers. Exposed
/// through [`RegionHandle::stats`](crate::pool::RegionHandle::stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Tasks deferred (queued) inside this region.
    pub spawned: u64,
    /// Deferred tasks of this region executed so far, including the region
    /// root itself.
    pub executed: u64,
    /// Spawns of this region run inline because the region's own
    /// [`RegionBudget`](crate::RegionBudget) tripped. Always zero for
    /// unbudgeted regions, however greedy their siblings are — that is the
    /// isolation the per-region budget buys.
    pub serialized: u64,
    /// Task bodies of this region that did **not** run because the region
    /// was cancelled: spawns suppressed at creation plus already-queued
    /// tasks dispatched with their closure discarded. Skipped tasks still
    /// perform full bookkeeping (dependency release, group leave, record
    /// reclaim), so a cancelled region drains rather than leaks.
    pub skipped_tasks: u64,
    /// Spawns run inline because the region was admitted in shed mode
    /// (the runtime was over its in-flight watermark at submit time).
    pub shed: u64,
    /// Was the region cancelled (explicitly or by its deadline)?
    pub cancelled: bool,
    /// Where record-and-replay stood at snapshot time: recording its first
    /// run under a shape token, replaying the frozen graph, diverged back
    /// to live registration, or not submitted through the replay API at
    /// all. See [`Runtime::submit_replay`](crate::Runtime::submit_replay).
    pub replay: ReplayPhase,
}

/// The descriptor free list: one Treiber shard per worker, submitter-hashed
/// on lease, with the same ABA-free swap-drain pop as the injector (the
/// swapped-out chain is exclusively owned, so re-publishing the remainder
/// is a plain push). Descriptors are never freed while the runtime lives:
/// `all` owns every descriptor ever created and frees them on drop,
/// including leases that were deliberately never returned.
pub(crate) struct RegionPool {
    shards: Box<[CacheAligned<AtomicPtr<Region>>]>,
    /// Every descriptor ever allocated (cold path; guarded by a mutex).
    all: Mutex<Vec<NonNull<Region>>>,
    /// Team size, for constructing fresh descriptors.
    workers: usize,
}

// Safety: shards are atomics; `all` is mutex-guarded; `Region` is Sync.
unsafe impl Send for RegionPool {}
unsafe impl Sync for RegionPool {}

impl RegionPool {
    pub(crate) fn new(workers: usize) -> RegionPool {
        RegionPool {
            shards: (0..workers.max(1))
                .map(|_| CacheAligned::default())
                .collect(),
            all: Mutex::new(Vec::new()),
            workers,
        }
    }

    /// Leases a descriptor, reset and armed with `budget`. Returns the
    /// descriptor and whether it had to be freshly allocated (`true`) or
    /// came recycled from the free list (`false`).
    pub(crate) fn lease(&self, slot: usize, budget: RegionBudget) -> (NonNull<Region>, bool) {
        let (region, fresh) = match self.pop(slot) {
            Some(r) => (r, false),
            None => {
                let r = NonNull::from(Box::leak(Box::new(Region::new(self.workers))));
                self.all.lock().unwrap_or_else(|e| e.into_inner()).push(r);
                (r, true)
            }
        };
        // Safety: popped or fresh — either way exclusively ours.
        unsafe { region.as_ref().reset(budget) };
        (region, fresh)
    }

    /// Returns a descriptor to the free list. The caller must be completely
    /// done with it: the next `lease` may hand it to another submitter.
    pub(crate) fn release(&self, region: NonNull<Region>, slot: usize) {
        let shard = &self.shards[slot % self.shards.len()].0;
        let mut head = shard.load(Ordering::Relaxed);
        loop {
            unsafe { region.as_ref().next.store(head, Ordering::Relaxed) };
            match shard.compare_exchange_weak(
                head,
                region.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    /// Pops one free descriptor, probing shards from `slot`. ABA-free: the
    /// whole shard chain is swapped out (exclusively owned thereafter), the
    /// head is kept, and the remainder is spliced back with a push-side CAS.
    fn pop(&self, slot: usize) -> Option<NonNull<Region>> {
        let n = self.shards.len();
        for k in 0..n {
            let shard = &self.shards[(slot + k) % n].0;
            let head = NonNull::new(shard.swap(std::ptr::null_mut(), Ordering::Acquire));
            let Some(head) = head else { continue };
            let rest = unsafe { head.as_ref() }.next.load(Ordering::Relaxed);
            if let Some(rest) = NonNull::new(rest) {
                // Walk to the chain's tail, then splice the remainder under
                // whatever has been pushed meanwhile.
                let mut tail = rest;
                while let Some(next) =
                    NonNull::new(unsafe { tail.as_ref() }.next.load(Ordering::Relaxed))
                {
                    tail = next;
                }
                let mut cur = shard.load(Ordering::Relaxed);
                loop {
                    unsafe { tail.as_ref().next.store(cur, Ordering::Relaxed) };
                    match shard.compare_exchange_weak(
                        cur,
                        rest.as_ptr(),
                        Ordering::Release,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
            return Some(head);
        }
        None
    }

    /// Free descriptors currently pooled (diagnostics/tests only; racy).
    #[cfg(test)]
    pub(crate) fn free_len(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            let mut cur = shard.0.load(Ordering::Acquire);
            while let Some(r) = NonNull::new(cur) {
                n += 1;
                cur = unsafe { r.as_ref() }.next.load(Ordering::Relaxed);
            }
        }
        n
    }
}

impl Drop for RegionPool {
    fn drop(&mut self) {
        // Owns every descriptor ever created, leased-and-forgotten ones
        // included (their memory stayed valid precisely because of this).
        let all = std::mem::take(&mut *self.all.lock().unwrap_or_else(|e| e.into_inner()));
        for region in all {
            drop(unsafe { Box::from_raw(region.as_ptr()) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegionBudget;

    #[test]
    fn panic_slot_keeps_first_payload() {
        let region = Region::new(2);
        assert!(region.take_panic().is_none());
        region.store_panic(Box::new("first"));
        region.store_panic(Box::new("second"));
        let got = region.take_panic().expect("payload stored");
        assert_eq!(*got.downcast_ref::<&str>().unwrap(), "first");
        assert!(region.take_panic().is_none(), "take drains the slot");
    }

    #[test]
    fn stats_sum_across_shards() {
        let region = Region::new(3);
        region.shard(0).spawned.store(5, Ordering::Relaxed);
        region.shard(2).spawned.store(7, Ordering::Relaxed);
        region.shard(1).executed.store(11, Ordering::Relaxed);
        region.shard(2).serialized.store(3, Ordering::Relaxed);
        let s = region.stats();
        assert_eq!(s.spawned, 12);
        assert_eq!(s.executed, 11);
        assert_eq!(s.serialized, 3);
    }

    #[test]
    fn result_round_trips_inline_and_spilled() {
        let region = Region::new(1);
        assert!(!region.result_written());
        let spilled = unsafe { region.store_result(41u64) };
        assert!(!spilled, "a u64 result stays inline");
        assert!(region.result_written());
        assert_eq!(unsafe { region.take_result::<u64>() }, 41);
        assert!(!region.result_written());

        let big = [7u8; 200];
        let spilled = unsafe { region.store_result(big) };
        assert!(spilled, "a 200-byte result spills");
        assert_eq!(unsafe { region.take_result::<[u8; 200]>() }, big);
    }

    #[test]
    fn completion_fires_registered_waker_once() {
        let region = Region::new(1);
        // Nothing registered: complete() returns None, later registration
        // hands the completion straight back.
        assert!(region.complete().is_none());
        let returned = region.register_completion(Completion::Detached(Box::new(|| {})));
        assert!(
            matches!(returned, Some(Completion::Detached(_))),
            "registration after completion must bounce back to the caller"
        );
    }

    #[test]
    fn registration_before_completion_is_taken_by_complete() {
        let region = Region::new(1);
        let fired = std::sync::Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        assert!(region
            .register_completion(Completion::Detached(Box::new(move || {
                f.store(true, Ordering::Relaxed)
            })))
            .is_none());
        match region.complete() {
            Some(Completion::Detached(cb)) => cb(),
            other => panic!(
                "expected the registered callback, got {:?}",
                other.is_some()
            ),
        }
        assert!(fired.load(Ordering::Relaxed));
    }

    #[test]
    fn budget_trips_on_own_queue_only() {
        let region = Region::new(2);
        unsafe { region.reset(RegionBudget::MaxQueued(4)) };
        assert!(!region.budget_trips());
        region.queued_delta(0, 3);
        assert!(!region.budget_trips());
        region.queued_delta(1, 1);
        assert!(region.budget_trips());
        region.queued_delta(0, -2);
        assert!(!region.budget_trips());
    }

    #[test]
    fn adaptive_budget_hysteresis() {
        let region = Region::new(1);
        unsafe { region.reset(RegionBudget::Adaptive { low: 2, high: 6 }) };
        region.queued_delta(0, 7);
        assert!(region.budget_trips(), "above high: serialise");
        region.queued_delta(0, -3); // 4: between low and high
        assert!(region.budget_trips(), "hysteresis holds until low");
        region.queued_delta(0, -3); // 1: below low
        assert!(!region.budget_trips(), "below low: defer again");
    }

    #[test]
    fn pool_recycles_descriptors() {
        let pool = RegionPool::new(2);
        let (a, fresh) = pool.lease(0, RegionBudget::Inherit);
        assert!(fresh, "empty pool allocates");
        let (b, fresh) = pool.lease(0, RegionBudget::Inherit);
        assert!(fresh);
        assert_ne!(a.as_ptr(), b.as_ptr());
        pool.release(a, 0);
        let (a2, fresh) = pool.lease(0, RegionBudget::MaxQueued(1));
        assert!(!fresh, "released descriptor must be recycled");
        assert_eq!(a2.as_ptr(), a.as_ptr());
        pool.release(a2, 0);
        pool.release(b, 1);
        assert_eq!(pool.free_len(), 2);
        // Drop frees everything (asan/miri would flag a double- or no-free).
    }

    #[test]
    fn pool_pop_republishes_remainder() {
        let pool = RegionPool::new(1);
        let leased: Vec<_> = (0..4)
            .map(|_| pool.lease(0, RegionBudget::Inherit).0)
            .collect();
        for &r in &leased {
            pool.release(r, 0);
        }
        assert_eq!(pool.free_len(), 4);
        let (_one, fresh) = pool.lease(0, RegionBudget::Inherit);
        assert!(!fresh);
        assert_eq!(pool.free_len(), 3, "pop takes exactly one descriptor");
    }
}
