//! Per-region descriptors: the state of one parallel region, extracted out
//! of the team-wide [`Shared`] block so that an arbitrary number of regions
//! can run concurrently on a single worker team.
//!
//! One [`Region`] is created per [`Runtime::submit`] / [`Runtime::parallel`]
//! call and holds everything whose scope is *that region*, nothing else:
//!
//! * the **root record** — the region's implicit task, whose refcount is the
//!   quiescence signal (it falls back to the joiner's lone handle exactly
//!   when every descendant record has been destroyed);
//! * the **panic slot** — the first panic raised by any task of the region,
//!   re-raised by the region's own joiner and invisible to every other
//!   region;
//! * **stats attribution** — per-worker sharded spawned/executed counters,
//!   so a server can tell which region generated which task traffic without
//!   the global per-worker counters losing their meaning.
//!
//! Records reach their region through a raw pointer stored in every
//! [`TaskRecord`] at init (children inherit it from their parent). The
//! pointer stays valid for as long as any record of the region is live: the
//! joiner only drops its `Arc<Region>` after observing root quiescence, and
//! every live record transitively holds a reference on the root, so the
//! root's count cannot reach the joiner's lone handle while a record that
//! could dereference the pointer still exists.
//!
//! [`Shared`]: crate::pool::Runtime
//! [`Runtime::submit`]: crate::pool::Runtime::submit
//! [`Runtime::parallel`]: crate::pool::Runtime::parallel

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::local::CacheAligned;
use crate::task::TaskRecord;

/// A panic payload captured from a task.
pub(crate) type PanicPayload = Box<dyn std::any::Any + Send>;

/// Per-worker attribution shard: padded so two workers bumping counters for
/// the same region never share a cache line (the spawn path must stay
/// contention-free).
#[derive(Default)]
pub(crate) struct RegionShard {
    /// Tasks deferred (queued) on behalf of this region by this worker.
    pub(crate) spawned: AtomicU64,
    /// Deferred tasks of this region executed by this worker (the region
    /// root counts too — it runs through the same execute path).
    pub(crate) executed: AtomicU64,
}

/// State of one in-flight parallel region. See the module docs.
pub(crate) struct Region {
    /// The region's root (implicit-task) record; set once at submit time,
    /// before the root is published to the injector.
    root: AtomicPtr<TaskRecord>,
    /// First panic payload raised by any task of this region. Isolated here
    /// so a panic in region A can never be re-raised into region B's caller.
    panic: Mutex<Option<PanicPayload>>,
    /// Per-worker attribution counters, indexed by worker.
    shards: Box<[CacheAligned<RegionShard>]>,
}

// Safety: the root pointer is an atomic cell over a record whose lifetime is
// governed by the refcount protocol above; the panic slot is a Mutex; the
// shards are atomics. All cross-thread access is through those.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// A fresh descriptor for a team of `workers`.
    pub(crate) fn new(workers: usize) -> Region {
        Region {
            root: AtomicPtr::new(std::ptr::null_mut()),
            panic: Mutex::new(None),
            shards: (0..workers).map(|_| CacheAligned::default()).collect(),
        }
    }

    /// Records the root once it exists (the root record needs the region
    /// pointer at init, so the region is created first).
    pub(crate) fn set_root(&self, root: NonNull<TaskRecord>) {
        self.root.store(root.as_ptr(), Ordering::Release);
    }

    /// The root record. Panics if called before [`set_root`](Self::set_root)
    /// (a submit-path ordering bug, not a runtime condition).
    pub(crate) fn root(&self) -> NonNull<TaskRecord> {
        NonNull::new(self.root.load(Ordering::Acquire)).expect("region root not set")
    }

    /// Current reference count of the root record: the joiner's quiescence
    /// probe. `1` means every descendant record has been destroyed and only
    /// the joiner's handle remains.
    pub(crate) fn root_refs(&self) -> usize {
        unsafe { self.root().as_ref() }.refs()
    }

    /// Stores `payload` if this is the first panic of the region.
    pub(crate) fn store_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes the region's panic, if any (called by the joiner).
    pub(crate) fn take_panic(&self) -> Option<PanicPayload> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// This worker's attribution shard.
    #[inline]
    pub(crate) fn shard(&self, worker: usize) -> &RegionShard {
        &self.shards[worker].0
    }

    /// Aggregated attribution snapshot.
    pub(crate) fn stats(&self) -> RegionStats {
        let mut s = RegionStats::default();
        for shard in self.shards.iter() {
            s.spawned += shard.0.spawned.load(Ordering::Relaxed);
            s.executed += shard.0.executed.load(Ordering::Relaxed);
        }
        s
    }
}

/// Task-traffic attribution for one region, summed across workers. Exposed
/// through [`RegionHandle::stats`](crate::pool::RegionHandle::stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Tasks deferred (queued) inside this region.
    pub spawned: u64,
    /// Deferred tasks of this region executed so far, including the region
    /// root itself.
    pub executed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_slot_keeps_first_payload() {
        let region = Region::new(2);
        assert!(region.take_panic().is_none());
        region.store_panic(Box::new("first"));
        region.store_panic(Box::new("second"));
        let got = region.take_panic().expect("payload stored");
        assert_eq!(*got.downcast_ref::<&str>().unwrap(), "first");
        assert!(region.take_panic().is_none(), "take drains the slot");
    }

    #[test]
    fn stats_sum_across_shards() {
        let region = Region::new(3);
        region.shard(0).spawned.store(5, Ordering::Relaxed);
        region.shard(2).spawned.store(7, Ordering::Relaxed);
        region.shard(1).executed.store(11, Ordering::Relaxed);
        let s = region.stats();
        assert_eq!(s.spawned, 12);
        assert_eq!(s.executed, 11);
    }
}
