//! Runtime statistics: per-worker counters aggregated into a
//! [`RuntimeStats`] snapshot.
//!
//! The counters are the observable half of the experiments in §IV of the
//! paper: number of tasks actually deferred vs inlined by the if-clause or
//! the runtime cut-off, steal traffic, parks, and taskwaits. They are also
//! asserted in the runtime's own test-suite (e.g. "the if-clause version
//! still performs task bookkeeping, the manual version does not").

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker counter block, padded to a cache line to avoid false sharing
/// on the hot spawn/execute paths.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerCounters {
    /// Tasks pushed to a deque (deferred).
    pub spawned: AtomicU64,
    /// Tasks executed inline because `if(false)` was passed.
    pub inlined_if: AtomicU64,
    /// Tasks executed inline because the *runtime* cut-off tripped.
    pub inlined_cutoff: AtomicU64,
    /// Tasks executed inline because an ancestor was `final`.
    pub inlined_final: AtomicU64,
    /// Tasks executed inline because their *region's* cut-off budget
    /// tripped (see `RegionBudget`).
    pub inlined_budget: AtomicU64,
    /// Deferred tasks this worker executed (own or stolen).
    pub executed: AtomicU64,
    /// Tasks obtained from another worker's deque.
    pub stolen: AtomicU64,
    /// Steal probes that came back empty/raced.
    pub steal_misses: AtomicU64,
    /// Times this worker blocked on the event count.
    pub parks: AtomicU64,
    /// `taskwait`s executed by tasks running on this worker.
    pub taskwaits: AtomicU64,
    /// `taskgroup` waits executed by tasks running on this worker. Counted
    /// apart from `taskwaits`: folding them together silently inflated the
    /// Table II taskwait column for every kernel built on taskgroups.
    pub group_waits: AtomicU64,
    /// Tasks executed *while waiting* at a taskwait (task switching).
    pub switched_in_wait: AtomicU64,
    /// Steals skipped because the tied-task constraint forbade them.
    pub tied_steal_denied: AtomicU64,
    /// Task records drawn from a freshly heap-allocated slab chunk.
    pub slab_fresh: AtomicU64,
    /// Task records recycled from a slab free list (zero-allocation spawns).
    pub slab_recycled: AtomicU64,
    /// Records freed by a non-owning thread and routed home through a
    /// slab's cross-thread reclaim stack.
    pub slab_cross_freed: AtomicU64,
    /// Spawn closures that outgrew the record's inline payload and spilled
    /// to a heap box (spill telemetry: kernels assert this stays zero).
    pub closure_spilled: AtomicU64,
    /// Wakes this worker issued to the next sleeper because it still saw
    /// work after being woken itself (geometric ramp-up events).
    pub wake_propagations: AtomicU64,
    /// Taskgroup descriptors leased from a fresh heap allocation (group
    /// pool growth events).
    pub groups_fresh: AtomicU64,
    /// Taskgroup descriptors recycled from the group pool free list:
    /// `taskgroup` uses that performed zero heap allocations.
    pub groups_recycled: AtomicU64,
    /// `depend` clauses registered with the per-region dependency tracker
    /// (one per clause, not per task).
    pub deps_registered: AtomicU64,
    /// Tasks held back in the Deferred state because a predecessor had not
    /// retired when their clauses were registered.
    pub deps_deferred: AtomicU64,
    /// Deferred tasks this worker released (queued) while retiring one of
    /// their predecessors on the task-exit path.
    pub deps_released: AtomicU64,
    /// Tasks whose user body was skipped by cancellation: spawns suppressed
    /// after the cancel flag rose plus queued tasks dispatched in skip mode
    /// (full bookkeeping — dep retire, group leave, refcounts — no body).
    pub skipped: AtomicU64,
    /// Clause-free tasks serialised inline because their region was
    /// admitted in shed (overload) mode.
    pub inlined_shed: AtomicU64,
    /// Worksharing-loop descriptors leased from a fresh heap allocation
    /// (loop pool growth events).
    pub loops_fresh: AtomicU64,
    /// Worksharing-loop descriptors recycled from the loop pool free list:
    /// worksharing loops that performed zero heap allocations.
    pub loops_recycled: AtomicU64,
    /// Worksharing-loop participations: owner or helper entering a loop's
    /// claim cycle (bounded by team size per loop, not by chunk count).
    pub ws_participations: AtomicU64,
    /// Chunks claimed and executed through worksharing claim cursors.
    pub ws_chunks: AtomicU64,
    /// Continuations leased from a fresh heap allocation (continuation pool
    /// growth events — the fiber analogue of `slab_fresh`).
    pub conts_fresh: AtomicU64,
    /// Continuations recycled from a continuation-pool free list: suspends
    /// that performed zero heap allocations.
    pub conts_recycled: AtomicU64,
    /// Waits that could not complete at the scheduling point and suspended
    /// their frame onto a pooled continuation.
    pub cont_suspends: AtomicU64,
    /// Suspended continuations resumed off a deque. At quiescence
    /// `cont_suspends == cont_resumes` (every suspend is resumed exactly
    /// once).
    pub cont_resumes: AtomicU64,
    /// Resumes dispatched by a different worker than the one the frame
    /// suspended on: blocked waiters that migrated.
    pub cont_migrations: AtomicU64,
}

impl WorkerCounters {
    /// Increments a counter of a **single-writer** block: every
    /// `WorkerCounters` field is only ever bumped by its owning worker (and
    /// every `RegionShard` field by the worker the shard is indexed by), so
    /// a plain load+store — no lock-prefixed RMW — cannot lose updates.
    /// Cross-thread readers (`Runtime::stats`) see a slightly stale but
    /// monotonic value, which is all a statistics snapshot promises.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.store(counter.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// [`bump`](Self::bump) by `n` (same single-writer contract).
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.store(counter.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }
}

/// Aggregated snapshot of the whole team's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks deferred (queued).
    pub spawned: u64,
    /// Tasks inlined via `if(false)`.
    pub inlined_if: u64,
    /// Tasks inlined by the runtime cut-off.
    pub inlined_cutoff: u64,
    /// Tasks inlined below a `final` task.
    pub inlined_final: u64,
    /// Tasks inlined by a per-region budget
    /// ([`RegionBudget`](crate::RegionBudget)).
    pub inlined_budget: u64,
    /// Deferred tasks executed.
    pub executed: u64,
    /// Successful steals.
    pub stolen: u64,
    /// Failed steal probes.
    pub steal_misses: u64,
    /// Worker park events.
    pub parks: u64,
    /// taskwait calls.
    pub taskwaits: u64,
    /// taskgroup waits (the deep-wait scheduling points; reported apart
    /// from `taskwaits` so the Table II taskwait counts stay honest).
    pub group_waits: u64,
    /// Tasks run inside a taskwait (task switching events).
    pub switched_in_wait: u64,
    /// Steals denied by the tied-task scheduling constraint.
    pub tied_steal_denied: u64,
    /// Task records carved from fresh slab chunks (pool growth events).
    pub slab_fresh: u64,
    /// Task records recycled from slab free lists: spawns that performed
    /// zero heap allocations.
    pub slab_recycled: u64,
    /// Records that flowed home through a cross-thread reclaim stack.
    pub slab_cross_freed: u64,
    /// Spawn closures (root closures included) that spilled past the
    /// record's inline bytes to a heap box: each one is a spawn that was
    /// not allocation-free.
    pub closure_spilled: u64,
    /// Wake-propagation events: a freshly woken worker saw more work and
    /// woke the next sleeper.
    pub wake_propagations: u64,
    /// Region descriptors leased from a fresh heap allocation (pool growth
    /// events — the region-level analogue of `slab_fresh`).
    pub regions_fresh: u64,
    /// Region descriptors recycled from the pool free list: submissions
    /// that performed zero heap allocations.
    pub regions_recycled: u64,
    /// Taskgroup descriptors leased from fresh heap allocations (group
    /// pool growth events — the taskgroup analogue of `slab_fresh`).
    pub groups_fresh: u64,
    /// Taskgroup descriptors recycled from the group pool free list:
    /// `taskgroup` uses that performed zero heap allocations.
    pub groups_recycled: u64,
    /// `depend` clauses registered (one per clause; a task with three
    /// clauses counts three).
    pub deps_registered: u64,
    /// Tasks that entered the Deferred state — spawned with clauses whose
    /// predecessors had not all retired yet.
    pub deps_deferred: u64,
    /// Deferred tasks released by a retiring predecessor (every deferred
    /// task is eventually released exactly once).
    pub deps_released: u64,
    /// Tasks whose body was skipped by cancellation (suppressed spawns +
    /// skip-mode dispatches). See [`RegionStats::skipped_tasks`] for the
    /// per-region view.
    ///
    /// [`RegionStats::skipped_tasks`]: crate::RegionStats::skipped_tasks
    pub skipped: u64,
    /// Clause-free tasks serialised inline under overload shedding.
    pub inlined_shed: u64,
    /// Regions cancelled (explicitly or by a missed deadline). Counted
    /// once per region, at the flag's rising edge.
    pub regions_cancelled: u64,
    /// Submissions refused or degraded by the live-region watermark
    /// ([`RuntimeConfig::with_max_live_regions`]): `try_submit` rejections
    /// plus infallible submissions admitted in shed mode.
    ///
    /// [`RuntimeConfig::with_max_live_regions`]: crate::RuntimeConfig::with_max_live_regions
    pub submissions_shed: u64,
    /// Replay-token submits ([`Runtime::submit_replay`]) that ran live and
    /// recorded (then froze and cached) their region's dependency DAG.
    ///
    /// [`Runtime::submit_replay`]: crate::Runtime::submit_replay
    pub replays_recorded: u64,
    /// Replay-token submits served entirely off a cached frozen graph —
    /// zero tracker traffic. Together with `replays_diverged` this accounts
    /// for every submit that was armed with a leased graph:
    /// `replays_hit + replays_diverged` = replayed submits.
    pub replays_hit: u64,
    /// Replays whose spawn sequence stopped matching the recording: the
    /// region drained its matched prefix, fell back to live registration
    /// and invalidated the cached graph.
    pub replays_diverged: u64,
    /// Cached frozen graphs evicted (least-recently-armed first) to admit
    /// a new shape token past [`RuntimeConfig::replay_cache`] capacity.
    ///
    /// [`RuntimeConfig::replay_cache`]: crate::RuntimeConfig::replay_cache
    pub graphs_evicted: u64,
    /// Worksharing-loop descriptors leased from fresh heap allocations
    /// (loop pool growth events — the loop analogue of `groups_fresh`).
    pub loops_fresh: u64,
    /// Worksharing-loop descriptors recycled from the loop pool free list:
    /// worksharing loops that performed zero heap allocations.
    pub loops_recycled: u64,
    /// Worksharing-loop participations (owner + helpers entering a loop's
    /// claim cycle). Bounded by team size per loop, not by chunk count —
    /// the cost model worksharing mode exists for.
    pub ws_participations: u64,
    /// Chunks claimed off worksharing claim cursors and executed.
    pub ws_chunks: u64,
    /// Continuations leased from fresh heap allocations (continuation pool
    /// growth events).
    pub conts_fresh: u64,
    /// Continuations recycled from continuation-pool free lists: suspends
    /// that performed zero heap allocations.
    pub conts_recycled: u64,
    /// Waits that suspended onto a pooled continuation instead of pinning
    /// the worker's native stack.
    pub cont_suspends: u64,
    /// Suspended continuations resumed. Standing invariant at quiescence:
    /// `cont_suspends == cont_resumes`.
    pub cont_resumes: u64,
    /// Resumes that ran on a different worker than the suspend: migrated
    /// waiters (the continuation-stealing events).
    pub cont_migrations: u64,
}

impl RuntimeStats {
    pub(crate) fn accumulate(&mut self, w: &WorkerCounters) {
        self.spawned += w.spawned.load(Ordering::Relaxed);
        self.inlined_if += w.inlined_if.load(Ordering::Relaxed);
        self.inlined_cutoff += w.inlined_cutoff.load(Ordering::Relaxed);
        self.inlined_final += w.inlined_final.load(Ordering::Relaxed);
        self.inlined_budget += w.inlined_budget.load(Ordering::Relaxed);
        self.executed += w.executed.load(Ordering::Relaxed);
        self.stolen += w.stolen.load(Ordering::Relaxed);
        self.steal_misses += w.steal_misses.load(Ordering::Relaxed);
        self.parks += w.parks.load(Ordering::Relaxed);
        self.taskwaits += w.taskwaits.load(Ordering::Relaxed);
        self.group_waits += w.group_waits.load(Ordering::Relaxed);
        self.switched_in_wait += w.switched_in_wait.load(Ordering::Relaxed);
        self.tied_steal_denied += w.tied_steal_denied.load(Ordering::Relaxed);
        self.slab_fresh += w.slab_fresh.load(Ordering::Relaxed);
        self.slab_recycled += w.slab_recycled.load(Ordering::Relaxed);
        self.slab_cross_freed += w.slab_cross_freed.load(Ordering::Relaxed);
        self.closure_spilled += w.closure_spilled.load(Ordering::Relaxed);
        self.wake_propagations += w.wake_propagations.load(Ordering::Relaxed);
        self.groups_fresh += w.groups_fresh.load(Ordering::Relaxed);
        self.groups_recycled += w.groups_recycled.load(Ordering::Relaxed);
        self.deps_registered += w.deps_registered.load(Ordering::Relaxed);
        self.deps_deferred += w.deps_deferred.load(Ordering::Relaxed);
        self.deps_released += w.deps_released.load(Ordering::Relaxed);
        self.skipped += w.skipped.load(Ordering::Relaxed);
        self.inlined_shed += w.inlined_shed.load(Ordering::Relaxed);
        self.loops_fresh += w.loops_fresh.load(Ordering::Relaxed);
        self.loops_recycled += w.loops_recycled.load(Ordering::Relaxed);
        self.ws_participations += w.ws_participations.load(Ordering::Relaxed);
        self.ws_chunks += w.ws_chunks.load(Ordering::Relaxed);
        self.conts_fresh += w.conts_fresh.load(Ordering::Relaxed);
        self.conts_recycled += w.conts_recycled.load(Ordering::Relaxed);
        self.cont_suspends += w.cont_suspends.load(Ordering::Relaxed);
        self.cont_resumes += w.cont_resumes.load(Ordering::Relaxed);
        self.cont_migrations += w.cont_migrations.load(Ordering::Relaxed);
    }

    /// Total task-creation points the runtime saw (deferred + every kind of
    /// runtime-visible inlining). This is the paper's "number of potential
    /// tasks" for versions that call into the runtime; manual-cut-off
    /// versions bypass the runtime and therefore do not count here.
    pub fn creation_points(&self) -> u64 {
        self.spawned
            + self.inlined_if
            + self.inlined_cutoff
            + self.inlined_final
            + self.inlined_budget
            + self.inlined_shed
    }

    /// Fraction of deferred tasks that migrated between workers.
    pub fn steal_ratio(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.stolen as f64 / self.executed as f64
        }
    }

    /// Difference between two snapshots (self - earlier).
    pub fn since(&self, earlier: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            spawned: self.spawned - earlier.spawned,
            inlined_if: self.inlined_if - earlier.inlined_if,
            inlined_cutoff: self.inlined_cutoff - earlier.inlined_cutoff,
            inlined_final: self.inlined_final - earlier.inlined_final,
            inlined_budget: self.inlined_budget - earlier.inlined_budget,
            executed: self.executed - earlier.executed,
            stolen: self.stolen - earlier.stolen,
            steal_misses: self.steal_misses - earlier.steal_misses,
            parks: self.parks - earlier.parks,
            taskwaits: self.taskwaits - earlier.taskwaits,
            group_waits: self.group_waits - earlier.group_waits,
            switched_in_wait: self.switched_in_wait - earlier.switched_in_wait,
            tied_steal_denied: self.tied_steal_denied - earlier.tied_steal_denied,
            slab_fresh: self.slab_fresh - earlier.slab_fresh,
            slab_recycled: self.slab_recycled - earlier.slab_recycled,
            slab_cross_freed: self.slab_cross_freed - earlier.slab_cross_freed,
            closure_spilled: self.closure_spilled - earlier.closure_spilled,
            wake_propagations: self.wake_propagations - earlier.wake_propagations,
            regions_fresh: self.regions_fresh - earlier.regions_fresh,
            regions_recycled: self.regions_recycled - earlier.regions_recycled,
            groups_fresh: self.groups_fresh - earlier.groups_fresh,
            groups_recycled: self.groups_recycled - earlier.groups_recycled,
            deps_registered: self.deps_registered - earlier.deps_registered,
            deps_deferred: self.deps_deferred - earlier.deps_deferred,
            deps_released: self.deps_released - earlier.deps_released,
            skipped: self.skipped - earlier.skipped,
            inlined_shed: self.inlined_shed - earlier.inlined_shed,
            regions_cancelled: self.regions_cancelled - earlier.regions_cancelled,
            submissions_shed: self.submissions_shed - earlier.submissions_shed,
            replays_recorded: self.replays_recorded - earlier.replays_recorded,
            replays_hit: self.replays_hit - earlier.replays_hit,
            replays_diverged: self.replays_diverged - earlier.replays_diverged,
            graphs_evicted: self.graphs_evicted - earlier.graphs_evicted,
            loops_fresh: self.loops_fresh - earlier.loops_fresh,
            loops_recycled: self.loops_recycled - earlier.loops_recycled,
            ws_participations: self.ws_participations - earlier.ws_participations,
            ws_chunks: self.ws_chunks - earlier.ws_chunks,
            conts_fresh: self.conts_fresh - earlier.conts_fresh,
            conts_recycled: self.conts_recycled - earlier.conts_recycled,
            cont_suspends: self.cont_suspends - earlier.cont_suspends,
            cont_resumes: self.cont_resumes - earlier.cont_resumes,
            cont_migrations: self.cont_migrations - earlier.cont_migrations,
        }
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spawned={} inlined(if/cutoff/final/budget)={}/{}/{}/{} executed={} stolen={} \
             misses={} parks={} taskwaits={} group_waits={} switched={} tied_denied={} \
             slab(fresh/recycled/cross)={}/{}/{} regions(fresh/recycled)={}/{} \
             groups(fresh/recycled)={}/{} deps(reg/deferred/released)={}/{}/{} \
             spilled={} propagated={} skipped={} inlined_shed={} \
             cancelled={} shed={} \
             replays(recorded/hit/diverged/evicted)={}/{}/{}/{} \
             loops(fresh/recycled)={}/{} ws(parts/chunks)={}/{} \
             conts(fresh/recycled)={}/{} cont(suspends/resumes/migrations)={}/{}/{}",
            self.spawned,
            self.inlined_if,
            self.inlined_cutoff,
            self.inlined_final,
            self.inlined_budget,
            self.executed,
            self.stolen,
            self.steal_misses,
            self.parks,
            self.taskwaits,
            self.group_waits,
            self.switched_in_wait,
            self.tied_steal_denied,
            self.slab_fresh,
            self.slab_recycled,
            self.slab_cross_freed,
            self.regions_fresh,
            self.regions_recycled,
            self.groups_fresh,
            self.groups_recycled,
            self.deps_registered,
            self.deps_deferred,
            self.deps_released,
            self.closure_spilled,
            self.wake_propagations,
            self.skipped,
            self.inlined_shed,
            self.regions_cancelled,
            self.submissions_shed,
            self.replays_recorded,
            self.replays_hit,
            self.replays_diverged,
            self.graphs_evicted,
            self.loops_fresh,
            self.loops_recycled,
            self.ws_participations,
            self.ws_chunks,
            self.conts_fresh,
            self.conts_recycled,
            self.cont_suspends,
            self.cont_resumes,
            self.cont_migrations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_counters() {
        let w = WorkerCounters::default();
        w.spawned.store(5, Ordering::Relaxed);
        w.executed.store(5, Ordering::Relaxed);
        w.stolen.store(2, Ordering::Relaxed);
        let mut s = RuntimeStats::default();
        s.accumulate(&w);
        s.accumulate(&w);
        assert_eq!(s.spawned, 10);
        assert_eq!(s.stolen, 4);
        assert!((s.steal_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn creation_points_counts_all_runtime_visible_tasks() {
        let s = RuntimeStats {
            spawned: 10,
            inlined_if: 3,
            inlined_cutoff: 2,
            inlined_final: 1,
            inlined_budget: 4,
            ..Default::default()
        };
        assert_eq!(s.creation_points(), 20);
    }

    #[test]
    fn since_subtracts() {
        let a = RuntimeStats {
            spawned: 10,
            executed: 9,
            ..Default::default()
        };
        let b = RuntimeStats {
            spawned: 4,
            executed: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.spawned, 6);
        assert_eq!(d.executed, 7);
    }

    #[test]
    fn display_is_humane() {
        let s = RuntimeStats::default();
        let text = format!("{s}");
        assert!(text.contains("spawned=0"));
        assert!(text.contains("taskwaits=0"));
        assert!(text.contains("group_waits=0"));
        assert!(text.contains("groups(fresh/recycled)=0/0"));
        assert!(text.contains("loops(fresh/recycled)=0/0"));
        assert!(text.contains("ws(parts/chunks)=0/0"));
        assert!(text.contains("conts(fresh/recycled)=0/0"));
        assert!(text.contains("cont(suspends/resumes/migrations)=0/0/0"));
    }

    #[test]
    fn group_waits_do_not_skew_taskwaits() {
        // The Table II skew regression: a taskgroup wait lands in
        // `group_waits`, never in `taskwaits`.
        let w = WorkerCounters::default();
        WorkerCounters::bump(&w.group_waits);
        WorkerCounters::bump(&w.group_waits);
        WorkerCounters::bump(&w.taskwaits);
        let mut s = RuntimeStats::default();
        s.accumulate(&w);
        assert_eq!(s.taskwaits, 1);
        assert_eq!(s.group_waits, 2);
        let d = s.since(&RuntimeStats::default());
        assert_eq!(d.group_waits, 2);
    }
}
