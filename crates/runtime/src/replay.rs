//! Task-graph record-and-replay: cache a region's dependency DAG and
//! re-execute it with **zero tracker traffic**.
//!
//! A server handling structurally-identical requests re-registers the same
//! dependency graph on every submit: the tracker ([`crate::deps`]) takes
//! the map mutex per clause list and walks bucket chains even when the
//! answer is the same every time. Record-and-replay removes that cost for
//! shape-stable regions, in the spirit of Taskgraph (Yu et al.):
//!
//! * the **first** execution under a user-supplied shape token
//!   ([`Runtime::submit_replay`]) runs live and *records* the DAG the
//!   tracker computes — spawn order, renamed clause sequence and the
//!   logical edge set — into an immutable [`FrozenGraph`];
//! * **subsequent** submits with the same token skip live registration
//!   entirely: each dependency task claims the next frozen slot, whose
//!   release counter was pre-seeded from the frozen in-degree and whose
//!   successor list is a slice of a flat CSR array — no tracker mutex, no
//!   map buckets, no pool traffic.
//!
//! ## Canonical address renaming
//!
//! Clause addresses are renamed to dense ids in **first-occurrence order**
//! at record time; replay renames through a lock-free open-addressed table
//! re-armed per execution. Two executions over *different* addresses (a
//! fresh matrix per request, say) therefore replay the same graph, while a
//! structural change — different clause on the same position of the spawn
//! sequence — changes the renamed sequence and is caught by the hash.
//!
//! ## Divergence
//!
//! Each frozen slot carries a hash of the task's renamed clause sequence.
//! A replayed spawn whose clauses hash differently (or that overruns the
//! recorded task count) **diverges**: the region falls back to live
//! registration — after draining the already-replayed prefix, which is
//! safe because recorded edges always point from earlier to later spawns,
//! so the matched prefix is closed under predecessors — and the cached
//! graph is invalidated rather than left to corrupt a future execution.
//!
//! ## Pooling and the zero-allocation warm path
//!
//! The graph **cache is the pool**: a warm replay leases the frozen graph
//! out of the cache entry and returns it at region finish, so steady-state
//! replay allocates nothing — per-execution state is the pre-sized slot
//! array inside the graph plus the existing pooled [`TaskRecord`]s.
//! Recording and freezing allocate freely (they happen once per token);
//! eviction and divergence drop graphs (cold events by construction).
//!
//! [`Runtime::submit_replay`]: crate::Runtime::submit_replay

use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::deps::{DepAccess, DepClause};
use crate::task::TaskRecord;

/// Replay is disengaged for this region (plain live registration).
pub(crate) const MODE_OFF: u8 = 0;
/// First execution under the token: live registration + recording.
pub(crate) const MODE_RECORDING: u8 = 1;
/// Warm execution: frozen slots, no tracker traffic.
pub(crate) const MODE_REPLAYING: u8 = 2;
/// The replay diverged; the rest of the region registers live.
pub(crate) const MODE_DIVERGED: u8 = 3;

/// FNV-1a offset basis: the per-task clause hash accumulator seed.
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One mixing step of the clause hash (multiply-xorshift; the quality bar
/// is "structural changes flip the hash", not cryptography).
fn mix(h: u64, v: u64) -> u64 {
    let h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 29)
}

/// What one clause contributes to its task's hash: the renamed address id
/// and the access direction.
fn clause_tag(id: u32, access: DepAccess) -> u64 {
    ((id as u64) << 1) | matches!(access, DepAccess::Write) as u64
}

/// Where replay stood when a region finished — the per-region face of the
/// team-wide `replays_*` counters, surfaced in
/// [`RegionStats`](crate::RegionStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplayPhase {
    /// The region was not submitted through the replay API (or the token
    /// was busy in another in-flight region and the submit ran plain).
    #[default]
    Off,
    /// First execution under its token: the DAG was being recorded.
    Recording,
    /// Warm execution off the frozen graph, no tracker traffic.
    Replaying,
    /// The spawn sequence stopped matching the recording; the region fell
    /// back to live registration and the cached graph was invalidated.
    Diverged,
}

/// Accumulates the DAG of a recording execution. Only touched under the
/// region's recorder lock + tracker mutex (registration order **is** the
/// frozen task order); allocates freely — recording is once per token.
pub(crate) struct GraphRecorder {
    /// Per-task hash of the renamed clause sequence, in registration order.
    th: Vec<u64>,
    /// Per-task logical in-degree (multiset: parallel edges both count,
    /// mirroring the tracker's per-edge `pending` increments).
    indeg: Vec<u32>,
    /// Logical `(pred, succ)` edges, `pred < succ` by construction (the
    /// tracker's total registration order). Includes edges to
    /// already-retired (CLOSED) predecessors: those are *timing* no-ops
    /// live, but the frozen graph captures logical dependence — in replay
    /// every recorded edge is decremented by a real retire.
    edges: Vec<(u32, u32)>,
    /// First-occurrence address renaming.
    rename: HashMap<usize, u32>,
}

impl GraphRecorder {
    pub(crate) fn new() -> GraphRecorder {
        GraphRecorder {
            th: Vec::new(),
            indeg: Vec::new(),
            edges: Vec::new(),
            rename: HashMap::new(),
        }
    }

    /// Opens the next task (registration order = frozen index order) and
    /// returns its index.
    pub(crate) fn begin_task(&mut self) -> u32 {
        let idx = self.th.len() as u32;
        self.th.push(HASH_SEED);
        self.indeg.push(0);
        idx
    }

    /// Folds one clause of the task opened last into its hash.
    pub(crate) fn clause(&mut self, clause: &DepClause) {
        let next = self.rename.len() as u32;
        let id = *self.rename.entry(clause.addr).or_insert(next);
        let h = self.th.last_mut().expect("clause before begin_task");
        *h = mix(*h, clause_tag(id, clause.access));
    }

    /// Records one logical edge `pred → succ` (frozen indices).
    pub(crate) fn edge(&mut self, pred: u32, succ: u32) {
        debug_assert!(pred < succ, "edges follow registration order");
        self.edges.push((pred, succ));
        self.indeg[succ as usize] += 1;
    }
}

/// Per-task replay state, pre-seeded at arm time so a predecessor may
/// retire before its successor has even spawned.
pub(crate) struct ReplaySlot {
    /// This slot's frozen task index (retire needs it to find successors).
    idx: u32,
    /// Unretired predecessors + the spawn guard (seeded `indeg + 1`; the
    /// guard is dropped by the spawn itself, after `rec` is stored, so a
    /// zero transition always observes a record).
    pending: AtomicU32,
    /// The spawned task's record, stored (Release) before the guard drops.
    rec: AtomicPtr<TaskRecord>,
}

impl ReplaySlot {
    /// Publishes the spawned record to retiring predecessors (Release: the
    /// record's initialisation happens-before any zero transition).
    pub(crate) fn store_rec(&self, rec: NonNull<TaskRecord>) {
        self.rec.store(rec.as_ptr(), Ordering::Release);
    }

    /// Drops the spawn guard; `true` means every frozen predecessor has
    /// already retired and the caller owns the ready task.
    pub(crate) fn drop_guard(&self) -> bool {
        self.pending.fetch_sub(1, Ordering::AcqRel) == 1
    }
}

/// One cell of the replay rename table: an address claimed by CAS and the
/// dense id assigned to it ([`u32::MAX`] until the claimant stores it).
struct RenameSlot {
    addr: AtomicUsize,
    id: AtomicU32,
}

/// An immutable recorded DAG plus the re-armable per-execution state.
/// Owned by the graph cache between executions, leased by the replaying
/// region; never mutated structurally after [`freeze`](Self::freeze).
pub(crate) struct FrozenGraph {
    /// Per-task hash of the renamed clause sequence.
    th: Vec<u64>,
    /// Per-task logical in-degree.
    indeg: Vec<u32>,
    /// CSR successor lists: task `i`'s successors are
    /// `succ[succ_off[i]..succ_off[i + 1]]`.
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// Per-execution slot array, re-armed per replay.
    slots: Vec<ReplaySlot>,
    /// Lock-free first-occurrence rename table (power-of-two), cleared per
    /// replay.
    rename: Vec<RenameSlot>,
    /// Next dense id to hand out.
    next_id: AtomicU32,
}

impl FrozenGraph {
    /// Freezes a finished recording into the immutable replay form.
    pub(crate) fn freeze(rec: GraphRecorder) -> Box<FrozenGraph> {
        let n = rec.th.len();
        let mut succ_off = vec![0u32; n + 1];
        for &(p, _) in &rec.edges {
            succ_off[p as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        let mut succ = vec![0u32; rec.edges.len()];
        for &(p, s) in &rec.edges {
            succ[cursor[p as usize] as usize] = s;
            cursor[p as usize] += 1;
        }
        let slots = (0..n as u32)
            .map(|idx| ReplaySlot {
                idx,
                pending: AtomicU32::new(0),
                rec: AtomicPtr::new(std::ptr::null_mut()),
            })
            .collect();
        // 2x the distinct-address count keeps probe chains short; replays
        // over *more* distinct addresses than recorded run out of table
        // and diverge (they could never match the hashes anyway).
        let cap = (rec.rename.len() * 2).next_power_of_two().max(8);
        let rename = (0..cap)
            .map(|_| RenameSlot {
                addr: AtomicUsize::new(0),
                id: AtomicU32::new(u32::MAX),
            })
            .collect();
        Box::new(FrozenGraph {
            th: rec.th,
            indeg: rec.indeg,
            succ_off,
            succ,
            slots,
            rename,
            next_id: AtomicU32::new(0),
        })
    }

    /// Recorded task count.
    #[inline]
    pub(crate) fn n_tasks(&self) -> usize {
        self.th.len()
    }

    /// Recorded edge count.
    #[cfg(test)]
    pub(crate) fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// Re-arms the per-execution state for a fresh replay. Exclusive: runs
    /// at submit time, before the region's root is published (the
    /// injector handoff is the publication edge for these plain stores).
    pub(crate) fn arm(&self) {
        for slot in &self.slots {
            slot.pending
                .store(self.indeg[slot.idx as usize] + 1, Ordering::Relaxed);
            slot.rec.store(std::ptr::null_mut(), Ordering::Relaxed);
        }
        for cell in &self.rename {
            cell.addr.store(0, Ordering::Relaxed);
            cell.id.store(u32::MAX, Ordering::Relaxed);
        }
        self.next_id.store(0, Ordering::Relaxed);
    }

    /// The frozen slot for task `idx`.
    #[inline]
    pub(crate) fn slot(&self, idx: u32) -> &ReplaySlot {
        &self.slots[idx as usize]
    }

    /// The recorded hash for task `idx`.
    #[inline]
    pub(crate) fn task_hash(&self, idx: u32) -> u64 {
        self.th[idx as usize]
    }

    /// Task `idx`'s frozen successor indices.
    #[inline]
    pub(crate) fn successors(&self, idx: u32) -> &[u32] {
        let lo = self.succ_off[idx as usize] as usize;
        let hi = self.succ_off[idx as usize + 1] as usize;
        &self.succ[lo..hi]
    }

    /// Renames `addr` through the per-execution table (first occurrence
    /// claims the next dense id). `None` when the table is full — more
    /// distinct addresses than the recording ever used, a divergence.
    fn rename(&self, addr: usize) -> Option<u32> {
        debug_assert!(addr != 0, "clause addresses are object addresses");
        let mask = self.rename.len() - 1;
        let mut i = (mix(HASH_SEED, addr as u64) as usize) & mask;
        for _ in 0..self.rename.len() {
            let cell = &self.rename[i];
            let cur = cell.addr.load(Ordering::Acquire);
            if cur == addr {
                return Some(self.read_id(cell));
            }
            if cur == 0 {
                match cell
                    .addr
                    .compare_exchange(0, addr, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                        cell.id.store(id, Ordering::Release);
                        return Some(id);
                    }
                    Err(now) if now == addr => return Some(self.read_id(cell)),
                    Err(_) => {} // lost the slot to another address: probe on
                }
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Reads a claimed cell's id, spinning over the claimant's two-store
    /// window (claim the address, then store the id).
    fn read_id(&self, cell: &RenameSlot) -> u32 {
        loop {
            let id = cell.id.load(Ordering::Acquire);
            if id != u32::MAX {
                return id;
            }
            std::hint::spin_loop();
        }
    }

    /// Hashes a replayed task's clause list through the rename table.
    /// `None` when renaming ran out of table (cannot match any recording).
    pub(crate) fn hash_clauses(&self, deps: &[DepClause]) -> Option<u64> {
        let mut h = HASH_SEED;
        for clause in deps {
            let id = self.rename(clause.addr)?;
            h = mix(h, clause_tag(id, clause.access));
        }
        Some(h)
    }
}

/// Tags a slot pointer for a record's dep-state link: bit 0 distinguishes
/// a replay slot from a live [`crate::deps::DepBlock`] (both are aligned
/// well past 2), so the retire path in `execute` can dispatch on it.
pub(crate) fn tag_slot(slot: &ReplaySlot) -> NonNull<u8> {
    let addr = slot as *const ReplaySlot as usize | 1;
    // Safety: a reference is never null, and `| 1` cannot make it so.
    unsafe { NonNull::new_unchecked(addr as *mut u8) }
}

/// Is this dep-state pointer a tagged replay slot?
#[inline]
pub(crate) fn is_tagged(state: NonNull<u8>) -> bool {
    state.as_ptr() as usize & 1 == 1
}

/// Recovers the slot reference behind a tagged dep-state pointer.
///
/// # Safety
/// `state` must have come from [`tag_slot`] on a slot of the region's
/// currently-leased frozen graph.
pub(crate) unsafe fn untag_slot<'g>(state: NonNull<u8>) -> &'g ReplaySlot {
    &*((state.as_ptr() as usize & !1) as *const ReplaySlot)
}

/// Retires a replayed task: walks its frozen successor slice, decrementing
/// each successor's release counter and handing records whose count drains
/// to `enqueue` — no tracker mutex, no map, no pool traffic. The counting
/// mirror of [`crate::deps::DepTracker::retire`].
///
/// # Safety
/// `slot` must be the tagged dep state taken from a replayed task that
/// just finished executing on this thread; called exactly once per spawn.
pub(crate) unsafe fn retire_replay(
    rp: &RegionReplay,
    slot: &ReplaySlot,
    mut enqueue: impl FnMut(NonNull<TaskRecord>),
) {
    // Same protocol window as the live retire: a perturbation here races
    // retires against spawns still claiming slots.
    crate::bots_failpoint!("dep_retire");
    let g = rp
        .graph()
        .expect("replay retire without a leased frozen graph");
    for &s in g.successors(slot.idx) {
        let succ = g.slot(s);
        // AcqRel pairs with the spawn's Release `rec` store: a zero
        // transition happens-after the guard drop, so the record is there.
        if succ.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let rec = succ.rec.load(Ordering::Acquire);
            enqueue(NonNull::new(rec).expect("released replay slot without a record"));
        }
    }
}

/// Per-region replay state, embedded in every pooled region descriptor.
/// Armed at submit time (exclusive), read by the region's own tasks
/// (happens-after the root's publication edge), drained at finish.
pub(crate) struct RegionReplay {
    /// One of the `MODE_*` constants. Replaying → Diverged is the only
    /// mid-flight transition (CAS'd by the first diverging spawn).
    mode: AtomicU8,
    /// The lease's shape token (valid while `mode != MODE_OFF`).
    token: Cell<u64>,
    /// The leased frozen graph (Replaying/Diverged). Set at arm, stable
    /// until finish — divergence must *not* drop it early: matched-prefix
    /// tasks still retire through its slots.
    graph: UnsafeCell<Option<Box<FrozenGraph>>>,
    /// The recorder (Recording only). Its own lock, not the tracker's:
    /// concurrent recording registrants serialise here first, keeping the
    /// recorder's `&mut` sound without widening the tracker's API.
    recorder: Mutex<Option<Box<GraphRecorder>>>,
    /// Next frozen index to claim; spawn order must match recording order
    /// (the hash check catches it when it does not).
    next_idx: AtomicU32,
    /// Replayed (matched) spawns not yet retired — what a divergence must
    /// drain before live registration may begin from an empty tracker.
    outstanding: AtomicUsize,
}

// Safety: the UnsafeCell graph is written only under exclusivity (arm /
// finish, guarded by the lease protocol) and read immutably by the
// region's tasks in between; everything else is atomics or a mutex.
unsafe impl Send for RegionReplay {}
unsafe impl Sync for RegionReplay {}

impl RegionReplay {
    pub(crate) fn new() -> RegionReplay {
        RegionReplay {
            mode: AtomicU8::new(MODE_OFF),
            token: Cell::new(0),
            graph: UnsafeCell::new(None),
            recorder: Mutex::new(None),
            next_idx: AtomicU32::new(0),
            outstanding: AtomicUsize::new(0),
        }
    }

    /// Re-arms for a new lease (exclusive; part of `Region::reset`).
    pub(crate) fn reset(&self) {
        self.mode.store(MODE_OFF, Ordering::Relaxed);
        self.token.set(0);
        // Both should already be None (finish drains them); defensive for
        // leaked leases.
        unsafe { *self.graph.get() = None };
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.next_idx.store(0, Ordering::Relaxed);
        self.outstanding.store(0, Ordering::Relaxed);
    }

    /// Puts the region in Recording mode (exclusive, at submit time).
    pub(crate) fn arm_record(&self, token: u64) {
        self.token.set(token);
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Box::new(GraphRecorder::new()));
        self.mode.store(MODE_RECORDING, Ordering::Relaxed);
    }

    /// Puts the region in Replaying mode with a leased graph (exclusive,
    /// at submit time). Re-arms the graph's per-execution state.
    pub(crate) fn arm_replay(&self, token: u64, graph: Box<FrozenGraph>) {
        graph.arm();
        self.token.set(token);
        unsafe { *self.graph.get() = Some(graph) };
        self.next_idx.store(0, Ordering::Relaxed);
        self.outstanding.store(0, Ordering::Relaxed);
        self.mode.store(MODE_REPLAYING, Ordering::Relaxed);
    }

    /// Current mode (`MODE_*`).
    #[inline]
    pub(crate) fn mode(&self) -> u8 {
        self.mode.load(Ordering::Relaxed)
    }

    /// This lease's shape token.
    #[inline]
    pub(crate) fn token(&self) -> u64 {
        self.token.get()
    }

    /// The leased frozen graph, if any. Immutable between arm and finish.
    #[inline]
    pub(crate) fn graph(&self) -> Option<&FrozenGraph> {
        // Safety: written only under exclusivity (arm/finish); stable —
        // and immutable — for the whole in-flight window readers occupy.
        unsafe { (*self.graph.get()).as_deref() }
    }

    /// The recorder lock (Recording-mode registration path).
    #[inline]
    pub(crate) fn recorder(&self) -> &Mutex<Option<Box<GraphRecorder>>> {
        &self.recorder
    }

    /// Claims the next frozen index for a replayed spawn.
    #[inline]
    pub(crate) fn claim_idx(&self) -> u32 {
        self.next_idx.fetch_add(1, Ordering::Relaxed)
    }

    /// Counts one matched replayed spawn.
    #[inline]
    pub(crate) fn inc_outstanding(&self) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
    }

    /// Counts one replayed retire; returns the count *before* the
    /// decrement (`<= 2` means a divergence waiter may be unblocked).
    #[inline]
    pub(crate) fn dec_outstanding(&self) -> usize {
        self.outstanding.fetch_sub(1, Ordering::AcqRel)
    }

    /// Replayed spawns still in flight.
    #[inline]
    pub(crate) fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Flips Replaying → Diverged (idempotent; later spawns observe it).
    pub(crate) fn mark_diverged(&self) {
        let _ = self.mode.compare_exchange(
            MODE_REPLAYING,
            MODE_DIVERGED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Takes the leased graph back out (finish path; exclusive).
    pub(crate) fn take_graph(&self) -> Option<Box<FrozenGraph>> {
        // Safety: post-quiescence sole-finisher exclusivity.
        unsafe { (*self.graph.get()).take() }
    }

    /// Takes the recorder out (finish path).
    pub(crate) fn take_recorder(&self) -> Option<Box<GraphRecorder>> {
        self.recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// The [`ReplayPhase`] for stats surfaces.
    pub(crate) fn phase(&self) -> ReplayPhase {
        match self.mode() {
            MODE_RECORDING => ReplayPhase::Recording,
            MODE_REPLAYING => ReplayPhase::Replaying,
            MODE_DIVERGED => ReplayPhase::Diverged,
            _ => ReplayPhase::Off,
        }
    }
}

/// How a replay-token submit armed its region.
pub(crate) enum ArmOutcome {
    /// No graph yet: record this execution. `evicted` reports whether
    /// making room dropped another token's graph.
    Record { evicted: bool },
    /// A frozen graph was leased out of the cache: replay it.
    Replay(Box<FrozenGraph>),
    /// The token's entry exists but its graph is checked out by another
    /// in-flight region (or still being recorded): run plain live.
    Busy,
}

/// The team-wide graph cache, keyed by shape token, with LRU-ish eviction
/// (least-recently-armed graph goes first; leased-out and still-recording
/// entries are never evicted — their regions still point into them).
pub(crate) struct GraphCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<u64, CacheSlot>,
    /// Monotone arm counter: the recency stamp.
    tick: u64,
}

struct CacheSlot {
    /// `None` while the graph is leased out (replaying) or not yet
    /// deposited (recording).
    graph: Option<Box<FrozenGraph>>,
    stamp: u64,
}

impl GraphCache {
    pub(crate) fn new(capacity: usize) -> GraphCache {
        GraphCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Arms a submit under `token`: leases the cached graph out, or claims
    /// the token for recording, or reports it busy. Warm hits allocate
    /// nothing (one lock, one map probe).
    pub(crate) fn arm(&self, token: u64) -> ArmOutcome {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let stamp = inner.tick;
        if let Some(slot) = inner.map.get_mut(&token) {
            return match slot.graph.take() {
                Some(g) => {
                    slot.stamp = stamp;
                    ArmOutcome::Replay(g)
                }
                None => ArmOutcome::Busy,
            };
        }
        // New token: make room, then claim with a placeholder the deposit
        // fills in. Placeholders and leased-out entries are not evictable,
        // so the map can transiently exceed capacity under enough
        // concurrent first-runs — bounded by in-flight regions.
        let mut evicted = false;
        if inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, s)| s.graph.is_some())
                .min_by_key(|(_, s)| s.stamp)
                .map(|(&t, _)| t);
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                evicted = true;
            }
        }
        inner.map.insert(token, CacheSlot { graph: None, stamp });
        ArmOutcome::Record { evicted }
    }

    /// Deposits a freshly-frozen graph under its token's placeholder.
    pub(crate) fn deposit(&self, token: u64, graph: Box<FrozenGraph>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = inner.map.get_mut(&token) {
            slot.graph = Some(graph);
        }
    }

    /// Returns a leased graph after a clean replay.
    pub(crate) fn give_back(&self, token: u64, graph: Box<FrozenGraph>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = inner.map.get_mut(&token) {
            slot.graph = Some(graph);
        }
    }

    /// Drops `token`'s entry: the recording was cancelled, or a replay
    /// diverged and the graph no longer describes the region's shape.
    pub(crate) fn invalidate(&self, token: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .remove(&token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(addr: usize, access: DepAccess) -> DepClause {
        DepClause { addr, access }
    }

    /// Records a tiny chain a→b→c and freezes it.
    fn chain_graph() -> Box<FrozenGraph> {
        let mut r = GraphRecorder::new();
        for i in 0..3u32 {
            let idx = r.begin_task();
            assert_eq!(idx, i);
            r.clause(&clause(0x1000, DepAccess::Write));
            if i > 0 {
                r.edge(i - 1, i);
            }
        }
        FrozenGraph::freeze(r)
    }

    #[test]
    fn freeze_builds_csr_and_indegrees() {
        let g = chain_graph();
        assert_eq!(g.n_tasks(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.successors(2), &[] as &[u32]);
        assert_eq!(g.indeg, vec![0, 1, 1]);
    }

    #[test]
    fn renaming_matches_structurally_identical_addresses() {
        let g = chain_graph();
        g.arm();
        // A different concrete address than the recording used: renaming
        // maps it to id 0 just the same, so the hashes line up.
        let h = g
            .hash_clauses(&[clause(0xBEE_F00, DepAccess::Write)])
            .unwrap();
        assert_eq!(h, g.task_hash(0));
        assert_eq!(h, g.task_hash(1), "all three tasks share the clause shape");
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let g = chain_graph();
        g.arm();
        let read = g
            .hash_clauses(&[clause(0xBEE_F00, DepAccess::Read)])
            .unwrap();
        assert_ne!(read, g.task_hash(0), "access flip must be caught");
        // Re-arm, then present two distinct addresses where the recording
        // used one: ids 0 and 1 instead of 0 and 0.
        g.arm();
        let a = g.hash_clauses(&[clause(0x10, DepAccess::Write)]).unwrap();
        let b = g.hash_clauses(&[clause(0x20, DepAccess::Write)]).unwrap();
        assert_eq!(a, g.task_hash(0));
        assert_ne!(b, g.task_hash(1), "second address renames to a new id");
    }

    #[test]
    fn arm_reseeds_slots_and_rename_table() {
        let g = chain_graph();
        g.arm();
        assert_eq!(g.slot(0).pending.load(Ordering::Relaxed), 1);
        assert_eq!(g.slot(1).pending.load(Ordering::Relaxed), 2);
        let _ = g.hash_clauses(&[clause(0x10, DepAccess::Write)]);
        g.slot(1).pending.store(0, Ordering::Relaxed);
        g.arm();
        assert_eq!(g.slot(1).pending.load(Ordering::Relaxed), 2);
        assert_eq!(g.next_id.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cache_lease_return_and_eviction() {
        let cache = GraphCache::new(2);
        // First arm records.
        assert!(matches!(
            cache.arm(7),
            ArmOutcome::Record { evicted: false }
        ));
        // Same token while the placeholder is outstanding: busy.
        assert!(matches!(cache.arm(7), ArmOutcome::Busy));
        cache.deposit(7, chain_graph());
        let leased = match cache.arm(7) {
            ArmOutcome::Replay(g) => g,
            _ => panic!("deposited graph must replay"),
        };
        assert!(matches!(cache.arm(7), ArmOutcome::Busy), "leased out");
        cache.give_back(7, leased);
        assert!(matches!(
            cache.arm(8),
            ArmOutcome::Record { evicted: false }
        ));
        cache.deposit(8, chain_graph());
        // Third token over capacity 2: the least-recently-armed graph
        // (token 7 — 8 was armed later) is evicted.
        assert!(matches!(cache.arm(9), ArmOutcome::Record { evicted: true }));
        // 7 was the eviction victim: arming it again starts a fresh
        // recording (evicting 8, the only remaining graph-holding entry —
        // 9's placeholder is not evictable).
        assert!(matches!(cache.arm(7), ArmOutcome::Record { evicted: true }));
        assert!(matches!(
            cache.arm(8),
            ArmOutcome::Record { evicted: false }
        ));
    }

    #[test]
    fn tagging_round_trips() {
        let g = chain_graph();
        let slot = g.slot(1);
        let tagged = tag_slot(slot);
        assert!(is_tagged(tagged));
        let back = unsafe { untag_slot(tagged) };
        assert!(std::ptr::eq(back, slot));
    }
}
