//! Runtime configuration: thread count, scheduling policy and runtime-side
//! cut-off strategy.
//!
//! These knobs are the experimental variables of the BOTS paper's evaluation:
//! §IV-B compares application cut-offs against *runtime* cut-offs (the Intel
//! runtime used a max-task-count cut-off), §IV-C compares tied vs untied
//! scheduling constraints, and §IV-D points at scheduling-policy studies.

/// Local queue discipline: where the owning worker takes its next task from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalOrder {
    /// Depth-first: pop the youngest task (own deque bottom). Best cache
    /// locality for recursive kernels; this is what Cilk-style runtimes do.
    #[default]
    Lifo,
    /// Breadth-first: take the oldest local task, like a FIFO queue. Exposes
    /// more parallelism early but grows the working set; equivalent to the
    /// "breadth-first" schedulers studied around OpenMP 3.0.
    Fifo,
}

/// Runtime-implemented cut-off: when to serialise task creation regardless of
/// what the application asked for. `#pragma omp task` in the application maps
/// to `Scope::spawn` here; when the cut-off trips, the spawn runs inline
/// (undeferred) instead of being queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeCutoff {
    /// Never serialise: queue every task the application creates.
    #[default]
    None,
    /// Serialise while the total number of queued-but-unstarted tasks exceeds
    /// `per_worker × workers` (the strategy the paper attributes to the Intel
    /// runtime: "a cut-off based on the number of tasks").
    MaxTasks {
        /// Queued-task budget per worker.
        per_worker: usize,
    },
    /// Serialise while the *local* deque holds more than this many tasks.
    MaxLocalQueue {
        /// Maximum local queue length before spawns inline.
        max_len: usize,
    },
    /// Serialise any task whose recursion depth exceeds this bound
    /// (runtime-side equivalent of the applications' depth cut-offs).
    MaxDepth {
        /// Maximum depth at which tasks are still deferred.
        max_depth: u32,
    },
    /// Adaptive hysteresis (after Duran et al., "An Adaptive Cut-off for Task
    /// Parallelism", SC'08): serialise when the global queued-task count
    /// rises above `high × workers`, resume deferring once it falls below
    /// `low × workers`.
    Adaptive {
        /// Lower watermark per worker (resume deferring below this).
        low: usize,
        /// Upper watermark per worker (serialise above this).
        high: usize,
    },
}

/// Per-region task-creation budget: a cut-off checked against **one
/// region's own** queued-task count, so a greedy region serialises *its
/// own* spawns instead of starving its siblings'.
///
/// This is the per-region counterpart of [`RuntimeCutoff`]'s
/// `MaxTasks`/`Adaptive`, which are deliberately global (machine-load
/// backpressure): a latency-sensitive server sets a global cut-off for the
/// machine *and* a region budget for fairness. The two compose — a spawn is
/// serialised when either trips.
///
/// Set a team-wide default with
/// [`RuntimeConfig::with_region_budget`]; override per submission with
/// [`Runtime::submit_with_budget`](crate::Runtime::submit_with_budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionBudget {
    /// No per-region limit. As a per-submission override this means "use
    /// the team default"; as the team default it means unbudgeted (only the
    /// global [`RuntimeCutoff`] applies).
    #[default]
    Inherit,
    /// Serialise this region's spawns while it has at least this many
    /// queued-but-unstarted tasks of its own.
    MaxQueued(usize),
    /// Per-region adaptive hysteresis (the region-scoped analogue of
    /// [`RuntimeCutoff::Adaptive`]): serialise once the region's queued
    /// count rises above `high`, resume deferring when it falls below
    /// `low`.
    Adaptive {
        /// Lower watermark (resume deferring below this).
        low: usize,
        /// Upper watermark (serialise above this).
        high: usize,
    },
}

/// Full runtime configuration. Build with [`RuntimeConfig::new`] and the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads in the team.
    pub num_threads: usize,
    /// Local queue discipline.
    pub local_order: LocalOrder,
    /// Runtime-side cut-off strategy.
    pub cutoff: RuntimeCutoff,
    /// Default per-region task budget for every submitted region (override
    /// per submission with
    /// [`Runtime::submit_with_budget`](crate::Runtime::submit_with_budget)).
    pub region_budget: RegionBudget,
    /// Historical knob for the tied-task scheduling constraint. Since
    /// waits suspend their continuation instead of borrowing the worker's
    /// stack (see [`crate::cont`]), a blocked worker never runs anything
    /// *nested under* the waiting task — there is nothing left for the
    /// constraint to forbid, and this flag no longer changes scheduling.
    /// Kept so configurations written against earlier versions still
    /// build; tasks keep their tied/untied attribute for introspection.
    pub enforce_tied_constraint: bool,
    /// Steal attempts across the whole team before a worker considers
    /// parking (each attempt probes every other worker once, in a random
    /// rotation).
    pub steal_rounds: usize,
    /// Wake propagation: a worker that was woken and found work wakes the
    /// next sleeper while more work stays visible, so bursts ramp the team
    /// up geometrically instead of one wake per spawn. Disable to measure
    /// the single-wake baseline.
    pub wake_propagation: bool,
    /// Spin iterations between failed steal rounds before blocking.
    pub spin_before_park: usize,
    /// Pool-growth granularity: task records per slab chunk. Each worker's
    /// record pool grows by this many 128-byte records at a time when its
    /// free list and reclaim stack are both empty (64 records = one 8 KiB
    /// chunk). Larger values amortise growth for spawn-storm workloads;
    /// smaller ones keep tiny teams lean.
    pub record_chunk: usize,
    /// Overload-shedding watermark: maximum concurrently live (submitted,
    /// not yet quiesced) regions before admission control engages. `0`
    /// (the default) disables the watermark. At or above it,
    /// [`Runtime::try_submit`](crate::Runtime::try_submit) refuses with
    /// [`SubmitError::Shed`](crate::SubmitError::Shed) and the infallible
    /// submit paths admit the region in *shed mode* — clause-free spawns
    /// serialise inline, bounding the queue footprint of overload instead
    /// of growing it.
    pub max_live_regions: usize,
    /// Capacity of the record-and-replay graph cache (frozen dependency
    /// DAGs keyed by shape token — see
    /// [`Runtime::submit_replay`](crate::Runtime::submit_replay)).
    /// Admitting a token past capacity evicts the least-recently-armed
    /// cached graph (tokens whose graph is currently leased out or still
    /// recording are never evicted). Floors at 1.
    pub replay_cache: usize,
    /// Team-wide default claim grain for worksharing loops
    /// ([`LoopMode::Worksharing`](crate::LoopMode::Worksharing)) whose
    /// [`ForBuilder`](crate::ForBuilder) did not set an explicit
    /// `.chunk(n)`. `0` (the default) means auto: `len / (4 × workers)`,
    /// at least 1.
    pub loop_grain: usize,
    /// Fiber stack size in bytes for pooled continuations (every deferred
    /// task body runs on one — see [`crate::cont`]). The memory is
    /// allocated uninitialised, so untouched pages are never committed: a
    /// parked deep wait costs pages, not the full reservation. There is no
    /// guard page; raise this for bodies with unusually deep inline
    /// recursion. Floors at 16 KiB.
    pub cont_stack: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_threads: default_threads(),
            local_order: LocalOrder::Lifo,
            cutoff: RuntimeCutoff::None,
            region_budget: RegionBudget::Inherit,
            enforce_tied_constraint: true,
            steal_rounds: 4,
            wake_propagation: true,
            spin_before_park: 64,
            record_chunk: 64,
            max_live_regions: 0,
            replay_cache: 64,
            loop_grain: 0,
            cont_stack: 256 * 1024,
        }
    }
}

/// Reads the default team size from `BOTS_NUM_THREADS` (mirroring
/// `OMP_NUM_THREADS`), falling back to the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BOTS_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl RuntimeConfig {
    /// Configuration with an explicit team size and defaults elsewhere.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads >= 1, "a team needs at least one thread");
        RuntimeConfig {
            num_threads,
            ..Default::default()
        }
    }

    /// Sets the local queue discipline.
    pub fn with_local_order(mut self, order: LocalOrder) -> Self {
        self.local_order = order;
        self
    }

    /// Sets the runtime cut-off strategy.
    pub fn with_cutoff(mut self, cutoff: RuntimeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the default per-region task budget.
    pub fn with_region_budget(mut self, budget: RegionBudget) -> Self {
        self.region_budget = budget;
        self
    }

    /// Sets the historical tied-constraint flag (a scheduling no-op now
    /// that blocked waits suspend off the worker; see
    /// [`enforce_tied_constraint`](Self::enforce_tied_constraint)).
    pub fn with_tied_constraint(mut self, enforce: bool) -> Self {
        self.enforce_tied_constraint = enforce;
        self
    }

    /// Sets the number of steal rounds before parking.
    pub fn with_steal_rounds(mut self, rounds: usize) -> Self {
        self.steal_rounds = rounds.max(1);
        self
    }

    /// Enables or disables wake propagation.
    pub fn with_wake_propagation(mut self, enable: bool) -> Self {
        self.wake_propagation = enable;
        self
    }

    /// Sets the slab pool-growth granularity (records per chunk).
    pub fn with_record_chunk(mut self, records: usize) -> Self {
        self.record_chunk = records.max(1);
        self
    }

    /// Sets the overload-shedding watermark (`0` disables it). See
    /// [`RuntimeConfig::max_live_regions`].
    pub fn with_max_live_regions(mut self, regions: usize) -> Self {
        self.max_live_regions = regions;
        self
    }

    /// Sets the replay graph-cache capacity (floors at one graph). See
    /// [`RuntimeConfig::replay_cache`].
    pub fn with_replay_cache(mut self, graphs: usize) -> Self {
        self.replay_cache = graphs.max(1);
        self
    }

    /// Sets the team-wide default worksharing claim grain (`0` restores
    /// the auto heuristic). See [`RuntimeConfig::loop_grain`].
    pub fn with_loop_grain(mut self, grain: usize) -> Self {
        self.loop_grain = grain;
        self
    }

    /// Sets the fiber stack size for pooled continuations (floors at
    /// 16 KiB). See [`RuntimeConfig::cont_stack`].
    pub fn with_cont_stack(mut self, bytes: usize) -> Self {
        self.cont_stack = bytes.max(16 * 1024);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = RuntimeConfig::default();
        assert!(c.num_threads >= 1);
        assert_eq!(c.local_order, LocalOrder::Lifo);
        assert_eq!(c.cutoff, RuntimeCutoff::None);
        assert_eq!(c.region_budget, RegionBudget::Inherit);
        assert!(c.enforce_tied_constraint);
        assert!(c.wake_propagation);
        assert_eq!(c.max_live_regions, 0, "shedding is opt-in");
        assert_eq!(c.replay_cache, 64);
        assert_eq!(c.loop_grain, 0, "worksharing grain defaults to auto");
        assert_eq!(c.cont_stack, 256 * 1024, "fiber stacks default to 256 KiB");
    }

    #[test]
    fn builder_chain() {
        let c = RuntimeConfig::new(3)
            .with_local_order(LocalOrder::Fifo)
            .with_cutoff(RuntimeCutoff::MaxTasks { per_worker: 8 })
            .with_region_budget(RegionBudget::MaxQueued(32))
            .with_tied_constraint(false)
            .with_steal_rounds(2)
            .with_wake_propagation(false);
        assert!(!c.wake_propagation);
        assert_eq!(c.num_threads, 3);
        assert_eq!(c.local_order, LocalOrder::Fifo);
        assert_eq!(c.cutoff, RuntimeCutoff::MaxTasks { per_worker: 8 });
        assert_eq!(c.region_budget, RegionBudget::MaxQueued(32));
        assert!(!c.enforce_tied_constraint);
        assert_eq!(c.steal_rounds, 2);
        let c = c.with_record_chunk(0);
        assert_eq!(c.record_chunk, 1, "chunk size floors at one record");
        let c = c.with_record_chunk(256);
        assert_eq!(c.record_chunk, 256);
        let c = c.with_max_live_regions(7);
        assert_eq!(c.max_live_regions, 7);
        let c = c.with_replay_cache(0);
        assert_eq!(c.replay_cache, 1, "cache capacity floors at one graph");
        let c = c.with_replay_cache(16);
        assert_eq!(c.replay_cache, 16);
        let c = c.with_loop_grain(32);
        assert_eq!(c.loop_grain, 32);
        let c = c.with_loop_grain(0);
        assert_eq!(c.loop_grain, 0, "zero restores the auto heuristic");
        let c = c.with_cont_stack(0);
        assert_eq!(c.cont_stack, 16 * 1024, "fiber stacks floor at 16 KiB");
        let c = c.with_cont_stack(1 << 20);
        assert_eq!(c.cont_stack, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RuntimeConfig::new(0);
    }

    #[test]
    fn steal_rounds_floor_is_one() {
        let c = RuntimeConfig::new(1).with_steal_rounds(0);
        assert_eq!(c.steal_rounds, 1);
    }
}
