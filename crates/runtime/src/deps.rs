//! The task-dependency subsystem: OpenMP 4.0-style `depend(in/out/inout)`
//! clauses underneath the [`TaskBuilder`] spawn API.
//!
//! BOTS predates OpenMP 4.0, so its kernels over-synchronise with
//! `taskwait` barriers: SparseLU stalls every outer iteration on two full
//! barriers even though only a sparse subset of `bmod` blocks depends on
//! each `fwd`/`bdiv`. A depend clause lets a kernel express *which* tasks
//! wait instead of *everyone* waiting: a task declaring `in(&x)` runs
//! after the last task that declared `out(&x)`, and a task declaring
//! `out(&x)` runs after the last writer *and* every reader registered
//! since — the classic last-writer / reader-set protocol, keyed by
//! **object address** (identity, never dereferenced).
//!
//! ## Shape
//!
//! One [`DepTracker`] lives in every pooled region descriptor
//! ([`crate::region`]), so dependences are region-scoped: concurrent
//! regions using the same addresses never interact, and the tracker's
//! pools come back warm when the descriptor is re-leased. Inside a
//! tracker:
//!
//! * the **address map** — one mutex-guarded open-chained hash table of
//!   [`ObjEntry`]s (last-writer block + reader list per address);
//! * **dep blocks** ([`DepBlock`]) — one per *task spawned with clauses*:
//!   the release counter (`pending`), the successor list (`succ`), and the
//!   back-pointer to the task record. Carried by the record in its
//!   intrusive `next` link (unused while a non-root record is live — see
//!   [`TaskRecord::set_dep_state`]);
//! * **dep nodes** ([`DepNode`]) — the list cells of reader sets and
//!   successor lists.
//!
//! A task's **whole clause list registers atomically** under the map
//! mutex. This is what makes the declared graph acyclic even with
//! concurrent registrants: registrations are totally ordered by the lock,
//! and every edge points from an earlier registrant to a later one. (A
//! per-clause locking scheme — one shard lock per clause — admits the
//! interleaving T1:apply(A), T2:apply(B), T1:apply(B), T2:apply(A), a
//! mutual-wait cycle that deadlocks the region; the
//! `opposite_clause_orders_cannot_cycle` and
//! `concurrent_registrants_never_cycle` tests pin the property down.)
//! Concurrent registrants serialise on the mutex; the common kernels
//! register from a single generator, where the lock is uncontended.
//!
//! Blocks, nodes and entries are recycled through pooled free lists: a
//! local list popped/pushed only under the map mutex, plus a lock-free
//! reclaim stack for the retire path's cross-thread frees, adopted whole
//! (one swap) when the local list runs dry — so a **warm dependency chain
//! performs zero heap allocations** (asserted end to end by
//! `tests/zero_alloc.rs`) and recycling stays O(1) however large the pool
//! grows (a splice-back pop here was measurably quadratic on long
//! chains).
//!
//! ## The Deferred state and release-on-exit
//!
//! Registration pushes one edge onto each unretired predecessor's
//! successor list and counts it in the task's own `pending`. `pending`
//! starts at 1 — a registration guard — so a predecessor retiring
//! mid-registration can never release the task early. When the guard is
//! dropped:
//!
//! * `pending == 0` → the task is **ready**: the spawner pushes it on its
//!   deque like any plain spawn;
//! * `pending > 0` → the task is **Deferred**: its record is held back —
//!   in no deque, visible to no thief — until its predecessors retire.
//!
//! A completing task *retires* on the task-exit path of
//! [`crate::pool::WorkerCtx::execute`], **without touching the map or its
//! lock**: one atomic swap closes its successor list (the `CLOSED`
//! sentinel turns future edge attempts into no-ops), and the completing
//! worker walks the drained list, decrementing each successor's
//! `pending`; a successor hitting zero is pushed on the **retiring
//! worker's own deque** — no extra threads, releases ride the same
//! deque/wake machinery as spawns.
//!
//! Tasks *without* clauses never touch any of this: the dep-free spawn
//! path is completely unchanged (and lock-free).
//!
//! ## Liveness of block pointers
//!
//! Entries and edges hold raw block pointers. Blocks are refcounted: one
//! reference for the task itself (dropped at retire) and one per entry
//! mention (writer slot or reader node, dropped when a later writer
//! displaces the mention, or at tracker reset). Successor-list edges do
//! *not* hold references: an edge exists only while the successor is
//! unreleased, the successor cannot retire — let alone die — before its
//! final `pending` decrement, and that decrement is the predecessor's last
//! access. The tracker is reset when its region descriptor is re-leased,
//! which happens-after region quiescence, so reset never races live tasks.
//!
//! [`TaskBuilder`]: crate::TaskBuilder
//! [`TaskRecord::set_dep_state`]: crate::task::TaskRecord

use std::cell::Cell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::task::TaskRecord;

/// Initial bucket count of the address map (first use only; the map
/// doubles past a 0.75 load factor and keeps its capacity across leases).
const INITIAL_BUCKETS: usize = 64;

/// Items carved per fresh pool chunk.
const POOL_CHUNK: usize = 64;

/// Multiplicative (Fibonacci) address hash. Only the *high* bits of the
/// product are well-mixed; index with [`bucket_of`], never the low bits.
fn addr_hash(addr: usize) -> u64 {
    (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Bucket index for `hash` in a power-of-two table of `len` buckets: a
/// bit window ending at bit 52, well clear of the low product bits. Low
/// bits depend only on low address bits, so stride-allocated tokens —
/// e.g. SparseLU's consecutive 16-byte-apart slots — would cluster into a
/// fraction of the buckets and inflate every chain walk under the map
/// lock; the bit-52 window spreads power-of-two strides from 8 to 4096
/// over the table (asserted by
/// `stride_allocated_addresses_spread_across_buckets`).
fn bucket_of(hash: u64, len: usize) -> usize {
    debug_assert!(len.is_power_of_two());
    ((hash >> (52 - len.trailing_zeros())) as usize) & (len - 1)
}

/// The `succ`-list sentinel marking a retired task: edges can no longer be
/// added, the predecessor is gone. Never dereferenced (a dangling
/// well-aligned marker, distinguishable from both null and real nodes).
fn closed() -> *mut DepNode {
    std::ptr::dangling_mut::<u8>().cast()
}

/// How a clause accesses its object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum DepAccess {
    /// `depend(in: x)` — runs after the last writer of `x`.
    #[default]
    Read,
    /// `depend(out: x)` / `depend(inout: x)` — runs after the last writer
    /// *and* every reader registered since.
    Write,
}

/// One `depend` clause: an object address (identity only) plus the access.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DepClause {
    pub(crate) addr: usize,
    pub(crate) access: DepAccess,
}

/// Per-task dependency state: the release counter, the successor list and
/// the record to enqueue on release. Pooled; pointed to by the record's
/// intrusive `next` link for the task's whole life.
pub(crate) struct DepBlock {
    /// Pool free-list link. Only touched while the block is free.
    pool: AtomicPtr<DepBlock>,
    /// Liveness: 1 for the task itself + 1 per entry mention.
    refs: AtomicUsize,
    /// Unretired predecessors + the registration guard. The task is held
    /// back (Deferred) until this reaches zero.
    pending: AtomicUsize,
    /// Successors to release at retire ([`DepNode`] list), or [`closed`].
    succ: AtomicPtr<DepNode>,
    /// The task to enqueue when `pending` drains. Valid until the task
    /// executes, which cannot happen before the release that reads it.
    rec: Cell<*mut TaskRecord>,
    /// Frozen-graph index while a recording is in flight (set under the
    /// map mutex by the recording registration; meaningless otherwise).
    idx: Cell<u32>,
}

impl Default for DepBlock {
    fn default() -> Self {
        DepBlock {
            pool: AtomicPtr::new(std::ptr::null_mut()),
            refs: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            succ: AtomicPtr::new(std::ptr::null_mut()),
            rec: Cell::new(std::ptr::null_mut()),
            idx: Cell::new(0),
        }
    }
}

/// A list cell: one reader-set member or one successor edge.
pub(crate) struct DepNode {
    /// List link: reader list (under the map lock), successor list (CAS
    /// push / exclusive drain), or the pool free list.
    next: AtomicPtr<DepNode>,
    /// Reader lists: the reading task's block (holds a reference).
    /// Successor lists: the successor's block (no reference; see the
    /// module docs).
    block: Cell<*mut DepBlock>,
}

impl Default for DepNode {
    fn default() -> Self {
        DepNode {
            next: AtomicPtr::new(std::ptr::null_mut()),
            block: Cell::new(std::ptr::null_mut()),
        }
    }
}

/// One tracked object address: the last writer and the readers since.
/// Lives in the map's bucket chains; only touched under the map lock.
struct ObjEntry {
    /// Bucket chain link, or the pool free list.
    next: AtomicPtr<ObjEntry>,
    addr: Cell<usize>,
    /// Last task that declared a write on this address (owns a block ref).
    writer: Cell<*mut DepBlock>,
    /// Tasks that declared reads since the last writer ([`DepNode`] list;
    /// each node owns a block ref).
    readers: Cell<*mut DepNode>,
}

impl Default for ObjEntry {
    fn default() -> Self {
        ObjEntry {
            next: AtomicPtr::new(std::ptr::null_mut()),
            addr: Cell::new(0),
            writer: Cell::new(std::ptr::null_mut()),
            readers: Cell::new(std::ptr::null_mut()),
        }
    }
}

/// An intrusively pool-linked item.
trait Pooled: Default {
    fn pool_link(&self) -> &AtomicPtr<Self>;
}

impl Pooled for DepBlock {
    fn pool_link(&self) -> &AtomicPtr<Self> {
        &self.pool
    }
}
impl Pooled for DepNode {
    fn pool_link(&self) -> &AtomicPtr<Self> {
        &self.next
    }
}
impl Pooled for ObjEntry {
    fn pool_link(&self) -> &AtomicPtr<Self> {
        &self.next
    }
}

/// A recycling pool: a `local` free list popped and pushed **only while
/// holding the tracker's map mutex** (registration and reset — the only
/// allocating paths — already hold it, so no second lock is taken), plus
/// a lock-free `reclaim` stack for the retire path's cross-thread frees,
/// adopted whole — one swap — when the local list runs dry. Chunks are
/// owned for the pool's lifetime, so a warm steady state never allocates
/// and recycling is O(1) regardless of pool size.
struct Pool<T: Pooled> {
    /// Map-lock-holder-only free list head.
    local: Cell<*mut T>,
    /// Cross-thread free stack: retire pushes, the lock holder drains.
    reclaim: AtomicPtr<T>,
    /// Backing chunks (cold; freed when the tracker drops).
    chunks: Mutex<Vec<Box<[T]>>>,
}

impl<T: Pooled> Pool<T> {
    fn new() -> Pool<T> {
        Pool {
            local: Cell::new(std::ptr::null_mut()),
            reclaim: AtomicPtr::new(std::ptr::null_mut()),
            chunks: Mutex::new(Vec::new()),
        }
    }

    /// Takes one recycled item, or carves a fresh chunk.
    ///
    /// # Safety
    /// Caller must hold the tracker's map mutex (the `local` half is
    /// lock-holder-only).
    unsafe fn alloc(&self) -> NonNull<T> {
        let head = self.local.get();
        if let Some(head) = NonNull::new(head) {
            // relaxed-ok: the local list is map-lock-holder-only; the link
            // was written under the same lock (or adopted via Acquire).
            self.local
                .set(head.as_ref().pool_link().load(Ordering::Relaxed));
            return head;
        }
        // Local list dry: adopt the whole reclaim stack in one swap.
        let head = self.reclaim.swap(std::ptr::null_mut(), Ordering::Acquire);
        if let Some(head) = NonNull::new(head) {
            // relaxed-ok: the Acquire swap above took the whole chain
            // exclusively; its links can no longer change.
            self.local
                .set(head.as_ref().pool_link().load(Ordering::Relaxed));
            return head;
        }
        self.grow()
    }

    /// Returns an item to the local free list.
    ///
    /// # Safety
    /// Caller must hold the tracker's map mutex.
    unsafe fn free_local(&self, item: NonNull<T>) {
        // relaxed-ok: map-lock-holder-only list; the freed item is
        // unreachable to any other thread.
        item.as_ref()
            .pool_link()
            .store(self.local.get(), Ordering::Relaxed);
        self.local.set(item.as_ptr());
    }

    /// Returns an item from *any* thread (the retire path): pushes onto
    /// the reclaim stack, drained under the map lock on the next dry
    /// alloc.
    fn free_reclaim(&self, item: NonNull<T>) {
        // relaxed-ok: `head` is only the CAS expectation below.
        let mut head = self.reclaim.load(Ordering::Relaxed);
        loop {
            // relaxed-ok: the link is published by the Release CAS below;
            // the adopting Acquire swap is the only reader.
            unsafe { item.as_ref() }
                .pool_link()
                .store(head, Ordering::Relaxed);
            // transition: pool.reclaim: head -> item (retired item
            // re-enters the pool; drained whole under the map lock).
            match self.reclaim.compare_exchange_weak(
                head,
                item.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed, // relaxed-ok: failure path only retries
            ) {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    /// Carves a fresh chunk: the first item is returned, the rest seed the
    /// local list.
    ///
    /// # Safety
    /// Caller must hold the tracker's map mutex.
    #[cold]
    unsafe fn grow(&self) -> NonNull<T> {
        let chunk: Box<[T]> = (0..POOL_CHUNK).map(|_| T::default()).collect();
        let first = NonNull::from(&chunk[0]);
        for item in &chunk[1..] {
            // relaxed-ok: fresh chunk, map-lock-holder-only list.
            item.pool_link().store(self.local.get(), Ordering::Relaxed);
            self.local.set(NonNull::from(item).as_ptr());
        }
        self.chunks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(chunk);
        first
    }
}

/// The address map: an open-chained hash table whose entries come from
/// the tracker's entry pool. Only touched under the tracker's mutex.
#[derive(Default)]
struct AddrMap {
    buckets: Vec<*mut ObjEntry>,
    len: usize,
}

// Safety: the raw pointers in the map target pool-owned entries whose
// memory outlives the tracker; the map itself is only accessed under its
// mutex.
unsafe impl Send for AddrMap {}

/// The per-region dependency tracker. See the module docs.
pub(crate) struct DepTracker {
    map: Mutex<AddrMap>,
    blocks: Pool<DepBlock>,
    nodes: Pool<DepNode>,
    entries: Pool<ObjEntry>,
}

// Safety: the map is mutex-guarded and the pools' `local` halves are only
// touched while holding that same mutex (see `Pool`); the reclaim stacks
// are lock-free structures over pool-owned memory, and the block/node
// protocols (module docs) govern the raw pointers that cross threads.
unsafe impl Send for DepTracker {}
unsafe impl Sync for DepTracker {}

impl DepTracker {
    pub(crate) fn new() -> DepTracker {
        DepTracker {
            map: Mutex::new(AddrMap::default()),
            blocks: Pool::new(),
            nodes: Pool::new(),
            entries: Pool::new(),
        }
    }

    /// Registers `rec`'s depend clauses and attaches its dep block (through
    /// the record's intrusive link). The whole clause list registers
    /// atomically under the map mutex — the total registration order is
    /// what keeps every declared graph acyclic with concurrent
    /// registrants. Returns `true` when every predecessor has already
    /// retired — the caller must then queue the task itself — and `false`
    /// when the task is now **Deferred**: it will be queued by the
    /// retiring predecessor that drops its `pending` count to zero.
    ///
    /// # Safety
    /// `rec` must be a live, initialised, *unpublished* record (no queue
    /// holds it yet) with its closure already stored.
    pub(crate) unsafe fn register(&self, rec: NonNull<TaskRecord>, deps: &[DepClause]) -> bool {
        self.register_inner(rec, deps, None)
    }

    /// [`register`](Self::register), additionally mirroring the task and
    /// its *logical* edges into `recorder` (the region is executing its
    /// first run under a replay token — see [`crate::replay`]). Recorded
    /// under the map mutex so frozen indices follow the total registration
    /// order, which is what keeps every frozen edge pointing from a lower
    /// index to a higher one.
    ///
    /// # Safety
    /// As [`register`](Self::register); additionally every clause-carrying
    /// task of the region must register through this variant while the
    /// recording is in flight (edges are recorded against predecessor
    /// blocks' indices, which only this path assigns).
    pub(crate) unsafe fn register_recording(
        &self,
        rec: NonNull<TaskRecord>,
        deps: &[DepClause],
        recorder: &mut crate::replay::GraphRecorder,
    ) -> bool {
        self.register_inner(rec, deps, Some(recorder))
    }

    unsafe fn register_inner(
        &self,
        rec: NonNull<TaskRecord>,
        deps: &[DepClause],
        mut sink: Option<&mut crate::replay::GraphRecorder>,
    ) -> bool {
        debug_assert!(!deps.is_empty());
        let block;
        {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            block = self.alloc_block(rec);
            if let Some(r) = sink.as_deref_mut() {
                block.as_ref().idx.set(r.begin_task());
                for clause in deps {
                    r.clause(clause);
                }
            }
            rec.as_ref().set_dep_state(block.cast());
            for clause in deps {
                self.apply(&mut map, block, clause, sink.as_deref_mut());
            }
        }
        // Drop the registration guard outside the lock. Release/Acquire
        // so the releasing side (whichever predecessor — or this very
        // decrement — takes pending to zero) observes the fully-stored
        // record and clauses.
        block.as_ref().pending.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Retires a completed task: closes its successor list and releases
    /// every successor whose last pending predecessor this was, handing
    /// each released record to `enqueue` (called on the retiring thread).
    /// Lock-free: never touches the map or its mutex.
    ///
    /// # Safety
    /// `block` must be the dep state registered for a task that has just
    /// finished executing on this thread; called exactly once per block.
    pub(crate) unsafe fn retire(
        &self,
        block: NonNull<DepBlock>,
        mut enqueue: impl FnMut(NonNull<TaskRecord>),
    ) {
        let b = block.as_ref();
        // A delay here holds the CLOSED-swap open while predecessors keep
        // pushing edges — the interleaving the protocol is built around.
        crate::bots_failpoint!("dep_retire");
        // Terminal close: later edge attempts see CLOSED and skip us.
        // Acquire pairs with the edge-push Release so the drain sees every
        // published node.
        let mut cur = b.succ.swap(closed(), Ordering::AcqRel);
        while let Some(node) = NonNull::new(cur) {
            let n = node.as_ref();
            // relaxed-ok: the AcqRel swap above drained the list
            // exclusively; its links can no longer change.
            cur = n.next.load(Ordering::Relaxed);
            let succ = n.block.get();
            self.nodes.free_reclaim(node);
            // Safety: an unreleased successor's block is kept alive by the
            // successor itself (its own reference is dropped only at its
            // retire, which cannot precede this release).
            let s = &*succ;
            if s.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let rec = NonNull::new(s.rec.get()).expect("released dep task without a record");
                enqueue(rec);
            }
        }
        // The task's own reference; entry mentions may keep the block
        // alive (and pooled) until a later writer displaces them or the
        // tracker resets.
        if let Some(dead) = Self::unref_block(block.as_ptr()) {
            self.blocks.free_reclaim(dead);
        }
    }

    /// Drops every entry, reader node and block reference, returning all
    /// pool items to their free lists. Called when the owning region
    /// descriptor is re-leased — exclusive by the lease protocol, and
    /// happens-after region quiescence, so no task is concurrently
    /// registering or retiring. Dep-free regions pay one uncontended lock
    /// and a length check.
    pub(crate) fn reset(&self) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len == 0 {
            return;
        }
        for slot in map.buckets.iter_mut() {
            let mut cur = std::mem::replace(slot, std::ptr::null_mut());
            while let Some(entry) = NonNull::new(cur) {
                let e = unsafe { entry.as_ref() };
                // relaxed-ok: bucket chains are only touched under the map
                // mutex, which this method holds.
                cur = e.next.load(Ordering::Relaxed);
                let w = e.writer.replace(std::ptr::null_mut());
                if !w.is_null() {
                    if let Some(dead) = Self::unref_block(w) {
                        unsafe { self.blocks.free_local(dead) };
                    }
                }
                let mut r = e.readers.replace(std::ptr::null_mut());
                while let Some(node) = NonNull::new(r) {
                    let n = unsafe { node.as_ref() };
                    // relaxed-ok: reader lists are map-mutex-guarded.
                    r = n.next.load(Ordering::Relaxed);
                    if let Some(dead) = Self::unref_block(n.block.get()) {
                        unsafe { self.blocks.free_local(dead) };
                    }
                    unsafe { self.nodes.free_local(node) };
                }
                unsafe { self.entries.free_local(entry) };
            }
        }
        map.len = 0;
    }

    /// Arms a pooled block for a fresh registration.
    ///
    /// # Safety
    /// Caller must hold the map mutex.
    unsafe fn alloc_block(&self, rec: NonNull<TaskRecord>) -> NonNull<DepBlock> {
        let block = self.blocks.alloc();
        let b = block.as_ref();
        // relaxed-ok: the block is exclusively ours until registration
        // publishes it; the guard drop's AcqRel fetch_sub (and the map
        // mutex) order these initial stores for every later observer.
        b.refs.store(1, Ordering::Relaxed);
        // relaxed-ok: exclusive init, see above.
        b.pending.store(1, Ordering::Relaxed); // the registration guard
                                               // relaxed-ok: exclusive init, see above.
        b.succ.store(std::ptr::null_mut(), Ordering::Relaxed); // clear CLOSED
        b.rec.set(rec.as_ptr());
        block
    }

    /// Drops one block reference; returns the block when the caller took
    /// the last one and must route it back to a pool free list.
    fn unref_block(block: *mut DepBlock) -> Option<NonNull<DepBlock>> {
        // Safety: the caller owns one reference; Release/Acquire mirrors
        // Arc so the recycler observes every prior use.
        let b = unsafe { &*block };
        if b.refs.fetch_sub(1, Ordering::Release) == 1 {
            std::sync::atomic::fence(Ordering::Acquire);
            Some(unsafe { NonNull::new_unchecked(block) })
        } else {
            None
        }
    }

    /// Applies one clause: order this task after the entry's predecessors,
    /// then update the entry's writer/reader state. When a recording is in
    /// flight (`sink`), every *logical* edge is mirrored into it — at the
    /// [`edge`](Self::edge) call sites, not after the CLOSED check inside:
    /// an edge to an already-retired predecessor is a timing no-op live,
    /// but the frozen graph captures logical dependence, and in replay the
    /// predecessor's retire really does decrement it.
    ///
    /// # Safety
    /// Caller must hold the map mutex (`map` is its guard's contents).
    unsafe fn apply(
        &self,
        map: &mut AddrMap,
        block: NonNull<DepBlock>,
        clause: &DepClause,
        mut sink: Option<&mut crate::replay::GraphRecorder>,
    ) {
        let entry = self.lookup_or_insert(map, clause.addr);
        let e = unsafe { entry.as_ref() };
        let me = block.as_ptr();
        let my_idx = block.as_ref().idx.get();
        match clause.access {
            DepAccess::Read => {
                let w = e.writer.get();
                if w == me {
                    // Reading an address we already wrote: our own write
                    // clause orders us (and future writers) already.
                    return;
                }
                if !w.is_null() {
                    if let Some(r) = sink.as_deref_mut() {
                        r.edge(unsafe { &*w }.idx.get(), my_idx);
                    }
                    self.edge(unsafe { &*w }, block);
                }
                let node = self.nodes.alloc();
                // relaxed-ok: ref increments need no ordering (Arc-style);
                // only the final decrement synchronises (Release + fence).
                unsafe { block.as_ref() }
                    .refs
                    .fetch_add(1, Ordering::Relaxed);
                let n = unsafe { node.as_ref() };
                n.block.set(me);
                // relaxed-ok: reader lists are map-mutex-guarded.
                n.next.store(e.readers.get(), Ordering::Relaxed);
                e.readers.set(node.as_ptr());
            }
            DepAccess::Write => {
                let w = e.writer.get();
                if w == me {
                    return;
                }
                if !w.is_null() {
                    if let Some(rec) = sink.as_deref_mut() {
                        rec.edge(unsafe { &*w }.idx.get(), my_idx);
                    }
                    self.edge(unsafe { &*w }, block);
                    if let Some(dead) = Self::unref_block(w) {
                        self.blocks.free_local(dead);
                    }
                }
                // A writer follows every reader registered since the last
                // writer (write-after-read), and starts a fresh reader set.
                let mut r = e.readers.replace(std::ptr::null_mut());
                while let Some(node) = NonNull::new(r) {
                    let n = unsafe { node.as_ref() };
                    // relaxed-ok: reader lists are map-mutex-guarded.
                    r = n.next.load(Ordering::Relaxed);
                    let rb = n.block.get();
                    if rb != me {
                        if let Some(rec) = sink.as_deref_mut() {
                            rec.edge(unsafe { &*rb }.idx.get(), my_idx);
                        }
                        self.edge(unsafe { &*rb }, block);
                    }
                    if let Some(dead) = Self::unref_block(rb) {
                        self.blocks.free_local(dead);
                    }
                    self.nodes.free_local(node);
                }
                // relaxed-ok: ref increment, see the Read arm.
                unsafe { block.as_ref() }
                    .refs
                    .fetch_add(1, Ordering::Relaxed);
                e.writer.set(me);
            }
        }
    }

    /// Orders `succ` after `pred`: counts the edge in `succ.pending`
    /// *first* (so a concurrent retire cannot release early), then pushes
    /// it onto `pred`'s successor list; a predecessor that already retired
    /// (CLOSED) takes the count back — nothing to wait for.
    ///
    /// # Safety
    /// Caller must hold the map mutex (node allocation).
    unsafe fn edge(&self, pred: &DepBlock, succ: NonNull<DepBlock>) {
        let s = unsafe { succ.as_ref() };
        s.pending.fetch_add(1, Ordering::AcqRel);
        let node = self.nodes.alloc();
        unsafe { node.as_ref() }.block.set(succ.as_ptr());
        let mut head = pred.succ.load(Ordering::Acquire);
        // The count-then-push window the protocol is built around: a
        // predecessor retiring here swaps in CLOSED and the push must
        // observe it and take the count back.
        crate::bots_failpoint!("dep_edge_cas");
        loop {
            if head == closed() {
                self.nodes.free_local(node);
                // Cannot release the task: the registration guard in
                // `pending` holds until every clause is applied.
                s.pending.fetch_sub(1, Ordering::AcqRel);
                return;
            }
            // relaxed-ok: the edge node's link is published by the Release
            // CAS below; the retire drain's AcqRel swap is the only reader.
            unsafe { node.as_ref() }.next.store(head, Ordering::Relaxed);
            // transition: pred.succ: head -> node (edge published; racing
            // retire either drains it or this CAS fails on CLOSED).
            match pred.succ.compare_exchange_weak(
                head,
                node.as_ptr(),
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    /// Finds the entry for `addr` in the (locked) map, inserting a fresh
    /// pooled entry — growing the bucket table past a 0.75 load factor —
    /// when the address is new.
    ///
    /// # Safety
    /// Caller must hold the map mutex.
    unsafe fn lookup_or_insert(&self, map: &mut AddrMap, addr: usize) -> NonNull<ObjEntry> {
        if map.buckets.is_empty() {
            map.buckets = vec![std::ptr::null_mut(); INITIAL_BUCKETS];
        } else if map.len * 4 >= map.buckets.len() * 3 {
            Self::grow_buckets(map);
        }
        let idx = bucket_of(addr_hash(addr), map.buckets.len());
        let mut cur = map.buckets[idx];
        while let Some(entry) = NonNull::new(cur) {
            let e = unsafe { entry.as_ref() };
            if e.addr.get() == addr {
                return entry;
            }
            // relaxed-ok: bucket chains are map-mutex-guarded.
            cur = e.next.load(Ordering::Relaxed);
        }
        let entry = self.entries.alloc();
        let e = unsafe { entry.as_ref() };
        e.addr.set(addr);
        e.writer.set(std::ptr::null_mut());
        e.readers.set(std::ptr::null_mut());
        // relaxed-ok: bucket chains are map-mutex-guarded.
        e.next.store(map.buckets[idx], Ordering::Relaxed);
        map.buckets[idx] = entry.as_ptr();
        map.len += 1;
        entry
    }

    #[cold]
    fn grow_buckets(map: &mut AddrMap) {
        let doubled = map.buckets.len() * 2;
        let old = std::mem::replace(&mut map.buckets, vec![std::ptr::null_mut(); doubled]);
        for mut cur in old {
            while let Some(entry) = NonNull::new(cur) {
                let e = unsafe { entry.as_ref() };
                // relaxed-ok: bucket chains are map-mutex-guarded.
                cur = e.next.load(Ordering::Relaxed);
                let idx = bucket_of(addr_hash(e.addr.get()), doubled);
                // relaxed-ok: bucket chains are map-mutex-guarded.
                e.next.store(map.buckets[idx], Ordering::Relaxed);
                map.buckets[idx] = entry.as_ptr();
            }
        }
    }

    /// Free pooled blocks currently recycled (tests only; racy).
    #[cfg(test)]
    fn pooled_blocks(&self) -> usize {
        let mut n = 0;
        for head in [
            self.blocks.local.get(),
            self.blocks.reclaim.load(Ordering::Acquire),
        ] {
            let mut cur = head;
            while let Some(b) = NonNull::new(cur) {
                n += 1;
                cur = unsafe { b.as_ref() }.pool.load(Ordering::Relaxed);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskAttrs, HOME_BOXED};
    use std::mem::MaybeUninit;

    fn boxed_record() -> NonNull<TaskRecord> {
        let slot = NonNull::new(Box::into_raw(Box::new(MaybeUninit::<TaskRecord>::uninit())))
            .unwrap()
            .cast::<TaskRecord>();
        unsafe {
            TaskRecord::init(
                slot,
                None,
                None,
                std::ptr::null(),
                HOME_BOXED,
                TaskAttrs::default(),
            )
        };
        slot
    }

    fn free_record(rec: NonNull<TaskRecord>) {
        assert_eq!(unsafe { rec.as_ref() }.release_ref(), 1);
        unsafe {
            drop(Box::from_raw(
                rec.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
            ))
        };
    }

    fn block_of(rec: NonNull<TaskRecord>) -> NonNull<DepBlock> {
        unsafe { rec.as_ref() }
            .take_dep_state()
            .expect("dep state attached")
            .cast()
    }

    /// Retires `rec`'s block, collecting released records.
    fn retire_collect(t: &DepTracker, rec: NonNull<TaskRecord>) -> Vec<NonNull<TaskRecord>> {
        let mut out = Vec::new();
        unsafe { t.retire(block_of(rec), |r| out.push(r)) };
        out
    }

    const A: usize = 0x1000;
    const B: usize = 0x2000;

    fn write(addr: usize) -> DepClause {
        DepClause {
            addr,
            access: DepAccess::Write,
        }
    }

    fn read(addr: usize) -> DepClause {
        DepClause {
            addr,
            access: DepAccess::Read,
        }
    }

    #[test]
    fn chain_releases_in_order() {
        let t = DepTracker::new();
        let (r1, r2, r3) = (boxed_record(), boxed_record(), boxed_record());
        assert!(unsafe { t.register(r1, &[write(A)]) }, "no predecessor");
        assert!(!unsafe { t.register(r2, &[write(A)]) }, "waits for r1");
        assert!(!unsafe { t.register(r3, &[write(A)]) }, "waits for r2");
        let released = retire_collect(&t, r1);
        assert_eq!(released, vec![r2], "retiring r1 releases exactly r2");
        let released = retire_collect(&t, r2);
        assert_eq!(released, vec![r3]);
        assert!(retire_collect(&t, r3).is_empty());
        t.reset();
        for r in [r1, r2, r3] {
            free_record(r);
        }
    }

    #[test]
    fn readers_run_concurrently_and_gate_the_next_writer() {
        let t = DepTracker::new();
        let w1 = boxed_record();
        let (a, b) = (boxed_record(), boxed_record());
        let w2 = boxed_record();
        assert!(unsafe { t.register(w1, &[write(A)]) });
        assert!(!unsafe { t.register(a, &[read(A)]) });
        assert!(!unsafe { t.register(b, &[read(A)]) });
        assert!(!unsafe { t.register(w2, &[write(A)]) }, "w2 waits for all");
        // w1 retires: both readers release together (no serialisation).
        let released = retire_collect(&t, w1);
        assert_eq!(released.len(), 2);
        assert!(released.contains(&a) && released.contains(&b));
        // w2 needs *both* readers: one is not enough.
        assert!(retire_collect(&t, a).is_empty());
        assert_eq!(retire_collect(&t, b), vec![w2]);
        assert!(retire_collect(&t, w2).is_empty());
        t.reset();
        for r in [w1, a, b, w2] {
            free_record(r);
        }
    }

    #[test]
    fn diamond_fan_in() {
        // top writes A and B; left reads A writes A; right reads B writes
        // B; bottom reads both → waits for left and right.
        let t = DepTracker::new();
        let (top, left, right, bottom) = (
            boxed_record(),
            boxed_record(),
            boxed_record(),
            boxed_record(),
        );
        assert!(unsafe { t.register(top, &[write(A), write(B)]) });
        assert!(!unsafe { t.register(left, &[write(A)]) });
        assert!(!unsafe { t.register(right, &[write(B)]) });
        assert!(!unsafe { t.register(bottom, &[read(A), read(B)]) });
        let released = retire_collect(&t, top);
        assert_eq!(released.len(), 2);
        assert!(retire_collect(&t, left).is_empty(), "bottom still waits");
        assert_eq!(retire_collect(&t, right), vec![bottom]);
        assert!(retire_collect(&t, bottom).is_empty());
        t.reset();
        for r in [top, left, right, bottom] {
            free_record(r);
        }
    }

    #[test]
    fn registering_after_retire_is_ready() {
        let t = DepTracker::new();
        let r1 = boxed_record();
        assert!(unsafe { t.register(r1, &[write(A)]) });
        assert!(retire_collect(&t, r1).is_empty());
        // r1 retired but still the entry's last writer: the CLOSED succ
        // list makes the edge a no-op, so r2 is immediately ready.
        let r2 = boxed_record();
        assert!(unsafe { t.register(r2, &[read(A)]) });
        assert!(retire_collect(&t, r2).is_empty());
        t.reset();
        free_record(r1);
        free_record(r2);
    }

    #[test]
    fn in_and_out_on_the_same_address_is_one_task() {
        let t = DepTracker::new();
        let r1 = boxed_record();
        assert!(unsafe { t.register(r1, &[write(A), read(A), write(A)]) });
        let r2 = boxed_record();
        assert!(!unsafe { t.register(r2, &[write(A)]) });
        assert_eq!(retire_collect(&t, r1), vec![r2]);
        assert!(retire_collect(&t, r2).is_empty());
        t.reset();
        free_record(r1);
        free_record(r2);
    }

    /// The per-clause-locking cycle regression: T1 declares [A, B] and T2
    /// declares [B, A]. Because a task's whole clause list registers
    /// atomically, the later registrant depends on the earlier one on
    /// *both* addresses — duplicate edges, never a mutual wait — and the
    /// earlier one's retire releases it.
    #[test]
    fn opposite_clause_orders_cannot_cycle() {
        let t = DepTracker::new();
        let (r1, r2) = (boxed_record(), boxed_record());
        assert!(unsafe { t.register(r1, &[write(A), write(B)]) });
        assert!(!unsafe { t.register(r2, &[write(B), write(A)]) });
        assert_eq!(
            retire_collect(&t, r1),
            vec![r2],
            "r2 must be released by r1 alone (both edges drain on one retire)"
        );
        assert!(retire_collect(&t, r2).is_empty());
        t.reset();
        free_record(r1);
        free_record(r2);
    }

    /// Deadlock-freedom under genuinely concurrent registrants: threads
    /// race to register tasks with opposite clause orders on a shared
    /// address pair, the main thread retires released tasks worklist-style,
    /// and every task must come out exactly once — a cycle would strand
    /// the worklist with tasks still pending.
    #[test]
    fn concurrent_registrants_never_cycle() {
        const PER_THREAD: usize = 200;
        let t = DepTracker::new();
        let ready = Mutex::new(Vec::new());
        let all = Mutex::new(Vec::new());
        std::thread::scope(|threads| {
            for flip in [false, true] {
                let (t, ready, all) = (&t, &ready, &all);
                threads.spawn(move || {
                    for _ in 0..PER_THREAD {
                        let rec = boxed_record();
                        let clauses = if flip {
                            [write(A), write(B)]
                        } else {
                            [write(B), write(A)]
                        };
                        let is_ready = unsafe { t.register(rec, &clauses) };
                        all.lock().unwrap().push(rec.as_ptr() as usize);
                        if is_ready {
                            ready.lock().unwrap().push(rec.as_ptr() as usize);
                        }
                    }
                });
            }
        });
        // Worklist: retire released tasks until quiet; a registration
        // cycle would leave tasks no retire can ever reach.
        let mut worklist = std::mem::take(&mut *ready.lock().unwrap());
        let mut retired = 0usize;
        while let Some(p) = worklist.pop() {
            retired += 1;
            let rec = NonNull::new(p as *mut TaskRecord).unwrap();
            for released in retire_collect(&t, rec) {
                worklist.push(released.as_ptr() as usize);
            }
        }
        assert_eq!(
            retired,
            2 * PER_THREAD,
            "a registration cycle stranded {} tasks",
            2 * PER_THREAD - retired
        );
        t.reset();
        for p in all.lock().unwrap().drain(..) {
            free_record(NonNull::new(p as *mut TaskRecord).unwrap());
        }
    }

    #[test]
    fn reset_returns_blocks_to_the_pool() {
        let t = DepTracker::new();
        let recs: Vec<_> = (0..8).map(|_| boxed_record()).collect();
        for (i, &r) in recs.iter().enumerate() {
            unsafe { t.register(r, &[write(A + i * 8)]) };
        }
        for &r in &recs {
            retire_collect(&t, r);
        }
        // Entries still hold the writer mentions; reset drops them.
        t.reset();
        assert!(
            t.pooled_blocks() >= 8,
            "reset must recycle every block, found {}",
            t.pooled_blocks()
        );
        // A second lease-equivalent round reuses pooled state.
        let r = boxed_record();
        assert!(unsafe { t.register(r, &[write(A)]) });
        retire_collect(&t, r);
        t.reset();
        for rec in recs {
            free_record(rec);
        }
        free_record(r);
    }

    #[test]
    fn stride_allocated_addresses_spread_across_buckets() {
        // SparseLU dep tokens are consecutive slots 16 bytes apart; an
        // index built from the product's *low* bits would cluster them
        // into 1/16 of the buckets (low product bits depend only on low
        // address bits), inflating every chain walk under the map lock.
        let len = INITIAL_BUCKETS;
        for stride in [8usize, 16, 64, 128, 4096] {
            let used: std::collections::HashSet<usize> = (0..len)
                .map(|i| bucket_of(addr_hash(0x7f00_1000 + stride * i), len))
                .collect();
            assert!(
                used.len() > len / 2,
                "stride-{stride} addresses hit only {} of {len} buckets",
                used.len()
            );
        }
    }

    #[test]
    fn distinct_addresses_do_not_interact() {
        let t = DepTracker::new();
        let (r1, r2) = (boxed_record(), boxed_record());
        assert!(unsafe { t.register(r1, &[write(A)]) });
        assert!(unsafe { t.register(r2, &[write(B)]) }, "different object");
        retire_collect(&t, r1);
        retire_collect(&t, r2);
        t.reset();
        free_record(r1);
        free_record(r2);
    }
}
