//! The task-creation API handed to code running inside a parallel region.
//!
//! A [`Scope`] is the Rust-side stand-in for "being inside an OpenMP task":
//! it knows the executing worker and the current task's record. Its methods
//! map one-to-one onto the constructs the BOTS kernels use:
//!
//! | OpenMP | here |
//! |---|---|
//! | `#pragma omp task` | [`Scope::spawn`] |
//! | `#pragma omp task untied if(c) final(d)` | [`Scope::spawn_with`] + [`TaskAttrs`] |
//! | `#pragma omp task depend(in: x) depend(inout: y)` | [`Scope::task`] + [`TaskBuilder::after_read`]/[`TaskBuilder::after_write`] |
//! | `#pragma omp taskwait` | [`Scope::taskwait`] |
//! | `#pragma omp taskgroup` (3.1) | [`Scope::taskgroup`] |
//! | `#pragma omp taskyield` (3.1) | [`Scope::taskyield`] |
//! | `#pragma omp for` (task generator loop) | [`Scope::parallel_for`] |
//! | worksharing-task loop (Maroñas et al.) | [`Scope::for_each`] + [`LoopMode::Worksharing`] |
//! | `omp_get_thread_num()` | [`Scope::worker_id`] |
//! | `omp_get_num_threads()` | [`Scope::num_workers`] |
//! | `omp_in_final()` | [`Scope::in_final`] |
//!
//! A deferred spawn is the hot path of the whole suite and performs **zero
//! heap allocations** in the steady state: the task record comes from the
//! worker's slab and the closure is stored inline in the record (see
//! [`crate::task`] and [`crate::slab`]). The same now holds for the rest of
//! the constructs a kernel body uses: `taskgroup` leases a pooled group
//! descriptor ([`crate::group`]) and `parallel_for` stores a *borrow* of
//! its body in the generator tasks — whole kernel bodies run
//! allocation-free once the pools are warm.

use std::marker::PhantomData;
use std::ops::Range;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;

use crate::cont::{self, Continuation};
use crate::deps::{DepAccess, DepClause};
use crate::group::Group;
use crate::pool::{self, ExecCtx, Shared, WorkerCtx, CLOCK_STRIDE};
use crate::region::Region;
use crate::replay;
use crate::stats::WorkerCounters;
use crate::task::{TaskAttrs, TaskRecord};
use crate::wsloop::WsLoop;

/// `depend` clauses a [`TaskBuilder`] holds **inline** (and so
/// allocation-free). Eight covers every kernel in the suite — SparseLU's
/// `bmod`, the widest, uses three. Wider clause sets are supported too:
/// the builder spills to a thread-pooled vector, so the first 9+-clause
/// task on a thread pays one allocation and later ones reuse it.
pub const MAX_TASK_DEPS: usize = 8;

/// Spill vectors kept per thread for clause lists wider than
/// [`MAX_TASK_DEPS`]; see [`DepSpill`].
const SPILL_POOL_CAP: usize = 4;

thread_local! {
    /// Recycled clause-spill vectors (capacity retained), so oversized
    /// clause sets stop allocating once a thread's pool is warm.
    static SPILL_POOL: std::cell::RefCell<Vec<Vec<DepClause>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Overflow storage for a [`TaskBuilder`]'s clause list past
/// [`MAX_TASK_DEPS`]: a vector leased from [`SPILL_POOL`] and returned —
/// cleared, capacity intact — on drop.
struct DepSpill(Vec<DepClause>);

impl DepSpill {
    fn lease() -> DepSpill {
        SPILL_POOL.with(|p| DepSpill(p.borrow_mut().pop().unwrap_or_default()))
    }
}

impl Drop for DepSpill {
    fn drop(&mut self) {
        self.0.clear();
        SPILL_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < SPILL_POOL_CAP {
                pool.push(std::mem::take(&mut self.0));
            }
        });
    }
}

/// How long the *helping* wait loop (deadline-armed regions, replay
/// drains) sleeps between re-probes when it finds nothing to run (safety
/// net; normal wake-ups are eventful). Suspending waits never park — they
/// leave the worker entirely.
const WAIT_PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

/// Why a spawn runs undeferred (the inline cascade's verdict), in
/// precedence order. Computed once per spawn by `Scope::inline_reason`;
/// attribution to the matching counters happens separately so
/// clause-carrying spawns can hold the verdict until registration has
/// answered ready-vs-deferred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InlineReason {
    /// An ancestor was `final`: included tasks are undeferred by the spec.
    Final,
    /// The spawn's `if(false)` clause requested undeferred execution.
    If,
    /// The global runtime cut-off ([`crate::RuntimeCutoff`]) tripped.
    Cutoff,
    /// The region was admitted in shed mode (overload admission control).
    Shed,
    /// The region's own task budget ([`crate::RegionBudget`]) tripped.
    Budget,
}

/// Execution context of one running task; see the module-level docs for
/// the OpenMP construct mapping.
///
/// `'scope` bounds the data that spawned tasks may borrow; it is the region
/// body's environment lifetime, enforced exactly like `std::thread::scope` /
/// `rayon::scope`: [`crate::Runtime::parallel`] does not return until every
/// task has finished, so `'scope` borrows stay valid for as long as any task
/// can observe them.
pub struct Scope<'scope> {
    /// The current task's record. Guaranteed live for the lifetime of the
    /// scope: the executing fiber holds the record's queue handle for the
    /// whole task body, and `Scope` is neither `Send` nor longer-lived than
    /// the body. (The scope deliberately holds no worker pointer: a blocked
    /// wait suspends the fiber, which may resume on *any* worker, so the
    /// executing worker is re-read from thread-local state on every use.)
    rec: NonNull<TaskRecord>,
    /// Innermost active `taskgroup`, inherited by spawned tasks. A raw
    /// pointer into the pooled group descriptors; valid for the life of the
    /// scope because the owning `taskgroup` frame (which holds the lease)
    /// waits for this task — a member — before returning.
    group: Option<NonNull<Group>>,
    /// Invariant in `'scope`.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub(crate) fn from_exec(ec: &ExecCtx) -> Scope<'scope> {
        let group = unsafe { ec.rec.as_ref() }.group();
        Scope {
            rec: ec.rec,
            group,
            _marker: PhantomData,
        }
    }

    /// The worker currently mounting this frame. Resolved per call, never
    /// cached across a wait: a suspending scheduling point can resume the
    /// frame on a different worker.
    #[inline]
    fn worker(&self) -> &WorkerCtx {
        pool::current_worker()
    }

    #[inline]
    fn rec(&self) -> &TaskRecord {
        // Safety: see the field docs — the record outlives the scope.
        unsafe { self.rec.as_ref() }
    }

    /// Index of the worker executing the current task, in `0..num_workers`.
    /// Stable until the next task scheduling point: a wait that blocks
    /// (`taskwait`, `taskgroup`, loop barriers) suspends the frame, and a
    /// different worker may resume it. Code that partitions by worker must
    /// re-read this after any wait.
    #[inline]
    pub fn worker_id(&self) -> usize {
        self.worker().index
    }

    /// Team size.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.worker().shared.config.num_threads
    }

    /// Recursion depth of the current task (region root = 0).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.rec().depth
    }

    /// Is the current task tied?
    #[inline]
    pub fn is_tied(&self) -> bool {
        self.rec().tied
    }

    /// Is the current task final (OpenMP 3.1 `omp_in_final()`)? Children of
    /// a final task are executed inline, unconditionally.
    #[inline]
    pub fn in_final(&self) -> bool {
        self.rec().final_
    }

    /// `#pragma omp task`: spawns a tied, deferred child task.
    ///
    /// A thin wrapper over [`task`](Self::task) — equivalent to
    /// `self.task(f).spawn()` — kept as *the* hot no-attribute path.
    #[inline]
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.spawn_impl(TaskAttrs::default(), &[], f);
    }

    /// Spawns a child task with explicit attributes (`untied`, `if`,
    /// `final`); a thin wrapper over [`task`](Self::task), equivalent to
    /// `self.task(f).with_attrs(attrs).spawn()`. The decision cascade
    /// mirrors an OpenMP runtime:
    ///
    /// 1. inside a final task → run inline (included task);
    /// 2. `if(false)` → run inline, undeferred, but *through* the runtime
    ///    (bookkeeping happens — this is the paper's if-clause cut-off);
    /// 3. runtime cut-off trips → run inline;
    /// 4. otherwise initialise a pooled record, link it to the parent, and
    ///    push it on the local deque — no heap allocation unless the
    ///    closure outgrows the record's inline storage or the slab needs a
    ///    fresh chunk.
    #[inline]
    pub fn spawn_with<F>(&self, attrs: TaskAttrs, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.spawn_impl(attrs, &[], f);
    }

    /// Starts a [`TaskBuilder`] for `body`: the chainable spawn surface
    /// behind every task-creating construct. `spawn`/`spawn_with` are thin
    /// wrappers over it; what the builder adds is OpenMP 4.0-style
    /// **`depend` clauses**:
    ///
    /// ```
    /// use bots_runtime::Runtime;
    /// use std::sync::atomic::{AtomicU64, Ordering};
    ///
    /// let rt = Runtime::with_threads(2);
    /// let x = AtomicU64::new(0);
    /// let y = AtomicU64::new(0);
    /// rt.parallel(|s| {
    ///     let (x, y) = (&x, &y);
    ///     // produce(x) → transform(x → y) → consume(y): a data-flow
    ///     // chain with no taskwait anywhere.
    ///     s.task(move |_| x.store(21, Ordering::Relaxed))
    ///         .after_write(x)
    ///         .spawn();
    ///     s.task(move |_| y.store(x.load(Ordering::Relaxed) * 2, Ordering::Relaxed))
    ///         .after_read(x)
    ///         .after_write(y)
    ///         .spawn();
    ///     s.task(move |_| assert_eq!(y.load(Ordering::Relaxed), 42))
    ///         .after_read(y)
    ///         .spawn();
    /// });
    /// assert_eq!(y.load(Ordering::Relaxed), 42);
    /// ```
    ///
    /// Dependences are **address-identity**: `after_read(&x)` /
    /// `after_write(&x)` never dereference `x`, they key the per-region
    /// dependency tracker by its address (see [`crate::TaskBuilder`] for
    /// the full semantics).
    #[inline]
    pub fn task<'s, F>(&'s self, body: F) -> TaskBuilder<'s, 'scope, F>
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        TaskBuilder {
            scope: self,
            body,
            attrs: TaskAttrs::default(),
            deps: [DepClause::default(); MAX_TASK_DEPS],
            n_deps: 0,
            spill: None,
        }
    }

    /// The one spawn path behind `spawn`, `spawn_with` and
    /// [`TaskBuilder::spawn`]. With no clauses this is the classic cascade
    /// (inline-or-defer, lock-free); with clauses the task registers with
    /// the region's dependency tracker — or, when the region carries a
    /// replay token, with the frozen graph ([`crate::replay`]) — and is
    /// either queued immediately (all predecessors retired) or held in the
    /// **Deferred** state until the last predecessor's exit releases it.
    ///
    /// An *unready* dependency task cannot run inline (its predecessors
    /// have not finished), so for clause-carrying spawns the cascade's
    /// verdict is computed up front but acted on only when registration
    /// reports the task ready: a ready task with a tripped `final` /
    /// `if(false)` / cut-off / budget executes synchronously right here —
    /// through the full dispatch path, so dependency retirement and
    /// attribution stay exact — instead of being queued (documented on
    /// [`TaskBuilder`]).
    fn spawn_impl<F>(&self, attrs: TaskAttrs, deps: &[DepClause], f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let worker = self.worker();
        let shared = &*worker.shared;
        let counters = worker.counters();

        let region = unsafe { self.rec().region().as_ref() };
        // Task creation is a cancellation point (OpenMP `cancellation
        // point` at task scheduling points): a spawn inside a cancelled
        // region — or a cancelled taskgroup — creates nothing at all. No
        // record, no group join, no dep registration; the task is counted
        // as skipped and the cancelled subtree stops growing, which is
        // also what bounds the inline cascade below under cancellation.
        if let Some(region) = region {
            if region.is_cancelled()
                || self
                    .group
                    .is_some_and(|g| unsafe { g.as_ref() }.is_cancelled())
            {
                WorkerCounters::bump(&counters.skipped);
                WorkerCounters::bump(&region.shard(worker.index).skipped);
                return;
            }
        }
        // One predicate pass for every spawn. Clause-free tasks act on the
        // verdict immediately; clause-carrying tasks hold it until
        // registration has answered ready-vs-Deferred (an unready task
        // cannot run inline), then honor it on the ready path below.
        let inline = self.inline_reason(attrs, region);
        if deps.is_empty() {
            if let Some(reason) = inline {
                self.bump_inline_counters(reason, region);
                return self.run_inline(attrs, f);
            }
        }

        let rec = worker.new_record(Some(self.rec), self.group, attrs);
        self.rec().add_child();
        if let Some(g) = self.group {
            // Safety: this frame is (transitively) inside the group's
            // taskgroup, whose wait keeps the descriptor leased.
            unsafe { g.as_ref() }.join();
        }
        shared.queued_delta(worker.index, 1);
        WorkerCounters::bump(&counters.spawned);
        // Region attribution: this worker's private (single-writer) shard
        // of the region's counters, so the bumps stay contention-free.
        if let Some(region) = region {
            WorkerCounters::bump(&region.shard(worker.index).spawned);
            region.queued_delta(worker.index, 1);
        }

        // Store the user closure (wrapped to rebuild a scope) in the
        // record. The `'scope` lifetime is erased by the raw storage —
        // sound for the same reason as `rayon::Scope`: the region joiner
        // blocks until the region quiesces, which happens-after this task's
        // closure has returned, so the `'scope` environment outlives every
        // access the closure can make.
        let spilled = unsafe {
            TaskRecord::store_closure(rec, move |ec: &ExecCtx| {
                let scope = Scope::from_exec(ec);
                f(&scope);
            })
        };
        if spilled {
            // Spill telemetry: the zero-allocation property just leaked one
            // box; the counter lets kernels assert it never happens to them.
            WorkerCounters::bump(&counters.closure_spilled);
        }

        if !deps.is_empty() {
            let region = region.expect("depend clauses require a region task");
            let ready = self.register_deps(region, rec, deps);
            if !ready {
                // Deferred: predecessors hold the record; the retiring
                // worker that drops its release count to zero queues it.
                WorkerCounters::bump(&counters.deps_deferred);
                return;
            }
            // Ready at registration — every predecessor already retired —
            // so the inline cascade applies after all: execute the task
            // synchronously through the full dispatch path (dependency
            // retire, group leave, attribution) instead of queueing it.
            // Unlike the clause-free inline path above, the task was
            // counted as spawned (it has a real record); `execute`'s
            // bookkeeping is symmetric with that.
            if let Some(reason) = inline {
                self.bump_inline_counters(reason, Some(region));
                worker.execute(rec);
                return;
            }
        }

        worker.deque.push(rec);
        // One task → at most one extra pair of hands.
        shared.work.notify_one();
    }

    /// The inline cascade's predicate half: why — if at all — would this
    /// spawn run undeferred? Ordered exactly like the classic cascade:
    /// `final` ancestry, `if(false)`, the global runtime cut-off, shed
    /// mode, then the region's own budget (checked against *this region's*
    /// queued count, so a greedy region serialises itself without slowing
    /// a sibling's spawns). Counter attribution is separate
    /// ([`bump_inline_counters`](Self::bump_inline_counters)) so
    /// clause-carrying spawns can compute the verdict without committing
    /// to it.
    fn inline_reason(&self, attrs: TaskAttrs, region: Option<&Region>) -> Option<InlineReason> {
        let worker = self.worker();
        if self.rec().final_ {
            return Some(InlineReason::Final);
        }
        if !attrs.if_clause {
            return Some(InlineReason::If);
        }
        if worker
            .shared
            .cutoff_trips(worker.deque.len(), self.rec().depth)
        {
            return Some(InlineReason::Cutoff);
        }
        if let Some(region) = region {
            // Shed mode (admitted over the in-flight watermark): the
            // region degrades to serial execution instead of piling more
            // deferred work onto an overloaded team.
            if region.shed_mode() {
                return Some(InlineReason::Shed);
            }
            if region.budget_trips() {
                return Some(InlineReason::Budget);
            }
        }
        None
    }

    /// Attributes one acted-on inline decision to the matching counters.
    fn bump_inline_counters(&self, reason: InlineReason, region: Option<&Region>) {
        let worker = self.worker();
        let counters = worker.counters();
        match reason {
            InlineReason::Final => WorkerCounters::bump(&counters.inlined_final),
            InlineReason::If => WorkerCounters::bump(&counters.inlined_if),
            InlineReason::Cutoff => WorkerCounters::bump(&counters.inlined_cutoff),
            InlineReason::Shed => {
                WorkerCounters::bump(&counters.inlined_shed);
                if let Some(region) = region {
                    WorkerCounters::bump(&region.shard(worker.index).shed);
                }
            }
            InlineReason::Budget => {
                WorkerCounters::bump(&counters.inlined_budget);
                if let Some(region) = region {
                    WorkerCounters::bump(&region.shard(worker.index).serialized);
                }
            }
        }
    }

    /// Registers a clause-carrying task with the region, routed by the
    /// region's replay mode ([`crate::replay`]): plain live registration,
    /// live + recording, warm replay off the frozen graph, or the
    /// post-divergence live fallback. Returns ready-vs-Deferred like
    /// [`crate::deps::DepTracker::register`].
    ///
    /// `deps_registered` counts *tracker* traffic, so it is bumped here on
    /// the live paths only — a warm replayed spawn never touches the
    /// tracker and must not count (it is exactly the traffic replay
    /// exists to remove).
    fn register_deps(&self, region: &Region, rec: NonNull<TaskRecord>, deps: &[DepClause]) -> bool {
        let counters = self.worker().counters();
        match region.replay().mode() {
            replay::MODE_RECORDING => {
                // The recorder's own lock (taken before the tracker mutex,
                // consistently) keeps the `&mut GraphRecorder` exclusive
                // even with concurrent registrants. Cold path: once per
                // token.
                let mut guard = region
                    .replay()
                    .recorder()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                WorkerCounters::add(&counters.deps_registered, deps.len() as u64);
                match guard.as_deref_mut() {
                    // Safety: the record is initialised, closure stored,
                    // and not yet published to any queue.
                    Some(r) => unsafe { region.deps().register_recording(rec, deps, r) },
                    None => unsafe { region.deps().register(rec, deps) },
                }
            }
            replay::MODE_REPLAYING => self.replay_register(region, rec, deps),
            replay::MODE_DIVERGED => {
                // A no-op once the diverging spawn's drain finished; kept
                // here so racing spawners that lose the divergence CAS
                // also wait before touching the (empty) tracker.
                self.drain_replayed(region);
                WorkerCounters::add(&counters.deps_registered, deps.len() as u64);
                // Safety: as above.
                unsafe { region.deps().register(rec, deps) }
            }
            _ => {
                WorkerCounters::add(&counters.deps_registered, deps.len() as u64);
                // Safety: as above.
                unsafe { region.deps().register(rec, deps) }
            }
        }
    }

    /// The warm replay spawn: claims the next frozen index, checks the
    /// renamed clause hash against the recording, and wires the record
    /// into the preresolved graph — no tracker mutex, no map buckets, no
    /// allocation. A mismatch (or overrunning the recorded task count)
    /// diverges the region and falls back to live registration.
    fn replay_register(
        &self,
        region: &Region,
        rec: NonNull<TaskRecord>,
        deps: &[DepClause],
    ) -> bool {
        let rp = region.replay();
        let g = rp.graph().expect("replaying region without a leased graph");
        let idx = rp.claim_idx();
        let matched =
            (idx as usize) < g.n_tasks() && g.hash_clauses(deps) == Some(g.task_hash(idx));
        if !matched {
            self.diverge(region);
            let counters = self.worker().counters();
            WorkerCounters::add(&counters.deps_registered, deps.len() as u64);
            // Safety: initialised, closure stored, unpublished.
            return unsafe { region.deps().register(rec, deps) };
        }
        // Count the spawn before publishing the record: a divergence
        // waiter must never observe a drained count while a matched task
        // is still about to run.
        rp.inc_outstanding();
        let slot = g.slot(idx);
        // Safety: initialised, closure stored, unpublished; the tag bit
        // routes the post-execute retire to the frozen graph.
        unsafe { rec.as_ref().set_dep_state(replay::tag_slot(slot)) };
        slot.store_rec(rec);
        // Drop the spawn guard: a zero transition means every frozen
        // predecessor has already retired — the task is ready.
        slot.drop_guard()
    }

    /// A replayed spawn stopped matching the recording: flip the region to
    /// Diverged and drain the matched prefix, after which live
    /// registration starts from an *empty* tracker — sound because frozen
    /// edges always point from earlier spawns to later ones, so the
    /// matched prefix is closed under predecessors and completes on its
    /// own.
    #[cold]
    fn diverge(&self, region: &Region) {
        crate::bots_failpoint!("replay_diverge");
        region.replay().mark_diverged();
        self.drain_replayed(region);
    }

    /// Waits (help-executing, like any task scheduling point) until every
    /// matched replayed spawn has retired. When the *current* task is
    /// itself one of them its own retire only happens after its body
    /// returns, so the drain target is one, not zero.
    fn drain_replayed(&self, region: &Region) {
        let rp = region.replay();
        let me = self.rec();
        let target = (me.parent().is_some() && me.dep_state_is_replay()) as usize;
        self.wait_until_helping(|| rp.outstanding() <= target);
    }

    /// Runs an undeferred (inline / included) task: full record bookkeeping
    /// so `depth`, tiedness and `final` propagation stay correct, executed
    /// synchronously on the current stack. The record carries no closure —
    /// it exists so children of the inline task see a correct parent chain.
    fn run_inline<F>(&self, attrs: TaskAttrs, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // No group join/leave: an inline task completes before this returns,
        // so it can never be outstanding at a group wait. (The record still
        // carries the group pointer so deferred children inherit it — they
        // join individually at spawn time.)
        let worker = self.worker();
        let rec = worker.new_record(Some(self.rec), self.group, attrs);

        // Release the creator handle even on unwind: deferred children may
        // outlive the inline task, and their parent-chain references (and
        // ultimately region quiescence) hinge on this release happening.
        // The slab slot index is resolved at drop time, not captured: the
        // body may suspend at a wait and resume on a different worker, and
        // `release_record` must route frees through the *releasing*
        // thread's slab shard.
        struct ReleaseGuard<'a> {
            shared: &'a Shared,
            rec: NonNull<TaskRecord>,
        }
        impl Drop for ReleaseGuard<'_> {
            fn drop(&mut self) {
                self.shared
                    .release_record(self.rec, Some(pool::current_worker().index));
            }
        }
        let _guard = ReleaseGuard {
            shared: &worker.shared,
            rec,
        };

        let child = Scope {
            rec,
            group: self.group,
            _marker: PhantomData,
        };
        f(&child);
    }

    /// `#pragma omp taskwait`: blocks until every *direct* child of the
    /// current task has completed.
    ///
    /// This is a task scheduling point. A wait that cannot complete
    /// immediately does not nest other tasks under the blocked frame and
    /// does not spin: the frame **suspends** — its pooled continuation
    /// parks in a waiter slot on the task record — and the worker returns
    /// to its dispatch loop, free to run *anything*, tied or not. The
    /// child whose completion drains the count requeues the continuation
    /// on its own worker's deque, so the waiter resumes wherever its wake
    /// happened (possibly a different worker: see
    /// [`worker_id`](Self::worker_id)). Tied and untied tasks behave
    /// identically here; the classic tied-task scheduling restriction is
    /// moot because a blocked wait no longer borrows its worker's stack.
    pub fn taskwait(&self) {
        WorkerCounters::bump(&self.worker().counters().taskwaits);
        self.wait_children();
    }

    /// Has the current region — or the innermost enclosing `taskgroup` —
    /// been cancelled? The poll half of cooperative cancellation: long
    /// task bodies (and the generator loops of [`parallel_for`]) check
    /// this to stop early; everything else (spawns, dispatch) checks it
    /// automatically at task scheduling points.
    ///
    /// [`parallel_for`]: Self::parallel_for
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        unsafe { self.rec().region().as_ref() }.is_some_and(|r| r.is_cancelled())
            || self
                .group
                .is_some_and(|g| unsafe { g.as_ref() }.is_cancelled())
    }

    /// Cancels the current region from inside one of its tasks — OpenMP's
    /// `#pragma omp cancel parallel`. Cooperative: already-running task
    /// bodies finish (or poll [`is_cancelled`](Self::is_cancelled)), new
    /// spawns are suppressed, and queued tasks of the region are
    /// dispatched with their bodies skipped. The region still reaches
    /// quiescence and returns every pooled resource; its joiner observes
    /// [`RegionError::Cancelled`](crate::RegionError::Cancelled).
    pub fn cancel_region(&self) {
        if let Some(region) = unsafe { self.rec().region().as_ref() } {
            self.worker().shared.cancel_region(region);
        }
    }

    /// Cancels the innermost enclosing `taskgroup` — OpenMP's
    /// `#pragma omp cancel taskgroup`. Spawns into the cancelled group
    /// (by any member, transitively) are suppressed from here on; the
    /// group wait still drains members already created. Returns `false`
    /// when the current task is not inside a `taskgroup`.
    pub fn cancel_group(&self) -> bool {
        match self.group {
            Some(g) => {
                // Safety: this frame is (transitively) inside the group's
                // taskgroup, whose wait keeps the descriptor leased.
                unsafe { g.as_ref() }.cancel();
                self.worker().shared.progress.notify();
                true
            }
            None => false,
        }
    }

    /// `#pragma omp taskgroup` (OpenMP 3.1 extension): runs `body` inline and
    /// then waits for **all** tasks spawned within it, transitively — a deep
    /// wait, unlike `taskwait`'s direct-children-only wait.
    ///
    /// Because the wait is deep, tasks spawned through the inner scope may
    /// safely borrow locals of the *current* frame (like `rayon::scope` /
    /// `std::thread::scope`); the compiler picks `'inner` to cover them. This
    /// is the construct the recursive kernels use to return results through
    /// parent-frame variables, which the paper's C code does with plain
    /// shared variables + `taskwait`.
    ///
    /// Zero-allocation: the group descriptor is leased from a per-worker
    /// pool ([`crate::group`]) instead of `Arc`-allocated per use; the wait
    /// counts in [`RuntimeStats::group_waits`], not `taskwaits`.
    ///
    /// [`RuntimeStats::group_waits`]: crate::RuntimeStats::group_waits
    pub fn taskgroup<'inner, F, R>(&'inner self, body: F) -> R
    where
        F: FnOnce(&Scope<'inner>) -> R,
    {
        let worker = self.worker();
        let shared = &*worker.shared;
        // Zero-allocation construct: the group descriptor is leased from
        // the worker's pooled free list, not Arc-allocated per use.
        let (group, fresh) = shared.group_pool.lease(worker.index);
        // Re-arm the cancel flag: the pool only hands out drained
        // descriptors, so no member of a previous use can observe this.
        unsafe { group.as_ref() }.reset();
        // Owner-as-member: the waiting frame joins its own group for the
        // whole body, so the member count hits zero **exactly once** per
        // lease — at the final leave — and the drain claim (which wakes a
        // suspended waiter) has a unique transition to fire on.
        unsafe { group.as_ref() }.join();
        let counters = worker.counters();
        WorkerCounters::bump(if fresh {
            &counters.groups_fresh
        } else {
            &counters.groups_recycled
        });

        // The drain-and-release obligation rides a guard so it holds on
        // unwind too: members may borrow this very frame *and* hold raw
        // pointers to the leased descriptor, so a body panic must not pop
        // the frame (or return the lease) while members are outstanding.
        struct GroupGuard<'s, 'scope> {
            scope: &'s Scope<'scope>,
            group: NonNull<Group>,
        }
        impl Drop for GroupGuard<'_, '_> {
            fn drop(&mut self) {
                // The group wait is a task scheduling point like taskwait,
                // but counted separately: folding it into `taskwaits` would
                // silently inflate the Table II taskwait column.
                WorkerCounters::bump(&self.scope.worker().counters().group_waits);
                let group = unsafe { self.group.as_ref() };
                // Give up our own membership first. If *our* leave drained
                // the group, no member ever drove a zero transition: the
                // waiter slot was never claimed and the wait is already
                // over. Otherwise wait — suspending when allowed — and
                // then rendezvous with the zero-driving member's claim
                // stamp, whose landing is its final descriptor access.
                if !group.leave() {
                    self.scope.wait_group(group);
                    group.await_drain_claim();
                }
                // Re-resolve the worker: the wait may have migrated us.
                let worker = self.scope.worker();
                worker.shared.group_pool.release(self.group, worker.index);
            }
        }
        let guard = GroupGuard { scope: self, group };

        let inner: Scope<'inner> = Scope {
            rec: self.rec,
            group: Some(group),
            _marker: PhantomData,
        };
        let r = body(&inner);
        // Wait for every member (transitively) and return the lease.
        drop(guard);
        r
    }

    /// `#pragma omp taskyield` (OpenMP 3.1 extension): a task scheduling
    /// point where the current task allows the worker to run at most one
    /// other task before continuing. Returns whether anything was
    /// executed. (Other work runs on its *own* pooled fiber, not nested
    /// under this frame, so there is nothing the tied-task scheduling
    /// constraint could protect — any queued item is fair game.)
    pub fn taskyield(&self) -> bool {
        self.try_run_one()
    }

    /// Acquires and dispatches one queue item, if any is visible: own
    /// deque first, then one steal round. The item is mounted on its own
    /// fiber (or resumed on the one it already has), never nested under
    /// the calling frame, so no scheduling restriction applies.
    fn try_run_one(&self) -> bool {
        let worker = self.worker();
        if let Some(t) = worker.pop_local().or_else(|| worker.try_steal()) {
            WorkerCounters::bump(&worker.counters().switched_in_wait);
            worker.dispatch(t);
            return true;
        }
        false
    }

    /// May a blocked wait suspend its continuation? Deadline-armed regions
    /// keep the legacy helping/park loop: the parked re-probe is what
    /// stamps the coarse clock and trips the deadline cancellation when no
    /// task dispatch is advancing it — with every frame suspended, an
    /// otherwise-idle team would never notice the deadline passing.
    fn can_suspend(&self) -> bool {
        match unsafe { self.rec().region().as_ref() } {
            Some(region) => region.deadline_ms() == 0,
            None => true,
        }
    }

    /// Suspends the calling fiber: `RUNNING → SUSPENDING → switch out`.
    /// The caller must already have parked `c` in a waiter slot; a wake
    /// that claimed the registration before the park finished shows up as
    /// a `QUEUED` stamp, which is consumed here without unmounting.
    /// Returns once the continuation is resumed (or the token was eaten).
    fn suspend(&self, c: &Continuation) {
        match c.state.compare_exchange(
            cont::RUNNING,
            cont::SUSPENDING,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                WorkerCounters::bump(&self.worker().counters().cont_suspends);
                crate::bots_failpoint!("cont_suspend");
                // Safety: called on this fiber's own stack; the host
                // finalises the park (or requeues on a raced wake) the
                // moment the switch lands back in `mount`.
                unsafe { c.switch_out() };
                // Resumed: the dispatching worker stored RUNNING before
                // mounting us, and we may be on a different thread now.
            }
            Err(actual) => {
                // The wake won the race to our state word: absorb it as a
                // token and carry on running — no queue round-trip.
                debug_assert_eq!(actual, cont::QUEUED);
                c.state.store(cont::RUNNING, Ordering::Relaxed);
            }
        }
    }

    /// Suspending wait for `outstanding() == 0` on the current task's own
    /// record (taskwait, generator drains). The registration/recheck pair
    /// and the completing child's decrement/claim pair are both SeqCst, so
    /// one side always observes the other: a lost-wakeup would need the
    /// recheck to miss the decrement *and* the claim to miss the
    /// registration, which no interleaving of two SeqCst store/load pairs
    /// permits (the store-buffering argument).
    fn wait_children(&self) {
        let rec = self.rec();
        if rec.outstanding() == 0 {
            return;
        }
        if !self.can_suspend() {
            return self.wait_until_helping(|| rec.outstanding() == 0);
        }
        let cont = pool::current_cont().expect("task body running off-fiber");
        let c = unsafe { cont.as_ref() };
        loop {
            if rec.outstanding() == 0 {
                return;
            }
            rec.register_waiter(cont);
            if rec.outstanding() == 0 {
                // Drained while we registered. Either the registration is
                // still ours to take back, or the zero-driving child
                // already claimed it — then its wake (a token, since we
                // never parked) must be consumed before the slot can be
                // considered quiet.
                if rec.claim_waiter().is_none() {
                    consume_wake_token(c);
                }
                return;
            }
            self.suspend(c);
        }
    }

    /// Suspending wait for a taskgroup to drain, called by the lease owner
    /// *after* its own leave (see the `GroupGuard`). Same shape as
    /// [`wait_children`](Self::wait_children) with one twist: the drain
    /// claim always stamps the [`crate::group`] CLAIMED sentinel, so a
    /// raced unregistration reports "claim won" rather than handing the
    /// slot back.
    fn wait_group(&self, group: &Group) {
        if !self.can_suspend() {
            return self.wait_until_helping(|| group.outstanding() == 0);
        }
        let cont = pool::current_cont().expect("task body running off-fiber");
        let c = unsafe { cont.as_ref() };
        loop {
            if group.outstanding() == 0 {
                return;
            }
            if !group.try_register_waiter(cont) {
                // The zero-driving member's drain claim landed between our
                // outstanding() read and the registration: the group is
                // drained, no wake is coming, and the CLAIMED stamp stays
                // put for `await_drain_claim`.
                return;
            }
            if group.outstanding() == 0 {
                if !group.unregister_waiter(cont) {
                    consume_wake_token(c);
                }
                return;
            }
            self.suspend(c);
        }
    }

    /// The legacy helping wait: run other tasks (each on its own fiber)
    /// until `done`. Retained for the two waits that cannot suspend —
    /// deadline-armed regions (see [`can_suspend`](Self::can_suspend)) and
    /// replay drains, whose retire path signals the progress channel but
    /// has no waiter slot to claim a continuation from. Helping never
    /// migrates the calling frame: nested dispatch always returns to this
    /// stack on this thread.
    fn wait_until_helping(&self, done: impl Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            if self.try_run_one() {
                continue;
            }
            let worker = self.worker();
            let shared = &*worker.shared;
            // Register on the progress channel and park until the waited
            // counter drains. New *work* does not wake a parked waiter (the
            // 2 ms re-probe picks it up); only its own completion signal
            // does — which is exactly once per wait, not once per task.
            let token = shared.progress.prepare();
            if done() {
                shared.progress.cancel();
                return;
            }
            // About to park: stamp the coarse clock and enforce a region
            // deadline even when no task dispatch is advancing it. This
            // only *cancels* — the wait itself must still run to `done()`:
            // outstanding children may borrow this very frame, so an early
            // return here would be unsound. Cancellation instead empties
            // the region (spawn suppression + skip-dispatch), after which
            // `done()` flips on its own.
            shared.stamp_clock();
            if let Some(region) = unsafe { self.rec().region().as_ref() } {
                if !region.is_cancelled() && shared.deadline_passed(region) {
                    shared.cancel_region(region);
                }
            }
            if worker.work_visible() {
                shared.progress.cancel();
                continue;
            }
            shared.progress.wait_timeout(token, WAIT_PARK_TIMEOUT);
        }
    }

    /// `#pragma omp for` used as a *multiple-generator* construct: splits
    /// `range` into one contiguous chunk per worker, runs each chunk as an
    /// untied generator task, and ends with a barrier.
    ///
    /// `body` runs once per index, on the generator task's scope, so tasks
    /// it spawns are children of the generator — multiple workers create
    /// tasks concurrently, which is exactly the single-vs-multiple-generator
    /// experiment of the paper (§IV-D, SparseLU). The closing barrier waits
    /// for the iterations *and* the tasks they spawned (each generator ends
    /// with a `taskwait`).
    ///
    /// Zero-allocation: generator tasks store a **borrow** of `body` (the
    /// old implementation boxed it in an `Arc` per call). Sound because the
    /// construct cannot return — normally or by unwind — while any
    /// generator is outstanding (see [`GeneratorDrainGuard`]), and each
    /// generator's own closing `taskwait` means `body` is never called
    /// after the generators complete.
    /// A thin wrapper over [`for_each`](Self::for_each) — equivalent to
    /// `self.for_each(range, body).run()` (task-per-chunk mode, one chunk
    /// per worker). Kept as the familiar name; the builder is where chunk
    /// sizes and [`LoopMode::Worksharing`] live.
    pub fn parallel_for<F>(&self, range: Range<usize>, body: F)
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        self.for_each(range, body).run();
    }

    /// Like [`parallel_for`](Self::parallel_for) but with an explicit chunk
    /// size (an `omp for schedule(dynamic, chunk)` generator): a thin
    /// wrapper over [`for_each`](Self::for_each), equivalent to
    /// `self.for_each(range, body).chunk(chunk).run()`.
    pub fn parallel_for_chunked<F>(&self, range: Range<usize>, chunk: usize, body: F)
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        self.for_each(range, body).chunk(chunk).run();
    }

    /// Starts a [`ForBuilder`] over `range`: the unified loop surface
    /// behind `parallel_for`/`parallel_for_chunked`, and the only way to
    /// pick the dispatch mode:
    ///
    /// * [`LoopMode::Tasks`] (the default) — the multiple-generator
    ///   construct: one untied generator task per chunk, idle workers
    ///   steal whole chunks.
    /// * [`LoopMode::Worksharing`] — one pooled descriptor for the whole
    ///   iteration space; the team *claims* grain-sized strides off a
    ///   shared atomic cursor, paying one task record per **worker**
    ///   instead of one per chunk (Maroñas et al., *Worksharing Tasks*).
    ///
    /// ```
    /// use bots_runtime::{LoopMode, Runtime};
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let rt = Runtime::with_threads(2);
    /// let sum = AtomicUsize::new(0);
    /// rt.parallel(|s| {
    ///     s.for_each(0..1000, |i, _| {
    ///         sum.fetch_add(i, Ordering::Relaxed);
    ///     })
    ///     .chunk(16)
    ///     .mode(LoopMode::Worksharing)
    ///     .run();
    /// });
    /// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    /// ```
    ///
    /// Both modes end with a barrier (the iterations *and* the tasks they
    /// spawned), observe cancellation between chunks/iterations, and store
    /// only a **borrow** of `body` — no allocation per call.
    #[inline]
    pub fn for_each<'s, F>(&'s self, range: Range<usize>, body: F) -> ForBuilder<'s, 'scope, F>
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        ForBuilder {
            scope: self,
            range,
            body,
            chunk: None,
            mode: LoopMode::Tasks,
        }
    }

    /// [`LoopMode::Tasks`] with the default chunking: one contiguous chunk
    /// per worker, each run as an untied generator task, closed by a
    /// barrier. This is the single-vs-multiple-generator experiment of the
    /// paper (§IV-D, SparseLU): `body` runs on the generator's scope, so
    /// tasks it spawns are children of the generator and multiple workers
    /// create tasks concurrently.
    ///
    /// Zero-allocation: generator tasks store a **borrow** of `body`.
    /// Sound because the construct cannot return — normally or by unwind —
    /// while any generator is outstanding (see [`GeneratorDrainGuard`]),
    /// and each generator's own closing `taskwait` means `body` is never
    /// called after the generators complete.
    fn run_tasks_for<F>(&self, range: Range<usize>, body: F)
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let chunks = self.num_workers().min(len);
        let chunk_size = len.div_ceil(chunks);
        // Safety: the guard (and the closing taskwait) drain every
        // generator before this frame — which owns `body` — is popped.
        let body: &'scope F = unsafe { std::mem::transmute(&body) };
        let guard = self.generator_drain_guard();
        for c in 0..chunks {
            let lo = range.start + c * chunk_size;
            let hi = (lo + chunk_size).min(range.end);
            if lo >= hi {
                break;
            }
            // Task scheduling points: stop generating on cancellation,
            // both between chunk spawns and between iterations inside a
            // generator. The closing taskwait still drains what exists.
            if self.is_cancelled() {
                break;
            }
            self.spawn_with(TaskAttrs::untied(), move |s| {
                for i in lo..hi {
                    if s.is_cancelled() {
                        break;
                    }
                    body(i, s);
                }
                s.taskwait();
            });
        }
        self.taskwait();
        std::mem::forget(guard);
    }

    /// [`LoopMode::Tasks`] with an explicit chunk size: spawns
    /// `ceil(len / chunk)` generator tasks that idle workers steal. Same
    /// borrow/drain soundness story as [`run_tasks_for`](Self::run_tasks_for).
    fn run_tasks_chunked<F>(&self, range: Range<usize>, chunk: usize, body: F)
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        // Safety: as in `run_tasks_for` — drained before the frame is left.
        let body: &'scope F = unsafe { std::mem::transmute(&body) };
        let guard = self.generator_drain_guard();
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + chunk).min(range.end);
            // Cancellation checks mirror `run_tasks_for`: stop generating
            // chunks and stop iterating inside a generator.
            if self.is_cancelled() {
                break;
            }
            self.spawn_with(TaskAttrs::untied(), move |s| {
                for i in lo..hi {
                    if s.is_cancelled() {
                        break;
                    }
                    body(i, s);
                }
                s.taskwait();
            });
            lo = hi;
        }
        self.taskwait();
        std::mem::forget(guard);
    }

    /// [`LoopMode::Worksharing`]: publish one pooled [`WsLoop`] descriptor
    /// for the whole iteration space and let the team claim grain-sized
    /// strides cooperatively. Spawns at most `num_workers - 1` *helper*
    /// tasks (one per extra pair of hands, not one per chunk), then the
    /// generating frame participates itself and closes with a barrier.
    ///
    /// Soundness mirrors the generator loops, with the descriptor lease
    /// layered on the [`crate::group`] protocol:
    ///
    /// * helpers hold a raw pointer to the descriptor and a borrow of
    ///   `body`; both stay valid because this frame cannot be left —
    ///   normally or by unwind — while any helper is outstanding (the
    ///   drain guard / closing `taskwait`), and a helper's last descriptor
    ///   access precedes its own completion;
    /// * the lease returns only after the drain (guard declaration order:
    ///   the release guard is declared *before* the drain guard, so on
    ///   unwind the helpers drain first, then the lease goes home);
    /// * tasks spawned by `body` are children of whichever participant ran
    ///   the iteration and never touch the descriptor.
    fn run_worksharing<F>(&self, range: Range<usize>, grain: usize, body: F)
    where
        F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
    {
        debug_assert!(grain > 0, "worksharing grain must be positive");
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let worker = self.worker();
        let shared = &*worker.shared;
        let counters = worker.counters();
        let (lp, fresh) = shared.loop_pool.lease(worker.index);
        WorkerCounters::bump(if fresh {
            &counters.loops_fresh
        } else {
            &counters.loops_recycled
        });
        unsafe { lp.as_ref() }.arm(
            range.start,
            range.end,
            grain,
            &body as *const F as *const (),
            invoke_chunk::<F>,
        );

        // Declared before the drain guard: drops *after* it, so on unwind
        // the helpers (which hold raw descriptor pointers) drain before
        // the lease returns to the pool.
        let _release = LoopReleaseGuard { scope: self, lp };
        // Safety: drained before the frame owning `body` is left.
        let guard = self.generator_drain_guard();

        let helpers = self
            .num_workers()
            .min(len.div_ceil(grain))
            .saturating_sub(1);
        for _ in 0..helpers {
            // Task scheduling point: stop recruiting on cancellation (the
            // claim loops observe the flag too).
            if self.is_cancelled() {
                break;
            }
            let ptr = LoopPtr(lp);
            self.spawn_with(TaskAttrs::untied(), move |s| {
                let ptr = ptr;
                s.ws_participate(ptr.0);
                // Barrier half: tasks spawned by claimed iterations are
                // children of this helper; drain them before completing.
                s.taskwait();
            });
        }
        // The generating frame is a participant too — worksharing needs no
        // idle generator blocked behind the claim cursor.
        self.ws_participate(lp);
        self.taskwait();
        std::mem::forget(guard);
    }

    /// One participant's claim cycle: claim grain-sized strides off the
    /// descriptor's cursor and run them against this scope until the space
    /// drains (or the region/group is cancelled — the claim loop is a
    /// cancellation point like the generator loops' iteration checks).
    fn ws_participate(&self, lp: NonNull<WsLoop>) {
        let worker = self.worker();
        let shared = &*worker.shared;
        WorkerCounters::bump(&worker.counters().ws_participations);
        // Safety: the descriptor stays leased (and the body alive) until
        // the generating frame's barrier has seen this participant finish.
        let l = unsafe { lp.as_ref() };
        let mut claims: u32 = 0;
        loop {
            // A chunk claim is a task scheduling point, and a participant
            // dispatches no tasks while it loops here — so it must keep
            // the deadline machinery honest itself: periodically re-stamp
            // the coarse clock and enforce the region's deadline, exactly
            // as task dispatch does.
            claims = claims.wrapping_add(1);
            if claims.is_multiple_of(CLOCK_STRIDE) {
                shared.stamp_clock();
                if let Some(region) = unsafe { self.rec().region().as_ref() } {
                    if !region.is_cancelled() && shared.deadline_passed(region) {
                        shared.cancel_region(region);
                    }
                }
            }
            if self.is_cancelled() {
                break;
            }
            let Some((lo, hi)) = l.claim() else {
                break;
            };
            // Per-iteration counter resolution: the body may spawn an
            // inline task whose wait suspends and migrates this frame, and
            // the single-writer counter bump must land on the worker the
            // frame is *currently* mounted on.
            WorkerCounters::bump(&self.worker().counters().ws_chunks);
            // Safety: claimed strides are disjoint; the scope pointer is
            // this participant's own live frame.
            unsafe { l.run_chunk(lo, hi, self as *const Scope<'scope> as *const ()) };
        }
        // Fault injection at the drain edge: perturb the window between a
        // participant's last claim and the owner observing completion.
        crate::bots_failpoint!("loop_drain");
    }

    /// The unwind half of the borrow-based `parallel_for` soundness story:
    /// generator tasks hold a frame-lifetime borrow of the loop body, so if
    /// spawning panics midway (an inlined generator's body can unwind into
    /// the spawner), the frame must not be popped while any direct child is
    /// outstanding. The guard drains on drop; the normal path drains via
    /// the closing `taskwait` and forgets it.
    fn generator_drain_guard<'s>(&'s self) -> GeneratorDrainGuard<'s, 'scope> {
        GeneratorDrainGuard(self)
    }
}

/// Spin-consumes a wake token whose delivery is guaranteed but possibly
/// still in flight: a waiter that lost its registration to a claimant
/// knows a `QUEUED` stamp is coming (or has come) and must revert it to
/// `RUNNING` before the continuation's state can carry another wait. The
/// claimant's stamp is one CAS away, so the spin is effectively instant.
fn consume_wake_token(c: &Continuation) {
    loop {
        if c.state
            .compare_exchange(
                cont::QUEUED,
                cont::RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return;
        }
        std::hint::spin_loop();
    }
}

/// See [`Scope::generator_drain_guard`].
struct GeneratorDrainGuard<'s, 'scope>(&'s Scope<'scope>);

impl Drop for GeneratorDrainGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.wait_children();
    }
}

/// The monomorphised trampoline a [`WsLoop`] descriptor dispatches claimed
/// chunks through: rebuilds the typed body/scope references and runs
/// iterations `lo..hi`, observing cancellation between iterations like the
/// generator loops. Coerces to [`ChunkInvoke`] — the signature types carry
/// no lifetimes, so the fn pointer is fully erased.
unsafe fn invoke_chunk<'scope, F>(body: *const (), lo: usize, hi: usize, scope: *const ())
where
    F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
{
    let body = &*(body as *const F);
    let scope = &*(scope as *const Scope<'scope>);
    for i in lo..hi {
        if scope.is_cancelled() {
            break;
        }
        body(i, scope);
    }
}

/// Send wrapper for the pooled loop-descriptor pointer captured by helper
/// tasks (the [`crate::pool`] `RegionPtr` pattern): the pointee is all
/// atomics and outlives the helpers by the lease protocol.
struct LoopPtr(NonNull<WsLoop>);
unsafe impl Send for LoopPtr {}

/// Returns a worksharing lease to the pool on scope exit — declared before
/// the drain guard so the drain (which keeps helper-held descriptor
/// pointers valid) happens first on unwind. See [`Scope::run_worksharing`].
struct LoopReleaseGuard<'s, 'scope> {
    scope: &'s Scope<'scope>,
    lp: NonNull<WsLoop>,
}

impl Drop for LoopReleaseGuard<'_, '_> {
    fn drop(&mut self) {
        // The pool shard is resolved at drop time: the barrier between
        // construction and here may have suspended and migrated the frame.
        let worker = self.scope.worker();
        self.scope
            .worker()
            .shared
            .loop_pool
            .release(self.lp, worker.index);
    }
}

/// How a [`ForBuilder`] dispatches its iteration space to the team.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoopMode {
    /// Task-per-chunk (the classic multiple-generator construct): each
    /// chunk is an untied task idle workers steal whole. Best when
    /// iterations are coarse or spawn subtrees of their own.
    #[default]
    Tasks,
    /// One shared descriptor for the whole space; participants claim
    /// grain-sized strides off an atomic cursor, paying one task record
    /// per worker instead of one per chunk. Best for fine-grained loops
    /// where per-chunk task protocol would dominate the body.
    Worksharing,
}

/// The chainable loop surface started by [`Scope::for_each`]:
/// `s.for_each(range, body).chunk(n).mode(LoopMode::Worksharing).run()`.
/// [`Scope::parallel_for`] and [`Scope::parallel_for_chunked`] are thin
/// wrappers over it.
///
/// Both modes compose with the rest of the runtime the same way the
/// generator loops always have: cancellation (and therefore deadlines) is
/// observed between chunks and between iterations, budgets/shed mode apply
/// to the tasks the modes create (per chunk for `Tasks`, per helper for
/// `Worksharing`), and tasks spawned *by* the body are ordinary children
/// of whichever task ran the iteration. The loop always closes with a
/// barrier covering the iterations and everything they spawned.
#[must_use = "a ForBuilder does nothing until .run() is called"]
pub struct ForBuilder<'s, 'scope, F> {
    scope: &'s Scope<'scope>,
    range: Range<usize>,
    body: F,
    chunk: Option<usize>,
    mode: LoopMode,
}

impl<'s, 'scope, F> ForBuilder<'s, 'scope, F>
where
    F: Fn(usize, &Scope<'scope>) + Send + Sync + 'scope,
{
    /// Sets the chunk size (`Tasks` mode: iterations per generator task;
    /// `Worksharing` mode: the claim grain). Without it, `Tasks` splits
    /// one chunk per worker and `Worksharing` picks a grain of
    /// `len / (4 × workers)` (at least 1), overridable team-wide with
    /// [`RuntimeConfig::with_loop_grain`](crate::RuntimeConfig::with_loop_grain).
    pub fn chunk(mut self, n: usize) -> Self {
        assert!(n > 0, "chunk size must be positive");
        self.chunk = Some(n);
        self
    }

    /// Picks the dispatch mode (default [`LoopMode::Tasks`]).
    pub fn mode(mut self, mode: LoopMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the loop to its closing barrier.
    pub fn run(self) {
        let ForBuilder {
            scope,
            range,
            body,
            chunk,
            mode,
        } = self;
        match mode {
            LoopMode::Tasks => match chunk {
                None => scope.run_tasks_for(range, body),
                Some(c) => scope.run_tasks_chunked(range, c, body),
            },
            LoopMode::Worksharing => {
                let len = range.end.saturating_sub(range.start);
                if len == 0 {
                    return;
                }
                let grain = chunk.unwrap_or_else(|| {
                    let configured = scope.worker().shared.config.loop_grain;
                    if configured > 0 {
                        configured
                    } else {
                        len.div_ceil(4 * scope.num_workers()).max(1)
                    }
                });
                scope.run_worksharing(range, grain, body);
            }
        }
    }
}

/// The chainable spawn surface started by [`Scope::task`]: attributes
/// (`tied`/`untied`/`final`/`if`) and OpenMP 4.0-style `depend` clauses,
/// ending in [`spawn`](Self::spawn). `Scope::spawn`/`spawn_with` are thin
/// wrappers over a clause-free builder.
///
/// ## Dependence semantics (address identity)
///
/// A clause names an **object address** — `after_read(&x)` and
/// `after_write(&x)` key the region's dependency tracker by `&x`'s address
/// and never dereference it:
///
/// * `after_read(&x)` — `depend(in: x)`: runs after the last task that
///   declared `after_write(&x)`;
/// * `after_write(&x)` — `depend(out/inout: x)`: runs after the last
///   writer of `x` *and* every reader declared since.
///
/// Two tasks are ordered only if both declare a clause on the same
/// address; dependences are scoped to the spawning task's **region**. A
/// task's whole clause list registers **atomically** (one tracker lock),
/// so registrations are totally ordered — every edge points from an
/// earlier registrant to a later one and the declared graph is always
/// acyclic, even when several tasks spawn dependency tasks concurrently
/// (concurrent registrants serialise briefly on that lock; a single
/// generator never contends). The object must outlive `'scope` — the
/// compiler enforces it, which also rules out dangling addresses being
/// recycled mid-region by an unrelated allocation.
///
/// A task whose predecessors have all retired is queued immediately; one
/// that must wait is held in the **Deferred** state — in no queue, costing
/// no scheduler attention — and is queued by the retiring predecessor that
/// releases its last dependence, on that worker's own deque. Steady-state
/// dependency chains allocate nothing: dep blocks, map entries and list
/// nodes are pooled per region (see `RuntimeStats::{deps_registered,
/// deps_deferred, deps_released}`).
///
/// ## Interaction with the inline cascade
///
/// A task carrying clauses honors the inline cascade (`final` ancestry,
/// `if(false)`, the runtime cut-off, shed mode, region budgets) exactly
/// when it is **ready at registration** — every predecessor has already
/// retired. A ready spawn that the cascade would undefer executes
/// synchronously before `spawn()` returns, through the full dispatch path
/// (its own retire releases successors as usual). A spawn with an
/// unretired predecessor is always deferred, whatever its attributes:
/// running it inline would execute a task whose inputs are still being
/// produced, or reorder the declared graph. The attributes still apply to
/// the deferred task itself (tiedness constrains its taskwaits; `final`
/// propagates to its clause-free descendants).
///
/// ## Synchronisation
///
/// `taskwait`/`taskgroup` interact with dependency tasks like with any
/// other child: a deferred child counts as outstanding until it has
/// actually run, so a `taskwait` is also a dependence barrier for the
/// waiting task's own children. Kernels that fully order themselves with
/// clauses need no barrier at all — region quiescence is the final join.
///
/// **Tied waits and cross-subtree dependences**: in runtimes that block
/// a tied task's wait on its worker's stack, the OpenMP task scheduling
/// constraint (the wait may only execute descendants) famously deadlocks
/// when a Deferred child's predecessor lives *outside* the waiting
/// subtree and no other worker is free — the TSC-2 / `depend` interplay.
/// Here a blocked wait **suspends its continuation** and frees the
/// worker entirely, so the out-of-subtree predecessor runs, retires, and
/// releases the Deferred child no matter how narrow the team; the
/// pattern completes on one thread with tied tasks and needs no untied
/// workaround.
#[must_use = "a TaskBuilder does nothing until .spawn() is called"]
pub struct TaskBuilder<'s, 'scope, F> {
    scope: &'s Scope<'scope>,
    body: F,
    attrs: TaskAttrs,
    deps: [DepClause; MAX_TASK_DEPS],
    n_deps: usize,
    /// Engaged by the clause past [`MAX_TASK_DEPS`]: a pooled overflow
    /// list holding *all* clauses (the inline array is copied in first),
    /// so wide dependence fans need no spawn-path special case.
    spill: Option<DepSpill>,
}

impl<'s, 'scope, F> TaskBuilder<'s, 'scope, F>
where
    F: FnOnce(&Scope<'scope>) + Send + 'scope,
{
    /// `depend(in: obj)`: run after the last task that declared a write on
    /// `obj`'s address. Identity only — `obj` is never dereferenced.
    pub fn after_read<T: ?Sized>(self, obj: &'scope T) -> Self {
        self.clause(obj as *const T as *const () as usize, DepAccess::Read)
    }

    /// `depend(out: obj)` / `depend(inout: obj)`: run after the last
    /// writer of `obj`'s address *and* every reader declared since; later
    /// clauses on the same address order themselves after this task.
    /// Identity only — `obj` is never dereferenced (which is why a shared
    /// reference suffices to declare a write *intent*).
    pub fn after_write<T: ?Sized>(self, obj: &'scope T) -> Self {
        self.clause(obj as *const T as *const () as usize, DepAccess::Write)
    }

    fn clause(mut self, addr: usize, access: DepAccess) -> Self {
        let clause = DepClause { addr, access };
        if let Some(sp) = self.spill.as_mut() {
            sp.0.push(clause);
        } else if self.n_deps < MAX_TASK_DEPS {
            self.deps[self.n_deps] = clause;
            self.n_deps += 1;
        } else {
            // Clause `MAX_TASK_DEPS + 1`: promote to a pooled spill list.
            // The common (narrow) case never reaches here and stays
            // allocation-free; a wide fan reuses a thread-local vector.
            let mut sp = DepSpill::lease();
            sp.0.extend_from_slice(&self.deps);
            sp.0.push(clause);
            self.spill = Some(sp);
        }
        self
    }

    /// Marks the task tied (the OpenMP default): its taskwaits may only
    /// pick up descendants.
    pub fn tied(mut self) -> Self {
        self.attrs.tied = true;
        self
    }

    /// Marks the task untied: its taskwaits drain and steal freely.
    pub fn untied(mut self) -> Self {
        self.attrs.tied = false;
        self
    }

    /// Applies the `final` clause: the task's clause-free descendants run
    /// inline, unconditionally (OpenMP 3.1 `final(true)`).
    pub fn finalize(mut self) -> Self {
        self.attrs.final_clause = true;
        self
    }

    /// Sets the `if` clause value; `false` makes a clause-free task
    /// undeferred (inline with bookkeeping — the paper's if-clause
    /// cut-off).
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.attrs.if_clause = cond;
        self
    }

    /// Replaces the whole attribute set (for call sites that compute a
    /// [`TaskAttrs`] once and reuse it across spawns).
    pub fn with_attrs(mut self, attrs: TaskAttrs) -> Self {
        self.attrs = attrs;
        self
    }

    /// Creates the task: registers its clauses (if any) and queues it —
    /// immediately when every predecessor has retired, otherwise the
    /// moment the last one does. Returns as soon as the task is created,
    /// like [`Scope::spawn`].
    pub fn spawn(self) {
        let TaskBuilder {
            scope,
            body,
            attrs,
            deps,
            n_deps,
            spill,
        } = self;
        match spill {
            // The spill's Drop returns the vector to the pool after the
            // clauses have been registered (spawn_impl copies them out).
            Some(sp) => scope.spawn_impl(attrs, &sp.0, body),
            None => scope.spawn_impl(attrs, &deps[..n_deps], body),
        }
    }
}
