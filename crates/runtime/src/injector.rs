//! The sharded, lock-free injector: how region root tasks enter the team.
//!
//! The old injector was one `Mutex<VecDeque>` — fine while a global region
//! lock admitted a single region at a time, a serial bottleneck the moment
//! many client threads feed regions concurrently. This version is **one
//! shard per worker**, each an intrusive Treiber stack threaded through the
//! records' own [`TaskRecord::next`] links (no queue-node allocation), with
//! an atomic length mirror per shard so idle probes stay lock-free.
//!
//! * **Push** (any thread): submitters pick a shard by hashing their thread
//!   id — concurrent clients land on different shards with high probability
//!   and never contend with each other's CAS loop. A push is one relaxed
//!   hash, one `fetch_add` on the shard's length mirror, and one CAS.
//! * **Pop** (workers only): a worker probes shards starting from its own.
//!   It takes a non-empty shard by **swapping the whole stack out**, keeps
//!   the chain's *tail* — the shard's oldest root, making each shard FIFO —
//!   and re-publishes the remainder with one push-side CAS. The swap is
//!   what makes the design ABA-free without tags or deferred reclamation:
//!   pop never performs the classic `CAS(head, head->next)` on memory
//!   another thread may have recycled — it only ever exchanges the head
//!   for null, and a swapped-out chain is owned exclusively by the swapper
//!   (re-linking it is a plain push, which is ABA-immune).
//!
//! A pop hands over exactly **one** root: region roots enter execution only
//! through the worker main loop, never through the task-switching pops a
//! blocked `taskwait` performs — a waiting task that adopted a whole
//! foreign region would nest that region's lifetime under its own frame
//! (unbounded latency, or deadlock if the foreign root blocks on the
//! waiter's continuation). Surplus roots therefore stay in the shard,
//! visible to every idle worker, and wake propagation ramps more workers
//! up to drain them.
//!
//! Ordering within a shard is FIFO (oldest root pops first, so a sustained
//! submitter cannot starve its own earlier regions); across shards it is
//! arbitrary (fairness across submitters comes from the sharding itself
//! plus the workers' rotating probe start). The length mirror is
//! incremented *before* the push CAS and decremented by the exact pop
//! count, so it can transiently over-count but never under-counts: a probe
//! that sees zero may trust it.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::local::CacheAligned;
use crate::task::TaskRecord;

/// One injector shard: an intrusive Treiber stack plus its length mirror.
#[derive(Default)]
struct Shard {
    /// Stack head, linked through [`TaskRecord::next`].
    head: AtomicPtr<TaskRecord>,
    /// Mirror of the shard's population for lock-free idle probes. May
    /// transiently exceed the true count (never trail it): incremented
    /// before the CAS that publishes a record, decremented by drains.
    len: AtomicUsize,
}

/// The team's sharded injector; see the module docs.
pub(crate) struct Injector {
    shards: Box<[CacheAligned<Shard>]>,
}

impl Injector {
    /// One shard per worker.
    pub(crate) fn new(workers: usize) -> Injector {
        Injector {
            shards: (0..workers.max(1))
                .map(|_| CacheAligned::default())
                .collect(),
        }
    }

    /// Pushes a region root onto the shard for `slot` (callers pass a
    /// submitter-derived hash; any value works, it is reduced modulo the
    /// shard count).
    ///
    /// The caller transfers the record's queue handle to the injector.
    pub(crate) fn push(&self, rec: NonNull<TaskRecord>, slot: usize) {
        crate::bots_failpoint!("injector_push");
        let shard = &self.shards[slot % self.shards.len()].0;
        // Length first: over-counting is benign (a spurious probe), a probe
        // seeing 0 while a record is published would be a missed wake-up.
        shard.len.fetch_add(1, Ordering::Release);
        // relaxed-ok: `head` is only the CAS expectation; a stale read
        // fails the CAS and retries with the witnessed value.
        let mut head = shard.head.load(Ordering::Relaxed);
        loop {
            // Safety: we own the record until the CAS publishes it; `next`
            // is free for queue use while the record sits in a queue.
            // relaxed-ok: `next` becomes visible only through the Release
            // CAS below; nobody can read it before the record is reachable.
            unsafe { rec.as_ref().next.store(head, Ordering::Relaxed) };
            // The push linearization point: this CAS makes the record
            // reachable to every popper.
            crate::bots_failpoint!("injector_push_cas");
            // transition: shard.head: head -> rec (record published,
            // queue-handle ownership moves to the shard).
            match shard.head.compare_exchange_weak(
                head,
                rec.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed, // relaxed-ok: failure path only retries
            ) {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    /// Lock-free idle probe: is any shard (probably) non-empty?
    pub(crate) fn is_probably_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.0.len.load(Ordering::Acquire) == 0)
    }

    /// Pops the **oldest** region root from the first non-empty shard,
    /// probing from `start` so each worker prefers its own shard. The rest
    /// of the swapped-out chain is re-published onto the shard before
    /// returning (see the module docs for why a pop never hands over more
    /// than one root).
    ///
    /// Taking the chain's tail makes each shard FIFO: a pop swaps the
    /// *entire* stack out, so the shard's globally oldest root is always in
    /// the swapped chain and is always the one taken — a sustained
    /// submitter can never starve its own earlier regions the way a
    /// take-newest stack pop would (the old `Mutex<VecDeque>` injector's
    /// `pop_front` guarantee, preserved).
    pub(crate) fn pop(&self, start: usize) -> Option<NonNull<TaskRecord>> {
        // A delay between the length probe and the swap-drain forces the
        // raced-empty-shard path stress tests rarely reach.
        crate::bots_failpoint!("injector_pop");
        let n = self.shards.len();
        for k in 0..n {
            let shard = &self.shards[(start + k) % n].0;
            if shard.len.load(Ordering::Acquire) == 0 {
                continue;
            }
            // Between the length probe and the swap another popper may
            // drain the shard, or a pusher may have bumped the length but
            // not yet published — the raced-empty window.
            crate::bots_failpoint!("injector_pop_swap");
            let head = shard.head.swap(std::ptr::null_mut(), Ordering::Acquire);
            let Some(newest) = NonNull::new(head) else {
                // Raced with another popper (or the pushing submitter has
                // bumped the length but not yet published): move on.
                continue;
            };
            // The chain is exclusively ours (newest first). Walk to the
            // tail — the oldest root — and sever it; everything before it
            // is re-published.
            let mut pred: Option<NonNull<TaskRecord>> = None;
            let mut oldest = newest;
            while let Some(next) =
                // relaxed-ok: the swap above took the whole chain with
                // Acquire; the links are immutable while we own them.
                NonNull::new(unsafe { oldest.as_ref() }.next.load(Ordering::Relaxed))
            {
                pred = Some(oldest);
                oldest = next;
            }
            if let Some(pred) = pred {
                // Splice `newest..=pred` back under whatever has been
                // pushed meanwhile (a plain push-side CAS, no ABA
                // exposure: the chain is unreachable to anyone else until
                // the CAS publishes it). While the chain is held here, the
                // surplus roots are invisible to every other worker.
                crate::bots_failpoint!("injector_pop_republish");
                // relaxed-ok: `cur` is only the CAS expectation below.
                let mut cur = shard.head.load(Ordering::Relaxed);
                loop {
                    // relaxed-ok: the severed tail's link is republished
                    // by the Release CAS below, unreadable until then.
                    unsafe { pred.as_ref().next.store(cur, Ordering::Relaxed) };
                    // transition: shard.head: cur -> newest (surplus chain
                    // re-published on top of concurrent pushes).
                    match shard.head.compare_exchange_weak(
                        cur,
                        newest.as_ptr(),
                        Ordering::Release,
                        Ordering::Relaxed, // relaxed-ok: failure only retries
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
            shard.len.fetch_sub(1, Ordering::Release);
            return Some(oldest);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    //! Loom-style interleaving tests, hand-staged with real threads: the
    //! invariant under test is that no record pushed by any submitter is
    //! ever lost or duplicated, whatever the interleaving of concurrent
    //! pushes and drains.

    use super::*;
    use crate::task::{TaskAttrs, TaskRecord};
    use std::collections::HashSet;
    use std::mem::MaybeUninit;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    fn boxed_record() -> NonNull<TaskRecord> {
        let slot = NonNull::new(Box::into_raw(Box::new(MaybeUninit::<TaskRecord>::uninit())))
            .unwrap()
            .cast::<TaskRecord>();
        unsafe {
            TaskRecord::init(
                slot,
                None,
                None,
                std::ptr::null(),
                crate::task::HOME_BOXED,
                TaskAttrs::tied(),
            )
        };
        slot
    }

    fn free_record(rec: NonNull<TaskRecord>) {
        assert_eq!(unsafe { rec.as_ref() }.release_ref(), 1);
        unsafe {
            drop(Box::from_raw(
                rec.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
            ))
        };
    }

    /// Pop everything the injector holds right now into a vec.
    fn drain_all(inj: &Injector) -> Vec<NonNull<TaskRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = inj.pop(0) {
            out.push(rec);
        }
        out
    }

    #[test]
    fn push_then_drain_round_trips() {
        let inj = Injector::new(3);
        let recs: Vec<_> = (0..10).map(|_| boxed_record()).collect();
        for (i, &r) in recs.iter().enumerate() {
            inj.push(r, i); // spread across shards
        }
        assert!(!inj.is_probably_empty());
        let got = drain_all(&inj);
        assert_eq!(got.len(), 10);
        let want: HashSet<usize> = recs.iter().map(|r| r.as_ptr() as usize).collect();
        let have: HashSet<usize> = got.iter().map(|r| r.as_ptr() as usize).collect();
        assert_eq!(want, have, "no record lost or duplicated");
        assert!(inj.is_probably_empty());
        for r in got {
            free_record(r);
        }
    }

    #[test]
    fn shard_pops_are_fifo() {
        // Per-shard progress guarantee: the oldest root always pops first,
        // even when new pushes interleave with pops.
        let inj = Injector::new(1);
        let recs: Vec<_> = (0..6).map(|_| boxed_record()).collect();
        for &r in &recs[..4] {
            inj.push(r, 0);
        }
        for &r in &recs[..2] {
            assert_eq!(inj.pop(0).unwrap().as_ptr(), r.as_ptr(), "oldest first");
        }
        for &r in &recs[4..] {
            inj.push(r, 0); // newer arrivals must not jump the queue
        }
        for &r in &recs[2..] {
            assert_eq!(inj.pop(0).unwrap().as_ptr(), r.as_ptr(), "oldest first");
        }
        assert!(inj.pop(0).is_none());
        for r in recs {
            free_record(r);
        }
    }

    #[test]
    fn empty_pop_returns_none() {
        let inj = Injector::new(2);
        assert!(inj.is_probably_empty());
        assert!(inj.pop(1).is_none());
    }

    #[test]
    fn pop_hands_over_one_root_and_republishes_the_rest() {
        // The no-foreign-region-nesting contract: however many roots sit on
        // one shard, a pop yields exactly one and the rest stay poppable by
        // everyone else.
        let inj = Injector::new(1);
        let recs: Vec<_> = (0..5).map(|_| boxed_record()).collect();
        for &r in &recs {
            inj.push(r, 0);
        }
        let first = inj.pop(0).expect("five queued");
        assert!(
            !inj.is_probably_empty(),
            "remainder must be back on the shard"
        );
        let rest = drain_all(&inj);
        assert_eq!(rest.len(), 4);
        let mut all: Vec<usize> = rest
            .iter()
            .chain([&first])
            .map(|r| r.as_ptr() as usize)
            .collect();
        all.sort_unstable();
        let mut want: Vec<usize> = recs.iter().map(|r| r.as_ptr() as usize).collect();
        want.sort_unstable();
        assert_eq!(all, want);
        for r in rest.into_iter().chain([first]) {
            free_record(r);
        }
    }

    #[test]
    fn single_shard_team_still_works() {
        let inj = Injector::new(1);
        let a = boxed_record();
        let b = boxed_record();
        inj.push(a, 17); // any slot value reduces onto the only shard
        inj.push(b, 3);
        let got = drain_all(&inj);
        assert_eq!(got.len(), 2);
        for r in got {
            free_record(r);
        }
    }

    /// Concurrent submitters vs concurrent drainers, interleaved for a
    /// while: every pushed record comes out exactly once.
    #[test]
    fn concurrent_push_pop_loses_nothing() {
        const PUSHERS: usize = 4;
        const PER_PUSHER: usize = 500;
        let inj = Arc::new(Injector::new(4));
        let seen = Arc::new(Mutex::new(Vec::<usize>::new()));
        let done = Arc::new(AtomicBool::new(false));

        let drainers: Vec<_> = (0..2)
            .map(|d| {
                let inj = inj.clone();
                let seen = seen.clone();
                let done = done.clone();
                std::thread::spawn(move || loop {
                    let mut batch = Vec::new();
                    while let Some(rec) = inj.pop(d) {
                        batch.push(rec.as_ptr() as usize);
                    }
                    if !batch.is_empty() {
                        seen.lock().unwrap().extend(batch);
                    } else if done.load(Ordering::Acquire) && inj.is_probably_empty() {
                        return;
                    }
                    std::thread::yield_now();
                })
            })
            .collect();

        let mut all = Vec::new();
        let pushers: Vec<_> = (0..PUSHERS)
            .map(|p| {
                let inj = inj.clone();
                let recs: Vec<usize> = (0..PER_PUSHER)
                    .map(|_| boxed_record().as_ptr() as usize)
                    .collect();
                all.extend(recs.iter().copied());
                std::thread::spawn(move || {
                    for &r in &recs {
                        inj.push(NonNull::new(r as *mut TaskRecord).unwrap(), p);
                        if r % 7 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in pushers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in drainers {
            h.join().unwrap();
        }

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), PUSHERS * PER_PUSHER, "records lost");
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), seen.len(), "records duplicated");
        assert_eq!(
            unique,
            all.into_iter().collect::<HashSet<usize>>(),
            "drained set differs from pushed set"
        );
        for &r in &unique {
            free_record(NonNull::new(r as *mut TaskRecord).unwrap());
        }
    }
}
