//! A Chase-Lev work-stealing deque specialised for task pointers.
//!
//! This is the central scheduling data structure of the runtime: every worker
//! owns one deque. The owner pushes and pops at the *bottom* (LIFO, giving
//! depth-first execution and cache locality for recursive task trees, the
//! common case for the BOTS kernels); thieves remove from the *top* (FIFO,
//! stealing the oldest — and for divide-and-conquer trees the largest —
//! pending task).
//!
//! The implementation follows Chase & Lev, *Dynamic Circular Work-Stealing
//! Deque* (SPAA'05), with the memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP'13). Elements are raw pointers (`usize`-sized), so the racy
//! read in `steal` is an atomic pointer load validated by the subsequent CAS
//! on `top`; no torn reads are possible.
//!
//! The ring buffer grows geometrically and never shrinks. Retired buffers are
//! kept alive until the deque is dropped, which sidesteps all reclamation
//! races: a thief holding a stale buffer pointer reads a slot that still
//! contains the value it held at retirement time, and the CAS on `top`
//! rejects the steal if that value is no longer current.

use std::cell::UnsafeCell;
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Initial ring capacity (must be a power of two).
const MIN_CAP: usize = 64;

/// A fixed-capacity ring of atomic pointers.
struct Buffer<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            slots,
            mask: cap - 1,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn read(&self, index: isize, order: Ordering) -> *mut T {
        self.slots[index as usize & self.mask].load(order)
    }

    #[inline]
    fn write(&self, index: isize, value: *mut T, order: Ordering) {
        self.slots[index as usize & self.mask].store(value, order);
    }
}

/// The shared state of one deque. `Worker` (owner side) and `Stealer`
/// (thief side) both point at this.
struct Inner<T> {
    /// Index of the oldest element; thieves CAS this forward.
    top: AtomicIsize,
    /// Index one past the youngest element; only the owner writes this.
    bottom: AtomicIsize,
    /// Current ring buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers retired by `grow`, freed when the deque is dropped.
    /// Only the owner touches this. The boxing is load-bearing despite
    /// clippy's advice: thieves may still hold raw pointers into a retired
    /// buffer, so its address must never move when the vector grows.
    #[allow(clippy::vec_box)]
    retired: UnsafeCell<Vec<Box<Buffer<T>>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // The owner is gone; any elements still queued are leaked pointers
        // owned by the caller (the pool drains all deques before dropping).
        let buf = self.buffer.load(Ordering::Relaxed);
        if !buf.is_null() {
            drop(unsafe { Box::from_raw(buf) });
        }
        // `retired` drops its boxes.
    }
}

/// Owner handle: push/pop at the bottom. Exactly one `TaskDeque` exists per
/// `Inner`; it is not `Clone` and not `Sync` (owner operations must come from
/// a single thread at a time).
pub struct TaskDeque<T> {
    inner: std::sync::Arc<Inner<T>>,
}

/// Thief handle: cloneable, steals from the top.
pub struct Stealer<T> {
    inner: std::sync::Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Got one.
    Success(T),
}

impl<T> Steal<T> {
    /// Unwraps `Success`, panicking otherwise. Test helper.
    pub fn success(self) -> T {
        match self {
            Steal::Success(v) => v,
            Steal::Empty => panic!("steal: empty"),
            Steal::Retry => panic!("steal: retry"),
        }
    }
}

/// Creates a new deque, returning the owner handle and a thief handle.
pub fn deque<T>() -> (TaskDeque<T>, Stealer<T>) {
    let buffer = Box::into_raw(Buffer::<T>::new(MIN_CAP));
    let inner = std::sync::Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(buffer),
        retired: UnsafeCell::new(Vec::new()),
    });
    (
        TaskDeque {
            inner: inner.clone(),
        },
        Stealer { inner },
    )
}

impl<T> TaskDeque<T> {
    /// Pushes an element at the bottom (owner only).
    pub fn push(&self, value: NonNull<T>) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };

        if b - t >= buf.capacity() as isize {
            // Full: grow. Owner-only, so a plain copy of live slots is safe.
            buf = self.grow(t, b);
        }
        buf.write(b, value.as_ptr(), Ordering::Relaxed);
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops an element from the bottom (owner only, LIFO).
    pub fn pop(&self) -> Option<NonNull<T>> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t > b {
            // Deque was empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = buf.read(b, Ordering::Relaxed);
        if t == b {
            // Last element: race against thieves via CAS on top.
            let won = inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            inner.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        NonNull::new(value)
    }

    /// Removes the *oldest* element (owner-side FIFO). Used by the
    /// breadth-first local-queue discipline: the owner takes from the same
    /// end thieves do, via the same CAS protocol.
    pub fn pop_fifo(&self) -> Option<NonNull<T>> {
        loop {
            match self.steal_top() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    fn steal_top(&self) -> Steal<NonNull<T>> {
        steal_impl(&self.inner)
    }

    /// Approximate number of queued elements (owner's view; racy for others).
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when no elements are observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grows the ring to twice its size, copying the live range `[t, b)`.
    #[cold]
    fn grow(&self, t: isize, b: isize) -> &Buffer<T> {
        let inner = &*self.inner;
        let old_ptr = inner.buffer.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new = Buffer::<T>::new(old.capacity() * 2);
        for i in t..b {
            new.write(i, old.read(i, Ordering::Relaxed), Ordering::Relaxed);
        }
        let new_ptr = Box::into_raw(new);
        inner.buffer.store(new_ptr, Ordering::Release);
        // Keep the old buffer alive for thieves holding stale pointers.
        unsafe { (*inner.retired.get()).push(Box::from_raw(old_ptr)) };
        // Reconstitute: `retired` now owns old; `buffer` owns new. Avoid the
        // double-free in Inner::drop by leaving `buffer` pointing at new only.
        unsafe { &*new_ptr }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest element.
    pub fn steal(&self) -> Steal<NonNull<T>> {
        steal_impl(&self.inner)
    }

    /// Approximate length as seen by a thief.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when no elements are observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn steal_impl<T>(inner: &Inner<T>) -> Steal<NonNull<T>> {
    let t = inner.top.load(Ordering::Acquire);
    fence(Ordering::SeqCst);
    let b = inner.bottom.load(Ordering::Acquire);
    if t >= b {
        return Steal::Empty;
    }
    // Non-owner read of the buffer pointer: Acquire pairs with the Release
    // store in `grow`.
    let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
    let value = buf.read(t, Ordering::Relaxed);
    if inner
        .top
        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        .is_err()
    {
        return Steal::Retry;
    }
    match NonNull::new(value) {
        Some(v) => Steal::Success(v),
        // A null here would mean reading a slot that was never written at
        // this logical index, which the CAS should have excluded.
        None => Steal::Retry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn boxed(v: usize) -> NonNull<usize> {
        NonNull::new(Box::into_raw(Box::new(v))).unwrap()
    }

    unsafe fn unbox(p: NonNull<usize>) -> usize {
        *Box::from_raw(p.as_ptr())
    }

    #[test]
    fn lifo_owner_semantics() {
        let (d, _s) = deque::<usize>();
        for i in 0..10 {
            d.push(boxed(i));
        }
        for i in (0..10).rev() {
            assert_eq!(unsafe { unbox(d.pop().unwrap()) }, i);
        }
        assert!(d.pop().is_none());
    }

    #[test]
    fn fifo_steal_semantics() {
        let (d, s) = deque::<usize>();
        for i in 0..10 {
            d.push(boxed(i));
        }
        for i in 0..10 {
            assert_eq!(unsafe { unbox(s.steal().success()) }, i);
        }
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn owner_fifo_pop() {
        let (d, _s) = deque::<usize>();
        for i in 0..5 {
            d.push(boxed(i));
        }
        for i in 0..5 {
            assert_eq!(unsafe { unbox(d.pop_fifo().unwrap()) }, i);
        }
        assert!(d.pop_fifo().is_none());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (d, s) = deque::<usize>();
        let n = MIN_CAP * 8;
        for i in 0..n {
            d.push(boxed(i));
        }
        assert_eq!(d.len(), n);
        // Steal half from the top, pop half from the bottom.
        for i in 0..n / 2 {
            assert_eq!(unsafe { unbox(s.steal().success()) }, i);
        }
        for i in (n / 2..n).rev() {
            assert_eq!(unsafe { unbox(d.pop().unwrap()) }, i);
        }
        assert!(d.is_empty());
    }

    #[test]
    fn interleaved_push_pop_steal_single_thread() {
        let (d, s) = deque::<usize>();
        d.push(boxed(1));
        d.push(boxed(2));
        assert_eq!(unsafe { unbox(s.steal().success()) }, 1);
        d.push(boxed(3));
        assert_eq!(unsafe { unbox(d.pop().unwrap()) }, 3);
        assert_eq!(unsafe { unbox(d.pop().unwrap()) }, 2);
        assert!(d.pop().is_none());
        assert_eq!(s.steal(), Steal::Empty);
    }

    /// One owner + many thieves: every pushed element is received exactly
    /// once across owner pops and thief steals.
    #[test]
    fn concurrent_no_loss_no_duplication() {
        const PUSHES: usize = 50_000;
        const THIEVES: usize = 6;

        let (d, s) = deque::<usize>();
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();

        for _ in 0..THIEVES {
            let s = s.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(p) => got.push(unsafe { unbox(p) }),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                // Drain once more to catch stragglers.
                                while let Steal::Success(p) = s.steal() {
                                    got.push(unsafe { unbox(p) });
                                }
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }

        // Owner: push everything, popping now and then.
        let mut owner_got = Vec::new();
        for i in 0..PUSHES {
            d.push(boxed(i));
            if i % 7 == 0 {
                if let Some(p) = d.pop() {
                    owner_got.push(unsafe { unbox(p) });
                }
            }
        }
        while let Some(p) = d.pop() {
            owner_got.push(unsafe { unbox(p) });
        }
        done.store(1, Ordering::Release);

        let mut all: Vec<usize> = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), PUSHES, "lost or duplicated elements");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), PUSHES, "duplicated elements");
    }

    /// Stress growth under concurrent stealing.
    #[test]
    fn concurrent_growth() {
        const PUSHES: usize = 200_000;
        let (d, s) = deque::<usize>();
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = s.clone();
            let done = done.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(p) => {
                        unsafe { unbox(p) };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) == 1 {
                            while let Steal::Success(p) = s.steal() {
                                unsafe { unbox(p) };
                                counter.fetch_add(1, Ordering::Relaxed);
                            }
                            break;
                        }
                    }
                }
            }));
        }

        for i in 0..PUSHES {
            d.push(boxed(i));
        }
        let mut popped = 0usize;
        while let Some(p) = d.pop() {
            unsafe { unbox(p) };
            popped += 1;
        }
        done.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(popped + counter.load(Ordering::Relaxed), PUSHES);
    }
}
