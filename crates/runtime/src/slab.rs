//! Per-worker free-list slabs for [`TaskRecord`]s: the allocation side of
//! the zero-allocation spawn fast path.
//!
//! Each worker owns one [`RecordSlab`]. Allocation is strictly owner-side
//! (only the worker thread calls [`RecordSlab::alloc`]) and is a plain
//! pointer pop from a singly-linked free list in the common case — no
//! atomics, no locks, no `malloc`. When the local list is dry the owner
//! first drains its **reclaim stack** — a Treiber stack onto which *other*
//! threads push records they freed (a thief executed the task, or a
//! cross-worker release cascade destroyed it) — and only when both are
//! empty does it fall back to carving a fresh chunk from the heap.
//!
//! Chunks are arrays of [`RuntimeConfig::record_chunk`] records, kept alive
//! for the lifetime of the pool: records cycle through free lists forever
//! and the chunk vector frees the memory when the runtime drops. The chunk
//! size is the pool-growth granularity knob; one 64-record chunk is 8 KiB.
//!
//! The intrusive link is [`TaskRecord::next`], which is only ever touched
//! while a record is free (its queue handle has been released and its
//! refcount has reached zero), so the link cannot race with live-task use.
//!
//! [`RuntimeConfig::record_chunk`]: crate::RuntimeConfig::record_chunk

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::task::TaskRecord;

/// A worker's record pool. Fields split by role:
///
/// * `free`, `chunks` — owner thread only;
/// * `reclaim` — any thread (MPSC: many pushers, the owner drains).
pub(crate) struct RecordSlab {
    /// Owner-only free list head (`TaskRecord::next` links).
    free: Cell<*mut TaskRecord>,
    /// Cross-thread reclaim stack head.
    reclaim: AtomicPtr<TaskRecord>,
    /// Backing chunks; pushed by the owner, freed on drop.
    chunks: UnsafeCell<Vec<Box<[MaybeUninit<TaskRecord>]>>>,
    /// Records per fresh chunk.
    chunk_records: usize,
}

// Safety: `free` and `chunks` are only accessed by the owning worker thread
// (enforced by the `unsafe` contracts on `alloc`/`free_local`); `reclaim` is
// a lock-free stack designed for cross-thread pushes.
unsafe impl Send for RecordSlab {}
unsafe impl Sync for RecordSlab {}

/// Where an allocation came from, for the recycling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocSource {
    /// Popped from the local free list or the reclaim stack.
    Recycled,
    /// Carved from a freshly heap-allocated chunk.
    Fresh,
}

impl RecordSlab {
    pub(crate) fn new(chunk_records: usize) -> Self {
        RecordSlab {
            free: Cell::new(std::ptr::null_mut()),
            reclaim: AtomicPtr::new(std::ptr::null_mut()),
            chunks: UnsafeCell::new(Vec::new()),
            chunk_records: chunk_records.max(1),
        }
    }

    /// Pops one free record slot. The returned memory is uninitialised (or
    /// holds a stale, fully-released record) — the caller must
    /// [`TaskRecord::init`] it.
    ///
    /// # Safety
    /// Owner thread only.
    pub(crate) unsafe fn alloc(&self) -> (NonNull<TaskRecord>, AllocSource) {
        let head = self.free.get();
        if !head.is_null() {
            // relaxed-ok: the local free list is owner-thread-only; the
            // link was written by this same thread (or handed over by an
            // Acquire drain), so there is nothing to synchronise with.
            self.free.set((*head).next.load(Ordering::Relaxed));
            return (NonNull::new_unchecked(head), AllocSource::Recycled);
        }
        if let Some(rec) = self.drain_reclaim() {
            return (rec, AllocSource::Recycled);
        }
        (self.grow(), AllocSource::Fresh)
    }

    /// Returns a record to the local free list.
    ///
    /// # Safety
    /// Owner thread only; `rec` must be fully released (refcount zero) and
    /// owned by this slab.
    pub(crate) unsafe fn free_local(&self, rec: NonNull<TaskRecord>) {
        // relaxed-ok: owner-thread-only list; the record is fully released
        // so no other thread can observe the link.
        rec.as_ref().next.store(self.free.get(), Ordering::Relaxed);
        self.free.set(rec.as_ptr());
    }

    /// Returns a record from another thread: pushes it onto the reclaim
    /// stack for the owner to drain.
    ///
    /// `rec` must be fully released and owned by this slab, but the caller
    /// may be any thread.
    pub(crate) fn free_remote(&self, rec: NonNull<TaskRecord>) {
        crate::bots_failpoint!("slab_free_remote");
        // relaxed-ok: `head` is only the CAS expectation; a stale read
        // fails the CAS and retries with the witnessed value.
        let mut head = self.reclaim.load(Ordering::Relaxed);
        loop {
            // relaxed-ok: the link is published by the Release CAS below;
            // the owner's Acquire swap is the only reader.
            unsafe { rec.as_ref().next.store(head, Ordering::Relaxed) };
            // The remote-free linearization point: this CAS hands the
            // record (and its final state) back to the owning slab.
            crate::bots_failpoint!("slab_reclaim_cas");
            // transition: slab.reclaim: head -> rec (record re-enters the
            // owner's pool; Release publishes the `next` write and the
            // record's final state to the owner's Acquire swap).
            match self.reclaim.compare_exchange_weak(
                head,
                rec.as_ptr(),
                Ordering::Release,
                Ordering::Relaxed, // relaxed-ok: failure path only retries
            ) {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    /// Takes the whole reclaim stack: the first record is returned, the
    /// rest become the new local free list.
    ///
    /// # Safety
    /// Owner thread only.
    unsafe fn drain_reclaim(&self) -> Option<NonNull<TaskRecord>> {
        // A delay here holds the owner between its dry local list and the
        // reclaim swap while remote frees keep landing.
        crate::bots_failpoint!("slab_drain");
        let head = self.reclaim.swap(std::ptr::null_mut(), Ordering::Acquire);
        let head = NonNull::new(head)?;
        debug_assert!(self.free.get().is_null());
        // relaxed-ok: the Acquire swap above took exclusive ownership of
        // the whole chain; its links can no longer change.
        self.free.set(head.as_ref().next.load(Ordering::Relaxed));
        Some(head)
    }

    /// Allocates a fresh chunk, threads all but one of its slots onto the
    /// free list, and returns the remaining slot.
    ///
    /// # Safety
    /// Owner thread only.
    #[cold]
    unsafe fn grow(&self) -> NonNull<TaskRecord> {
        let mut chunk: Box<[MaybeUninit<TaskRecord>]> = (0..self.chunk_records)
            .map(|_| MaybeUninit::uninit())
            .collect();
        let base = chunk.as_mut_ptr().cast::<TaskRecord>();
        // Thread slots 1.. onto the free list; the `next` field is the only
        // one that must be initialised for a slot sitting in the list.
        for i in 1..self.chunk_records {
            let slot = base.add(i);
            let next = if i + 1 < self.chunk_records {
                base.add(i + 1)
            } else {
                self.free.get()
            };
            // Plain write: the slot is uninitialised, so the atomic's memory
            // is initialised here rather than stored through (an `AtomicPtr`
            // has the layout of a raw pointer).
            std::ptr::addr_of_mut!((*slot).next)
                .cast::<*mut TaskRecord>()
                .write(next);
        }
        if self.chunk_records > 1 {
            self.free.set(base.add(1));
        }
        (*self.chunks.get()).push(chunk);
        NonNull::new_unchecked(base)
    }

    /// Records currently sitting in the local free list (diagnostics).
    ///
    /// # Safety
    /// Owner thread only.
    #[cfg(test)]
    pub(crate) unsafe fn free_len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.free.get();
        while !cur.is_null() {
            n += 1;
            cur = (*cur).next.load(Ordering::Relaxed);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskAttrs;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn alloc_recycles_after_free() {
        let slab = RecordSlab::new(4);
        unsafe {
            let (a, src) = slab.alloc();
            assert_eq!(src, AllocSource::Fresh);
            // The rest of the chunk is on the free list already.
            let (b, src) = slab.alloc();
            assert_eq!(src, AllocSource::Recycled);
            slab.free_local(a);
            let (a2, src) = slab.alloc();
            assert_eq!(src, AllocSource::Recycled);
            assert_eq!(a2.as_ptr(), a.as_ptr(), "LIFO reuse of the last free");
            slab.free_local(a2);
            slab.free_local(b);
        }
    }

    #[test]
    fn grow_threads_whole_chunk() {
        let slab = RecordSlab::new(8);
        unsafe {
            let (first, src) = slab.alloc();
            assert_eq!(src, AllocSource::Fresh);
            assert_eq!(slab.free_len(), 7);
            // Drain the rest of the chunk without touching the heap.
            let rest: Vec<_> = (0..7)
                .map(|_| {
                    let (r, src) = slab.alloc();
                    assert_eq!(src, AllocSource::Recycled);
                    r
                })
                .collect();
            assert_eq!(slab.free_len(), 0);
            let (_fresh, src) = slab.alloc();
            assert_eq!(src, AllocSource::Fresh, "second chunk after exhaustion");
            slab.free_local(first);
            for r in rest {
                slab.free_local(r);
            }
        }
    }

    #[test]
    fn remote_frees_flow_back_to_owner() {
        let slab = Arc::new(RecordSlab::new(2));
        // Owner takes records, initialises them as real (rootless) records,
        // releases them, and hands them to remote threads to free.
        let records: Vec<usize> = unsafe {
            (0..8)
                .map(|_| {
                    let (r, _) = slab.alloc();
                    TaskRecord::init(r, None, None, std::ptr::null(), 0, TaskAttrs::default());
                    assert_eq!(r.as_ref().release_ref(), 1);
                    r.as_ptr() as usize
                })
                .collect()
        };
        let handles: Vec<_> = records
            .chunks(2)
            .map(|pair| {
                let slab = slab.clone();
                let pair: Vec<usize> = pair.to_vec();
                std::thread::spawn(move || {
                    for p in pair {
                        slab.free_remote(NonNull::new(p as *mut TaskRecord).unwrap());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Owner drains the reclaim stack: all 8 come back recycled.
        let got = AtomicUsize::new(0);
        unsafe {
            let mut taken = Vec::new();
            for _ in 0..8 {
                let (r, src) = slab.alloc();
                assert_eq!(src, AllocSource::Recycled);
                got.fetch_add(1, Ordering::Relaxed);
                taken.push(r);
            }
            for r in taken {
                slab.free_local(r);
            }
        }
        assert_eq!(got.load(Ordering::Relaxed), 8);
    }

    /// Interleaved producer/consumer on the reclaim stack: remote threads
    /// push frees *while* the owner keeps allocating and draining. The pool
    /// must stay bounded — the owner's fresh-chunk fallback only fires when
    /// both lists are momentarily empty, never because reclaimed records
    /// were lost.
    #[test]
    fn reclaim_stack_interleaves_with_alloc() {
        const CYCLES: usize = 10_000;
        const CHUNK: usize = 4;
        let slab = Arc::new(RecordSlab::new(CHUNK));
        // Bound in-flight records so the fresh-allocation count is provably
        // small: the owner can only be starved of `IN_FLIGHT` records plus
        // whatever sits unseen in the reclaim stack for one probe.
        const IN_FLIGHT: usize = 8;
        let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(IN_FLIGHT);

        let remote = {
            let slab = slab.clone();
            std::thread::spawn(move || {
                let mut freed = 0usize;
                while let Ok(p) = rx.recv() {
                    slab.free_remote(NonNull::new(p as *mut TaskRecord).unwrap());
                    freed += 1;
                }
                freed
            })
        };

        let mut fresh = 0usize;
        for _ in 0..CYCLES {
            // Safety: this thread plays the owner for the whole test.
            let (rec, src) = unsafe { slab.alloc() };
            if src == AllocSource::Fresh {
                fresh += 1;
            }
            unsafe { TaskRecord::init(rec, None, None, std::ptr::null(), 0, TaskAttrs::default()) };
            assert_eq!(unsafe { rec.as_ref() }.release_ref(), 1);
            tx.send(rec.as_ptr() as usize).unwrap();
        }
        drop(tx);
        assert_eq!(remote.join().unwrap(), CYCLES);

        // Every record the owner was ever starved into creating is bounded
        // by the in-flight window (rounded up to whole chunks), not by the
        // cycle count: reclaimed records really do come back.
        let bound = (IN_FLIGHT + 1) * CHUNK + CHUNK;
        assert!(
            fresh <= bound,
            "fresh grew to {fresh} (bound {bound}) over {CYCLES} cycles"
        );
        // And after the dust settles, everything is back in the pool.
        unsafe {
            let mut reclaimed = 0;
            loop {
                let (_, src) = slab.alloc();
                if src == AllocSource::Fresh {
                    break;
                }
                reclaimed += 1;
            }
            assert!(reclaimed >= fresh * CHUNK.saturating_sub(1) / CHUNK);
        }
    }
}
