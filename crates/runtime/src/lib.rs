//! # bots-runtime — a work-stealing tasking runtime modelling OpenMP 3.0 tasks
//!
//! This crate is the execution substrate of the BOTS reproduction: a
//! from-scratch work-stealing runtime whose surface mirrors the OpenMP 3.0
//! tasking model that the Barcelona OpenMP Tasks Suite was written against —
//! grown into a **concurrent multi-region runtime** with a **server-grade
//! region lifecycle**: one worker team serves any number of parallel
//! regions at once, fed by any number of client threads, with pooled
//! region descriptors (a steady-state submission allocates nothing),
//! per-region cut-off budgets, and completions that can be joined, polled
//! as a `Future`, or delivered through a callback — no blocked thread per
//! in-flight region.
//!
//! ```
//! use bots_runtime::{Runtime, RuntimeConfig, TaskAttrs};
//!
//! let rt = Runtime::new(RuntimeConfig::new(4));
//! let total = rt.parallel(|s| {
//!     // `parallel` is an OpenMP parallel region + single construct: this
//!     // closure is the region's root task.
//!     s.spawn(|_| { /* #pragma omp task */ });
//!     s.spawn_with(TaskAttrs::untied(), |s| { /* untied task */ });
//!     s.taskwait();                       // #pragma omp taskwait
//!     1 + 2
//! });
//! assert_eq!(total, 3);
//! ```
//!
//! ## The async region lifecycle: a server frontend in three shapes
//!
//! [`Runtime::submit`] publishes a region and returns a [`RegionHandle`]
//! without blocking. The handle completes three ways — pick per request,
//! on one shared team:
//!
//! ```
//! use bots_runtime::{RegionBudget, Runtime, RuntimeConfig};
//! use std::future::Future;
//! use std::pin::pin;
//! use std::sync::Arc;
//! use std::task::{Context, Poll, Wake, Waker};
//!
//! // A minimal single-future executor, standing in for tokio & friends:
//! // parks the thread, and the region's completion wakes it — the waker is
//! // fired by the quiescence transition itself, nothing polls or spins.
//! fn block_on<F: Future>(fut: F) -> F::Output {
//!     struct Unpark(std::thread::Thread);
//!     impl Wake for Unpark {
//!         fn wake(self: Arc<Self>) {
//!             self.0.unpark()
//!         }
//!     }
//!     let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
//!     let mut cx = Context::from_waker(&waker);
//!     let mut fut = pin!(fut);
//!     loop {
//!         match fut.as_mut().poll(&mut cx) {
//!             Poll::Ready(v) => return v,
//!             Poll::Pending => std::thread::park(),
//!         }
//!     }
//! }
//!
//! let rt = Runtime::new(RuntimeConfig::new(4));
//!
//! // 1. Executor-polled: the handle IS a Future.
//! let sum = block_on(rt.submit(|s| {
//!     let acc = std::sync::atomic::AtomicU64::new(0);
//!     s.taskgroup(|s| {
//!         for i in 1..=100u64 {
//!             let acc = &acc;
//!             s.spawn(move |_| {
//!                 acc.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
//!             });
//!         }
//!     });
//!     acc.load(std::sync::atomic::Ordering::Relaxed)
//! }));
//! assert_eq!(sum, 5050);
//!
//! // 2. Callback: detach the region, get the result pushed to you the
//! //    moment it quiesces (here into a channel a reply loop would drain).
//! let (reply_tx, reply_rx) = std::sync::mpsc::channel();
//! rt.submit(|_| 40 + 2).on_complete(move |result| {
//!     reply_tx.send(result.expect("region panicked")).unwrap();
//! });
//! assert_eq!(reply_rx.recv().unwrap(), 42);
//!
//! // 3. Blocking join — now a thin shim over the same machinery — with a
//! //    per-region budget: this request may queue at most 64 of its own
//! //    tasks before spawning serially; other requests are unaffected.
//! let h = rt.submit_with_budget(RegionBudget::MaxQueued(64), |s| {
//!     let acc = std::sync::atomic::AtomicU64::new(0);
//!     s.taskgroup(|s| {
//!         for _ in 0..1000 {
//!             let acc = &acc;
//!             s.spawn(move |_| {
//!                 acc.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!             });
//!         }
//!     });
//!     acc.load(std::sync::atomic::Ordering::Relaxed)
//! });
//! assert_eq!(h.join(), 1000);
//! ```
//!
//! ## Cancellation, deadlines and overload shedding
//!
//! The server lifecycle is **cancellation-grade**: regions can be cut
//! short cooperatively (OpenMP 4.0 `cancel` semantics — task scheduling
//! points observe a per-region flag; running bodies are never interrupted),
//! bounded by a deadline, and admission-controlled under overload. A
//! deadline-bounded server that sheds gracefully:
//!
//! ```
//! use bots_runtime::{Runtime, RuntimeConfig, SubmitError};
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // Admission control: at most 2 regions in flight at once.
//! let rt = Runtime::new(RuntimeConfig::new(2).with_max_live_regions(2));
//!
//! // Two slow requests occupy the team...
//! let gate = Arc::new(AtomicBool::new(false));
//! let slow: Vec<_> = (0..2)
//!     .map(|_| {
//!         let gate = Arc::clone(&gate);
//!         rt.submit(move |_| while !gate.load(Ordering::Acquire) {})
//!     })
//!     .collect();
//!
//! // ...so the next one is refused outright, with the load observed:
//! match rt.try_submit(|_| unreachable!("shed submissions never run")) {
//!     Err(SubmitError::Shed { live, limit }) => assert_eq!((live, limit), (2, 2)),
//!     Ok(_) => panic!("watermark should have shed this"),
//! }
//!
//! gate.store(true, Ordering::Release);
//! for h in slow {
//!     h.outcome().expect("slow request completed");
//! }
//!
//! // Deadline-bounded serving: a runaway request is cancelled by the
//! // team's coarse clock and its joiner sees a typed error, not a hang.
//! let h = rt.submit_with_deadline(Duration::from_millis(5), |s| {
//!     fn storm(s: &bots_runtime::Scope<'_>, depth: u32) {
//!         if depth > 0 && !s.is_cancelled() {
//!             for _ in 0..2 {
//!                 s.spawn(move |s| storm(s, depth - 1));
//!             }
//!         }
//!     }
//!     storm(s, 40); // far more work than 5 ms allows
//!     s.taskwait();
//! });
//! let outcome = h.outcome();
//! assert!(
//!     matches!(outcome, Err(bots_runtime::RegionError::Cancelled)) || outcome.is_ok(),
//!     "a deadline either cancels the region or it finished in time"
//! );
//! ```
//!
//! ## Record-and-replay for repetitive task graphs
//!
//! A solver that factorises the same sparsity pattern every timestep pays
//! the dependency tracker (mutex, hash buckets, clause matching) for a
//! graph it already discovered last round.
//! [`submit_replay`](Runtime::submit_replay) /
//! [`parallel_replay`](Runtime::parallel_replay) key a region body by a
//! caller-chosen *shape token*: the first run records the task DAG and
//! freezes it; later runs under the same token re-execute the frozen
//! graph — preresolved successor lists, **no tracker traffic, zero warm
//! allocations**. Every spawn is checked against the recording (clause
//! hash, with object addresses renamed by first occurrence, so fresh
//! buffers replay fine); a divergent body falls back to live registration
//! mid-region and re-records, never computing a wrong answer.
//!
//! ```
//! use bots_runtime::Runtime;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! static A: AtomicU64 = AtomicU64::new(0);
//! static B: AtomicU64 = AtomicU64::new(0);
//!
//! let rt = Runtime::with_threads(2);
//! let step = |s: &bots_runtime::Scope<'_>| {
//!     s.task(|_| { A.store(7, Ordering::Release); })
//!         .after_write(&A)
//!         .spawn();
//!     s.task(|_| { B.store(A.load(Ordering::Acquire) + 1, Ordering::Release); })
//!         .after_read(&A)
//!         .after_write(&B)
//!         .spawn();
//! };
//!
//! rt.parallel_replay(0xCAFE, step); // records the two-task DAG
//! rt.parallel_replay(0xCAFE, step); // replays it, tracker untouched
//! assert_eq!(B.load(Ordering::Acquire), 8);
//! let d = rt.stats();
//! assert_eq!((d.replays_recorded, d.replays_hit), (1, 1));
//! ```
//!
//! ## One submit surface: `Runtime::region`
//!
//! Every named entry point above — `parallel`, `submit`, `try_submit`,
//! `submit_with_budget`, `submit_with_deadline`, `submit_replay`,
//! `parallel_replay` — is a thin wrapper over one builder.
//! [`Runtime::region`] chains `.budget(..)`, `.deadline(..)` and
//! `.replay(..)` freely, then finishes with `.submit()`, `.try_submit()`
//! or `.join()`: a budgeted *and* deadlined *and* replayed region is one
//! chain, not a missing method.
//!
//! ```
//! use bots_runtime::{RegionBudget, Runtime};
//! use std::time::Duration;
//!
//! let rt = Runtime::with_threads(2);
//! let h = rt
//!     .region(|_| 6 * 7)
//!     .budget(RegionBudget::MaxQueued(64))
//!     .deadline(Duration::from_secs(1))
//!     .submit();
//! assert_eq!(h.join(), 42);
//! ```
//!
//! ## Worksharing-task loops
//!
//! [`Scope::for_each`] is the loop surface: chain `.chunk(n)` and
//! `.mode(..)`, then `.run()`. [`LoopMode::Tasks`] — the default, and what
//! [`Scope::parallel_for`] does — spawns one task per chunk: maximal
//! stealing, one pooled record per chunk. [`LoopMode::Worksharing`] models
//! the worksharing-task loops of Maroñas et al.: **one** pooled loop
//! descriptor is published to the team and participants *claim* grain-sized
//! chunks from an atomic cursor — no per-chunk task record, so fine grains
//! stop paying per-task overhead. Claims happen at task scheduling points,
//! so cancellation, deadlines and budgets compose unchanged.
//!
//! ```
//! use bots_runtime::{LoopMode, Runtime};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let rt = Runtime::with_threads(4);
//! let sum = AtomicUsize::new(0);
//! rt.parallel(|s| {
//!     s.for_each(0..10_000, |i, _| {
//!         sum.fetch_add(i, Ordering::Relaxed);
//!     })
//!     .chunk(32)
//!     .mode(LoopMode::Worksharing)
//!     .run();
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 49_995_000);
//! ```
//!
//! ## What is modelled, and how faithfully
//!
//! * **Tasks** are pooled, refcounted 128-byte records (closure stored
//!   inline, recycled through per-worker slabs — a steady-state spawn makes
//!   **zero heap allocations**, and [`RuntimeStats::closure_spilled`] counts
//!   the exceptions) queued on per-worker [Chase-Lev deques](deque); idle
//!   workers steal the oldest task from a random victim.
//! * **Whole kernel bodies are allocation-free**: `taskgroup` leases a
//!   pooled group descriptor instead of an `Arc` per use
//!   ([`RuntimeStats::groups_recycled`] tracks reuse, and the wait counts
//!   in [`RuntimeStats::group_waits`], apart from `taskwaits`), and
//!   [`Scope::parallel_for`] stores a *borrow* of its body in the
//!   generator tasks instead of boxing it. Once the pools are warm, a
//!   region body built from `spawn` / `taskwait` / `taskgroup` /
//!   `parallel_for` touches the allocator **zero** times; the only
//!   remaining spills are closures or results larger than the 64-byte
//!   inline slots, both visible in `closure_spilled`.
//! * **Data-flow tasking** ([`Scope::task`] + [`TaskBuilder`]): OpenMP
//!   4.0-style `depend(in/out)` clauses — `after_read(&x)` /
//!   `after_write(&x)` key a per-region, pooled dependency tracker by
//!   object address (a task's whole clause list registers atomically, so
//!   the declared graph is acyclic even with concurrent spawners); a task
//!   whose predecessors have not all retired is held in a *Deferred*
//!   state and released — lock-free — from the completing worker on the
//!   task-exit path. Kernels express *which*
//!   tasks wait instead of barriering everyone (`sparselu deps` runs with
//!   no `taskwait` at all), warm dependency chains allocate nothing, and
//!   [`RuntimeStats::deps_registered`] /
//!   [`RuntimeStats::deps_deferred`] / [`RuntimeStats::deps_released`]
//!   account for every clause, hold and release.
//! * **Regions** are first-class, concurrent and pooled: each
//!   [`submit`](Runtime::submit)/[`parallel`](Runtime::parallel) call
//!   leases a recycled region descriptor (embedded root record, inline
//!   result slot, completion slot, quiescence refcount, panic slot, budget
//!   and stats attribution — a steady-state submission performs **zero
//!   heap allocations**), its root enters the team through a sharded
//!   lock-free injector, and a panic stays inside the region that raised
//!   it. Completion is event-driven: the quiescence transition fires the
//!   region's `Waker` or `on_complete` callback, so joins need not block.
//! * **Per-region budgets** ([`RegionBudget`]): on top of the global
//!   [`RuntimeCutoff`], each region can carry its own queued-task budget;
//!   a region that trips it spawns serially ([`RegionStats::serialized`]
//!   counts how often) while its siblings keep deferring freely.
//! * **Continuation stealing** ([`cont`](RuntimeStats::cont_suspends)):
//!   every deferred task body runs on a pooled **fiber** (a recycled
//!   heap stack + saved context). A wait that cannot complete —
//!   `taskwait`, taskgroup wait, loop drain — suspends the fiber into a
//!   waiter slot and the worker moves on; whichever worker drives the
//!   condition's zero transition (last child retiring, last group member
//!   leaving) requeues the continuation on its *own* deque, so blocked
//!   waiters migrate, including onto thieves. Warm suspend/resume cycles
//!   allocate nothing ([`RuntimeStats::conts_recycled`]), worker stacks
//!   stay small (waits no longer nest native frames), and at quiescence
//!   `cont_suspends == cont_resumes` — every suspend resumed exactly once.
//! * **Tied vs untied** ([`TaskAttrs`]): a task always runs start-to-finish
//!   on one OS *fiber*; what migrates at a wait is the whole suspended
//!   frame, never a partially-run body. Because a blocked waiter leaves
//!   its worker instead of pinning it, the tied-task scheduling
//!   constraint is vacuous at waits: the worker under a blocked tied
//!   `taskwait` is simply free, and drains or steals whatever is next.
//!   The tied/untied attribute is retained for API compatibility (and
//!   for the paper's version matrices) but no longer restricts stealing.
//! * **Cut-offs**: the `if` clause makes a spawn undeferred but still does
//!   runtime bookkeeping; [`RuntimeCutoff`] implements runtime-side
//!   strategies (max tasks, max local queue, max depth, adaptive) — the
//!   paper's §IV-B taxonomy. A *manual* cut-off is simply not calling
//!   `spawn`, which the runtime never sees.
//! * **Cancellation** ([`RegionHandle::cancel`], [`Scope::cancel_region`],
//!   [`Scope::cancel_group`]): cooperative, checked at task scheduling
//!   points — cancelled regions *drain* (spawns suppressed, queued tasks
//!   dispatched with their bodies skipped but every piece of bookkeeping —
//!   dependency retire, group leave, refcounts, pooled frees — still
//!   performed), so they reach ordinary quiescence with all pools intact.
//!   Joiners observe a typed [`RegionError`]; [`RegionStats::cancelled`] /
//!   [`RegionStats::skipped_tasks`] attribute the damage. Deadlines
//!   ([`Runtime::submit_with_deadline`]) cancel through the same flag off
//!   a coarse worker-stamped clock, and overload shedding
//!   ([`RuntimeConfig::with_max_live_regions`], [`Runtime::try_submit`])
//!   refuses or serialises new regions when too many are in flight.
//! * **Fault injection** (`--features failpoints`): deterministic
//!   [`bots_failpoint!`] sites on the scheduler's trickiest edges
//!   (injector push/pop, cross-thread slab frees, group leave, dependency
//!   retire, steal, task invoke), driven by the `BOTS_FAILPOINTS` env var
//!   or `failpoint::cfg` — compiled to nothing by default.
//! * **Generators**: [`Scope::parallel_for`] reproduces the `omp for`
//!   multiple-generator construct; a plain loop in the region root is the
//!   `single` generator.
//! * **Worksharing-task loops** ([`Scope::for_each`] with
//!   [`LoopMode::Worksharing`]): the hybrid loop construct of Maroñas et
//!   al. — one pooled descriptor per loop, chunks claimed off an atomic
//!   cursor, **zero warm allocations** ([`RuntimeStats::ws_chunks`] counts
//!   the claims, [`RuntimeStats::loops_recycled`] the descriptor reuse).
//! * **Scheduling policy** ([`LocalOrder`]): depth-first (LIFO) or
//!   breadth-first (FIFO) local queues.
//!
//! ## Structure
//!
//! | module | contents |
//! |---|---|
//! | [`deque`] | Chase-Lev work-stealing deque |
//! | `task` | pooled single-block task records, refcounted lifecycle |
//! | `slab` | per-worker record free lists + cross-thread reclaim |
//! | `injector` | sharded lock-free injector feeding region roots to the team |
//! | `region` | pooled region descriptors: root, result, completion, budget, attribution |
//! | `deps` | per-region task-dependency tracker (`depend(in/out)` clauses, pooled) |
//! | `replay` | token-keyed record-and-replay: frozen dependency DAGs, warm re-execution |
//! | `group` | pooled `taskgroup` descriptors (waiter-owned lease, member raw pointers) |
//! | `cont` | pooled cactus-stack continuations: fibers, suspend/wake state machine |
//! | `wsloop` | pooled worksharing-loop descriptors (atomic claim cursor, chunk invoker) |
//! | `event` | sleeper-gated event count (no shared writes to notify) |
//! | [`pool`](Runtime) | worker threads, submit/join, region lifecycle |
//! | [`cancel`](RegionError) | typed region outcomes & shed errors |
//! | [`failpoint`] | compile-time-gated fault injection sites |
//! | [`scope`](Scope) | `spawn` / `taskwait` / `for_each` / `parallel_for` |
//! | [`config`](RuntimeConfig) | policy, cut-off & pool-sizing knobs |
//! | [`stats`](RuntimeStats) | per-worker counters (steals, parks, spills, wake propagation) |
//! | [`local`](WorkerLocal) | `threadprivate`-style per-worker storage |
//!
//! [`RuntimeStats::closure_spilled`]: crate::RuntimeStats::closure_spilled

#![warn(missing_docs)]

pub mod deque;
mod event;
mod rng;

mod cancel;
mod config;
mod cont;
mod deps;
pub mod failpoint;
mod group;
mod injector;
mod local;
#[cfg(feature = "modelcheck")]
pub mod mc;
mod pool;
mod region;
mod replay;
mod scope;
mod slab;
mod stats;
mod task;
mod wsloop;

pub use cancel::{RegionError, SubmitError};
pub use config::{default_threads, LocalOrder, RegionBudget, RuntimeConfig, RuntimeCutoff};
pub use local::{CacheAligned, WorkerCounter, WorkerLocal};
pub use pool::{RegionBuilder, RegionHandle, Runtime};
pub use region::RegionStats;
pub use replay::ReplayPhase;
pub use scope::{ForBuilder, LoopMode, Scope, TaskBuilder, MAX_TASK_DEPS};
pub use stats::RuntimeStats;
pub use task::TaskAttrs;
