//! # bots-runtime — a work-stealing tasking runtime modelling OpenMP 3.0 tasks
//!
//! This crate is the execution substrate of the BOTS reproduction: a
//! from-scratch work-stealing runtime whose surface mirrors the OpenMP 3.0
//! tasking model that the Barcelona OpenMP Tasks Suite was written against —
//! grown into a **concurrent multi-region runtime**: one worker team serves
//! any number of parallel regions at once, fed by any number of client
//! threads.
//!
//! ```
//! use bots_runtime::{Runtime, RuntimeConfig, TaskAttrs};
//!
//! let rt = Runtime::new(RuntimeConfig::new(4));
//! let total = rt.parallel(|s| {
//!     // `parallel` is an OpenMP parallel region + single construct: this
//!     // closure is the region's root task.
//!     s.spawn(|_| { /* #pragma omp task */ });
//!     s.spawn_with(TaskAttrs::untied(), |s| { /* untied task */ });
//!     s.taskwait();                       // #pragma omp taskwait
//!     1 + 2
//! });
//! assert_eq!(total, 3);
//!
//! // The non-blocking form: submit regions from any thread, join later.
//! let a = rt.submit(|_| 40);
//! let b = rt.submit(|_| 2);
//! assert_eq!(a.join() + b.join(), 42);
//! ```
//!
//! ## What is modelled, and how faithfully
//!
//! * **Tasks** are pooled, refcounted 128-byte records (closure stored
//!   inline, recycled through per-worker slabs — a steady-state spawn makes
//!   **zero heap allocations**, and [`RuntimeStats::closure_spilled`] counts
//!   the exceptions) queued on per-worker [Chase-Lev deques](deque); idle
//!   workers steal the oldest task from a random victim.
//! * **Regions** are first-class and concurrent: each
//!   [`submit`](Runtime::submit)/[`parallel`](Runtime::parallel) call gets
//!   its own region descriptor (root task, quiescence refcount, panic slot,
//!   stats attribution), its root enters the team through a sharded
//!   lock-free injector, and a panic stays inside the region that raised it.
//! * **Tied vs untied** ([`TaskAttrs`]): a task always runs start-to-finish
//!   on one OS thread (icc 11.0, the paper's runtime, did not implement
//!   thread switching either). The difference is the *task scheduling
//!   constraint*: blocked at a [`taskwait`](Scope::taskwait) inside a tied
//!   task, a worker only picks up descendants of that task from its own
//!   deque; inside an untied task it drains its deque freely and steals.
//! * **Cut-offs**: the `if` clause makes a spawn undeferred but still does
//!   runtime bookkeeping; [`RuntimeCutoff`] implements runtime-side
//!   strategies (max tasks, max local queue, max depth, adaptive) — the
//!   paper's §IV-B taxonomy. A *manual* cut-off is simply not calling
//!   `spawn`, which the runtime never sees.
//! * **Generators**: [`Scope::parallel_for`] reproduces the `omp for`
//!   multiple-generator construct; a plain loop in the region root is the
//!   `single` generator.
//! * **Scheduling policy** ([`LocalOrder`]): depth-first (LIFO) or
//!   breadth-first (FIFO) local queues.
//!
//! ## Structure
//!
//! | module | contents |
//! |---|---|
//! | [`deque`] | Chase-Lev work-stealing deque |
//! | `task` | pooled single-block task records, refcounted lifecycle |
//! | `slab` | per-worker record free lists + cross-thread reclaim |
//! | `injector` | sharded lock-free injector feeding region roots to the team |
//! | `region` | per-region descriptors: root, panic slot, attribution |
//! | `event` | sleeper-gated event count (no shared writes to notify) |
//! | [`pool`](Runtime) | worker threads, submit/join, region lifecycle |
//! | [`scope`](Scope) | `spawn` / `taskwait` / `parallel_for` |
//! | [`config`](RuntimeConfig) | policy, cut-off & pool-sizing knobs |
//! | [`stats`](RuntimeStats) | per-worker counters (steals, parks, spills, wake propagation) |
//! | [`local`](WorkerLocal) | `threadprivate`-style per-worker storage |
//!
//! [`RuntimeStats::closure_spilled`]: crate::RuntimeStats::closure_spilled

#![warn(missing_docs)]

pub mod deque;
mod event;
mod rng;

mod config;
mod injector;
mod local;
mod pool;
mod region;
mod scope;
mod slab;
mod stats;
mod task;

pub use config::{default_threads, LocalOrder, RuntimeConfig, RuntimeCutoff};
pub use local::{CacheAligned, WorkerCounter, WorkerLocal};
pub use pool::{RegionHandle, Runtime};
pub use region::RegionStats;
pub use scope::Scope;
pub use stats::RuntimeStats;
pub use task::TaskAttrs;
