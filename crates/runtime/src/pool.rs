//! The worker pool and execution engine.
//!
//! A [`Runtime`] owns a team of worker threads, one Chase-Lev deque per
//! worker, one record slab per worker, and a global injector queue.
//! [`Runtime::parallel`] models an OpenMP `parallel` region whose body runs
//! under a `single` construct: the closure executes exactly once, as the
//! region's *root task*, on whichever worker grabs it first; every other
//! worker immediately enters the work-stealing loop. Tasks spawned inside
//! the region are distributed by work stealing until the region quiesces,
//! at which point `parallel` returns.
//!
//! ## The zero-allocation, low-contention spawn path
//!
//! A deferred spawn on the steady state touches **no global shared state**:
//!
//! 1. a [`TaskRecord`] is popped from the spawning worker's free-list slab
//!    ([`crate::slab`]) — no `malloc`;
//! 2. the closure is written inline into the record (or spilled to one box
//!    when it exceeds [`crate::task::INLINE_BYTES`]);
//! 3. parent/child counters are updated on the *record*, whose cache lines
//!    are private to the spawning task's lineage;
//! 4. the record is pushed on the worker's own deque;
//! 5. [`EventCount::notify`] checks for sleepers with a fence + load and
//!    issues no wake (and no shared write) when everyone is busy.
//!
//! ## Region quiescence without a global live counter
//!
//! The old design kept `live`/`queued` counts in two `Shared` atomics that
//! every spawn and completion contended on. Liveness is now derived from
//! the record refcounts themselves: each child record holds one reference
//! on its parent for as long as the *child record* exists, so the root
//! record's count can only fall to the master's lone handle once every
//! descendant record has been destroyed — i.e. exactly at quiescence. The
//! region master polls the root's count (wake-ups arrive through the event
//! count like any other sleeper). The `queued` count survives only for the
//! `MaxTasks`/`Adaptive` cut-offs, sharded per worker and summed on demand
//! — and is not maintained at all under other cut-off policies.
//!
//! ## Scheduling points
//!
//! Like an OpenMP runtime, workers switch tasks at two points only: task
//! completion (the worker loop) and `taskwait` (see [`crate::scope`]). A
//! task runs on one OS thread from start to finish; what the tied/untied
//! distinction controls here is which *other* tasks a worker may pick up
//! while it waits at a `taskwait` (the task scheduling constraint), not
//! thread migration — matching the icc 11.0 behaviour the paper evaluates
//! (no thread switching).

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::{LocalOrder, RuntimeConfig, RuntimeCutoff};
use crate::deque::{deque, Steal, Stealer, TaskDeque};
use crate::event::EventCount;
use crate::local::CacheAligned;
use crate::rng::XorShift64;
use crate::scope::Scope;
use crate::slab::{AllocSource, RecordSlab};
use crate::stats::{RuntimeStats, WorkerCounters};
use crate::task::{Group, TaskAttrs, TaskRecord, HOME_BOXED};

/// Worker-thread stack size. Task switching at `taskwait` nests task frames
/// on the worker stack (there is no continuation stealing), so recursive
/// kernels run with a generous stack.
const WORKER_STACK: usize = 64 * 1024 * 1024;

/// How long a parked worker sleeps before re-probing, as a lost-wakeup
/// safety net. Wake-ups normally arrive via the event count.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

/// `Steal::Retry` attempts against one victim before moving on. A contended
/// victim is not worth spinning on: another victim (or the injector) likely
/// has work, and the parked-worker safety net catches the rest.
const MAX_STEAL_RETRIES: usize = 4;

/// State shared by the team, the region master and all scopes.
pub(crate) struct Shared {
    pub(crate) config: RuntimeConfig,
    /// Thief handles, indexed by worker.
    pub(crate) stealers: Vec<Stealer<TaskRecord>>,
    /// Global queue; region root tasks enter here.
    pub(crate) injector: Mutex<VecDeque<NonNull<TaskRecord>>>,
    /// Mirror of `injector.len()`, so idle probes never take the lock.
    pub(crate) injector_len: AtomicUsize,
    /// Work-availability channel: notified on every deferred-task push (and
    /// shutdown). Idle workers park here.
    pub(crate) work: EventCount,
    /// Progress channel: notified only on *zero transitions* — a task's last
    /// child completing, a taskgroup draining, a root record's refcount
    /// falling to the master's handle — plus shutdown. Taskwaiters and the
    /// region master park here, so a completion storm costs no wakes until
    /// the final one that matters.
    pub(crate) progress: EventCount,
    /// Deferred-but-unstarted task count, sharded per worker (spawners add
    /// on their own shard, executors subtract on theirs, so any shard may go
    /// negative; the sum is the true count). Only maintained when
    /// `track_queued` — i.e. when the cut-off policy needs it.
    pub(crate) queued_shards: Vec<CacheAligned<AtomicIsize>>,
    /// Does the configured cut-off need the global queued count?
    pub(crate) track_queued: bool,
    /// Hysteresis state for the adaptive cut-off.
    pub(crate) adaptive_serializing: AtomicBool,
    /// First panic payload observed in the region.
    pub(crate) panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Team shutdown flag (checked by parked workers).
    pub(crate) shutdown: AtomicBool,
    /// Per-worker statistics.
    pub(crate) counters: Vec<WorkerCounters>,
    /// Per-worker record pools; indexed by `TaskRecord::home` on free.
    pub(crate) slabs: Vec<RecordSlab>,
}

// Safety: `Shared` is shared across worker threads by design. The raw task
// pointers in the injector are exclusively-owned queue handles of live
// `TaskRecord`s whose closures are `Send`; the deque stealers hand the same
// kind of pointer over with the Chase-Lev protocol guaranteeing each is
// received exactly once. The slabs' owner-only halves are only touched by
// their owning worker threads (see `crate::slab`).
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    /// Sum of the queued-count shards, clamped at zero (individual shards
    /// may be transiently negative; the total is approximate by design —
    /// it drives heuristics, not correctness).
    pub(crate) fn queued_estimate(&self) -> usize {
        self.queued_shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum::<isize>()
            .max(0) as usize
    }

    /// Should a spawn at `depth` be serialised by the runtime cut-off?
    pub(crate) fn cutoff_trips(&self, local_len: usize, depth: u32) -> bool {
        let workers = self.config.num_threads;
        match self.config.cutoff {
            RuntimeCutoff::None => false,
            RuntimeCutoff::MaxTasks { per_worker } => {
                self.queued_estimate() >= per_worker * workers
            }
            RuntimeCutoff::MaxLocalQueue { max_len } => local_len >= max_len,
            RuntimeCutoff::MaxDepth { max_depth } => depth >= max_depth,
            RuntimeCutoff::Adaptive { low, high } => {
                let queued = self.queued_estimate();
                if self.adaptive_serializing.load(Ordering::Relaxed) {
                    if queued < low * workers {
                        self.adaptive_serializing.store(false, Ordering::Relaxed);
                        false
                    } else {
                        true
                    }
                } else if queued > high * workers {
                    self.adaptive_serializing.store(true, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Adjusts the caller's queued-count shard (no-op unless the cut-off
    /// policy consumes the count). `shard` is a worker index, or 0 for the
    /// region master's root push — any shard works, the sum is what counts.
    #[inline]
    pub(crate) fn queued_delta(&self, shard: usize, delta: isize) {
        if self.track_queued {
            self.queued_shards[shard]
                .0
                .fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Pushes a region root task into the injector.
    pub(crate) fn push_injector(&self, rec: NonNull<TaskRecord>) {
        let mut q = self.injector.lock().unwrap();
        q.push_back(rec);
        self.injector_len.store(q.len(), Ordering::Release);
    }

    /// Drops one reference on `rec`, destroying it (and cascading up the
    /// parent chain) when it was the last. `worker_index` is the calling
    /// worker, or `None` when called from the region master.
    ///
    /// Destruction routes the record home: to the owner's local free list
    /// when the caller *is* the owner, onto the owner's cross-thread reclaim
    /// stack otherwise, or back to the heap for boxed (root) records.
    pub(crate) fn release_record(&self, rec: NonNull<TaskRecord>, worker_index: Option<usize>) {
        let mut cur = rec;
        loop {
            let r = unsafe { cur.as_ref() };
            // Snapshot before releasing: `parent` is immutable after init,
            // but once our reference is gone the remaining holder may
            // destroy the record concurrently (for a root, the spin-polling
            // region master frees it the instant it observes refs == 1), so
            // `r` must not be touched after a release that was not the last.
            let parent = r.parent();
            match r.release_ref() {
                1 => {}
                // Root records: the drop to the master's lone handle is the
                // region-quiescence signal.
                2 if parent.is_none() => {
                    self.progress.notify();
                    return;
                }
                _ => return,
            }
            // Sole owner now: drop a group handle the record may still hold
            // (records that carried a closure gave it up at completion;
            // inline bookkeeping records reach here with theirs attached).
            drop(r.take_group());
            let home = r.home;
            if home == HOME_BOXED {
                unsafe {
                    drop(Box::from_raw(
                        cur.as_ptr().cast::<MaybeUninit<TaskRecord>>(),
                    ));
                }
            } else {
                let slab = &self.slabs[home as usize];
                match worker_index {
                    Some(i) if i == home as usize => unsafe { slab.free_local(cur) },
                    _ => {
                        slab.free_remote(cur);
                        if let Some(i) = worker_index {
                            WorkerCounters::bump(&self.counters[i].slab_cross_freed);
                        }
                    }
                }
            }
            match parent {
                Some(p) => cur = p,
                None => return,
            }
        }
    }
}

/// Per-worker context. Owned by the worker thread; tasks reach it through
/// the [`Scope`] they are handed.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) deque: TaskDeque<TaskRecord>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) rng: std::cell::RefCell<XorShift64>,
}

impl WorkerCtx {
    #[inline]
    pub(crate) fn counters(&self) -> &WorkerCounters {
        &self.shared.counters[self.index]
    }

    /// Allocates and initialises a record from this worker's slab.
    #[inline]
    pub(crate) fn new_record(
        &self,
        parent: Option<NonNull<TaskRecord>>,
        group: Option<Arc<Group>>,
        attrs: TaskAttrs,
    ) -> NonNull<TaskRecord> {
        // Safety: this is the owning worker thread.
        let (rec, source) = unsafe { self.shared.slabs[self.index].alloc() };
        let counters = self.counters();
        match source {
            AllocSource::Recycled => WorkerCounters::bump(&counters.slab_recycled),
            AllocSource::Fresh => WorkerCounters::bump(&counters.slab_fresh),
        }
        // Safety: the slot came from our slab and is free; parent is live.
        unsafe { TaskRecord::init(rec, parent, group, self.index as u32, attrs) };
        rec
    }

    /// Pops a local task according to the configured discipline.
    pub(crate) fn pop_local(&self) -> Option<NonNull<TaskRecord>> {
        match self.shared.config.local_order {
            LocalOrder::Lifo => self.deque.pop(),
            LocalOrder::Fifo => self.deque.pop_fifo(),
        }
    }

    /// Pops from the LIFO end regardless of policy (used by tied taskwaits,
    /// where the bottom of the deque is where descendants live).
    pub(crate) fn pop_local_lifo(&self) -> Option<NonNull<TaskRecord>> {
        self.deque.pop()
    }

    /// Takes a region root from the injector. The unlocked length probe
    /// keeps the common case (empty injector) lock-free.
    pub(crate) fn pop_injector(&self) -> Option<NonNull<TaskRecord>> {
        let shared = &*self.shared;
        if shared.injector_len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = shared.injector.lock().unwrap();
        let rec = q.pop_front();
        shared.injector_len.store(q.len(), Ordering::Release);
        rec
    }

    /// One round of stealing: probes every other worker once, starting at a
    /// random victim. Retries against a contended victim are bounded by
    /// [`MAX_STEAL_RETRIES`]; past that the worker gives up on the victim
    /// (counting a miss) and moves to the next.
    pub(crate) fn try_steal(&self) -> Option<NonNull<TaskRecord>> {
        let n = self.shared.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.rng.borrow_mut().below(n);
        let counters = self.counters();
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            let mut retries = 0;
            loop {
                match self.shared.stealers[victim].steal() {
                    Steal::Success(t) => {
                        WorkerCounters::bump(&counters.stolen);
                        return Some(t);
                    }
                    Steal::Retry => {
                        retries += 1;
                        if retries >= MAX_STEAL_RETRIES {
                            WorkerCounters::bump(&counters.steal_misses);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    Steal::Empty => {
                        WorkerCounters::bump(&counters.steal_misses);
                        break;
                    }
                }
            }
        }
        None
    }

    /// Is any work visible anywhere? Used to re-check before parking.
    /// Entirely lock-free: own deque length, the injector's atomic length
    /// mirror, and the other deques' stealer-side lengths.
    pub(crate) fn work_visible(&self) -> bool {
        if !self.deque.is_empty() {
            return true;
        }
        if self.shared.injector_len.load(Ordering::Acquire) > 0 {
            return true;
        }
        self.shared
            .stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != self.index && !s.is_empty())
    }

    /// Executes a deferred task to completion and performs end-of-task
    /// bookkeeping (parent child-count, group membership, record release,
    /// wake-ups).
    pub(crate) fn execute(&self, rec: NonNull<TaskRecord>) {
        let shared = &*self.shared;
        shared.queued_delta(self.index, -1);
        let counters = self.counters();
        WorkerCounters::bump(&counters.executed);

        // Safety: we hold the queue handle; the record is live until we
        // release it below.
        let r = unsafe { rec.as_ref() };
        let invoke = r.take_invoke().expect("task executed twice");
        let ec = ExecCtx { worker: self, rec };
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { invoke(rec, &ec) }));
        if let Err(payload) = outcome {
            let mut slot = shared.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }

        // Completion: a task does *not* wait for its children (that is what
        // taskwait is for); it only reports its own termination. Waiters are
        // woken only on the transitions they block on: the group draining,
        // the parent's child count reaching zero, a root refcount falling to
        // the master's handle (inside `release_record`). Each notify follows
        // its counter update, so a woken waiter observes the progress.
        if let Some(group) = r.take_group() {
            if group.leave() {
                shared.progress.notify();
            }
        }
        if let Some(parent) = r.parent() {
            if unsafe { parent.as_ref() }.child_done() {
                shared.progress.notify();
            }
        }
        // Consume the queue handle; may destroy the record and cascade.
        shared.release_record(rec, Some(self.index));
    }
}

/// Execution context handed to a task's stored closure: enough to rebuild a
/// [`Scope`] on the executing worker.
pub(crate) struct ExecCtx<'w> {
    pub(crate) worker: &'w WorkerCtx,
    pub(crate) rec: NonNull<TaskRecord>,
}

/// A raw pointer that asserts `Send`, for smuggling a stack slot into the
/// lifetime-erased root shim. Sound because `Runtime::parallel` blocks until
/// the shim has run.
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper, not the raw pointer field.
    fn get(&self) -> *const T {
        self.0
    }
}

/// A team of worker threads implementing the OpenMP 3.0 task execution
/// model. See the [crate docs](crate) for an overview and
/// [`Runtime::parallel`] for the entry point.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serialises concurrent `parallel()` calls: one region at a time.
    region_lock: Mutex<()>,
}

impl Runtime {
    /// Builds a team from an explicit configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        let n = config.num_threads;
        let track_queued = matches!(
            config.cutoff,
            RuntimeCutoff::MaxTasks { .. } | RuntimeCutoff::Adaptive { .. }
        );
        let mut owners = Vec::with_capacity(n);
        let mut stealers = Vec::with_capacity(n);
        for _ in 0..n {
            let (owner, stealer) = deque::<TaskRecord>();
            owners.push(owner);
            stealers.push(stealer);
        }
        let shared = Arc::new(Shared {
            stealers,
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            work: EventCount::new(),
            progress: EventCount::new(),
            queued_shards: (0..n).map(|_| CacheAligned(AtomicIsize::new(0))).collect(),
            track_queued,
            adaptive_serializing: AtomicBool::new(false),
            panic: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            counters: (0..n).map(|_| WorkerCounters::default()).collect(),
            slabs: (0..n)
                .map(|_| RecordSlab::new(config.record_chunk))
                .collect(),
            config,
        });

        let mut handles = Vec::with_capacity(n);
        for (index, owner) in owners.into_iter().enumerate() {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("bots-worker-{index}"))
                .stack_size(WORKER_STACK)
                .spawn(move || {
                    let ctx = WorkerCtx {
                        index,
                        deque: owner,
                        shared,
                        rng: std::cell::RefCell::new(XorShift64::new(
                            0x9E37_79B9 ^ ((index as u64 + 1) << 17),
                        )),
                    };
                    worker_loop(&ctx);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }

        Runtime {
            shared,
            handles,
            region_lock: Mutex::new(()),
        }
    }

    /// Team with `n` threads and default policy.
    pub fn with_threads(n: usize) -> Self {
        Runtime::new(RuntimeConfig::new(n))
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.shared.config.num_threads
    }

    /// The configuration this team was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Aggregated statistics since the team started (monotonic; diff
    /// snapshots with [`RuntimeStats::since`] to scope them to a region).
    pub fn stats(&self) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        for w in &self.shared.counters {
            s.accumulate(w);
        }
        s
    }

    /// Runs `f` as the root task of a parallel region (OpenMP
    /// `parallel` + `single`) and returns its result once the region has
    /// quiesced — i.e. after every task spawned inside, transitively, has
    /// completed. Panics from any task are re-raised here.
    ///
    /// Must not be called from inside a task of the same runtime.
    pub fn parallel<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        // A panic propagating out of a previous region poisons the std
        // mutexes it unwound through; every guarded structure is left
        // consistent, so poisoning is explicitly forgiven (parking_lot,
        // which this runtime originally used, had no poisoning either).
        let _region = self.region_lock.lock().unwrap_or_else(|e| e.into_inner());
        let shared = &self.shared;

        let result: Mutex<Option<R>> = Mutex::new(None);
        // Root record: individually boxed (the master has no slab), held by
        // two handles — the injector queue's and the master's own.
        let root = TaskRecord::new_boxed(TaskAttrs::tied());
        unsafe { root.as_ref() }.add_ref();

        {
            // Root shim: run the user closure, stash the result. The `'env`
            // lifetime is erased by the record's raw closure storage; sound
            // because this function blocks until the region quiesces, so
            // the stack slot behind `result_ptr` (and everything `f`
            // borrows) outlives every task.
            let result_ptr = SendPtr(&result as *const Mutex<Option<R>>);
            unsafe {
                TaskRecord::store_closure(root, move |ec: &ExecCtx<'_>| {
                    let scope = Scope::from_exec(ec);
                    let r = f(&scope);
                    *(*result_ptr.get()).lock().unwrap() = Some(r);
                });
            }
            shared.queued_delta(0, 1);
            shared.push_injector(root);
            shared.work.notify_one();

            // Wait for quiescence: the root's refcount falls back to the
            // master's lone handle exactly when every descendant record has
            // been destroyed (see the module docs).
            loop {
                if unsafe { root.as_ref() }.refs() == 1 {
                    break;
                }
                let token = shared.progress.prepare();
                if unsafe { root.as_ref() }.refs() == 1 {
                    shared.progress.cancel();
                    break;
                }
                shared.progress.wait_timeout(token, PARK_TIMEOUT);
            }
        }
        // Sole owner: destroy the root record.
        shared.release_record(root, None);

        if let Some(payload) = shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            resume_unwind(payload);
        }
        result
            .into_inner()
            .unwrap()
            .expect("root task did not record a result")
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify();
        self.shared.progress.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for Runtime {
    /// Team sized by `BOTS_NUM_THREADS` or the machine's parallelism.
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

/// The worker main loop: local pop → injector → steal rounds → park.
fn worker_loop(ctx: &WorkerCtx) {
    let shared = &*ctx.shared;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = ctx.pop_local().or_else(|| ctx.pop_injector()) {
            ctx.execute(task);
            continue;
        }
        let mut found = false;
        for _ in 0..shared.config.steal_rounds {
            if let Some(task) = ctx.try_steal() {
                ctx.execute(task);
                found = true;
                break;
            }
            for _ in 0..shared.config.spin_before_park {
                std::hint::spin_loop();
            }
        }
        if found {
            continue;
        }
        // Nothing anywhere: register as a sleeper, re-check, park until an
        // event or the safety timeout.
        let token = shared.work.prepare();
        if shared.shutdown.load(Ordering::Acquire) || ctx.work_visible() {
            shared.work.cancel();
            continue;
        }
        WorkerCounters::bump(&ctx.counters().parks);
        shared.work.wait_timeout(token, PARK_TIMEOUT);
    }
}
