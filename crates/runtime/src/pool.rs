//! The worker pool and execution engine.
//!
//! A [`Runtime`] owns a team of worker threads, one Chase-Lev deque per
//! worker, and a global injector queue. [`Runtime::parallel`] models an
//! OpenMP `parallel` region whose body runs under a `single` construct: the
//! closure executes exactly once, as the region's *root task*, on whichever
//! worker grabs it first; every other worker immediately enters the
//! work-stealing loop. Tasks spawned inside the region are distributed by
//! work stealing until the region quiesces (`live == 0`), at which point
//! `parallel` returns.
//!
//! ## Scheduling points
//!
//! Like an OpenMP runtime, workers switch tasks at two points only: task
//! completion (the worker loop) and `taskwait` (see [`crate::scope`]). A task
//! runs on one OS thread from start to finish; what the tied/untied
//! distinction controls here is which *other* tasks a worker may pick up
//! while it waits at a `taskwait` (the task scheduling constraint), not
//! thread migration — matching the icc 11.0 behaviour the paper evaluates
//! (no thread switching).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::{LocalOrder, RuntimeConfig, RuntimeCutoff};
use crate::deque::{deque, Steal, Stealer, TaskDeque};
use crate::event::EventCount;
use crate::rng::XorShift64;
use crate::scope::Scope;
use crate::stats::{RuntimeStats, WorkerCounters};
use crate::task::{Task, TaskNode};

/// Worker-thread stack size. Task switching at `taskwait` nests task frames
/// on the worker stack (there is no continuation stealing), so recursive
/// kernels run with a generous stack.
const WORKER_STACK: usize = 64 * 1024 * 1024;

/// How long a parked worker sleeps before re-probing, as a lost-wakeup
/// safety net. Wake-ups normally arrive via the event count.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

/// State shared by the team, the region master and all scopes.
pub(crate) struct Shared {
    pub(crate) config: RuntimeConfig,
    /// Thief handles, indexed by worker.
    pub(crate) stealers: Vec<Stealer<Task>>,
    /// Global queue; region root tasks enter here.
    pub(crate) injector: Mutex<VecDeque<NonNull<Task>>>,
    /// Single event count for every state change: task pushed, task
    /// completed, shutdown. Workers, taskwaiters and the region master all
    /// park here.
    pub(crate) event: EventCount,
    /// Tasks alive in the current region (root + deferred, queued or
    /// running). The region ends when this reaches zero.
    pub(crate) live: AtomicUsize,
    /// Deferred tasks currently queued and not yet started; drives the
    /// `MaxTasks` / `Adaptive` cut-offs.
    pub(crate) queued: AtomicUsize,
    /// Hysteresis state for the adaptive cut-off.
    pub(crate) adaptive_serializing: AtomicBool,
    /// First panic payload observed in the region.
    pub(crate) panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Team shutdown flag (checked by parked workers).
    pub(crate) shutdown: AtomicBool,
    /// Per-worker statistics.
    pub(crate) counters: Vec<WorkerCounters>,
}

// Safety: `Shared` is shared across worker threads by design. The raw task
// pointers in the injector are exclusively owned heap tasks (`Box<Task>`
// converted by `Task::into_ptr`) whose closures are `Send`; the deque
// stealers hand the same kind of pointer over with the Chase-Lev protocol
// guaranteeing each is received exactly once.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    /// Should a spawn at `depth` be serialised by the runtime cut-off?
    pub(crate) fn cutoff_trips(&self, local_len: usize, depth: u32) -> bool {
        let workers = self.config.num_threads;
        match self.config.cutoff {
            RuntimeCutoff::None => false,
            RuntimeCutoff::MaxTasks { per_worker } => {
                self.queued.load(Ordering::Relaxed) >= per_worker * workers
            }
            RuntimeCutoff::MaxLocalQueue { max_len } => local_len >= max_len,
            RuntimeCutoff::MaxDepth { max_depth } => depth >= max_depth,
            RuntimeCutoff::Adaptive { low, high } => {
                let queued = self.queued.load(Ordering::Relaxed);
                if self.adaptive_serializing.load(Ordering::Relaxed) {
                    if queued < low * workers {
                        self.adaptive_serializing.store(false, Ordering::Relaxed);
                        false
                    } else {
                        true
                    }
                } else if queued > high * workers {
                    self.adaptive_serializing.store(true, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Per-worker context. Owned by the worker thread; tasks reach it through
/// the [`Scope`] they are handed.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) deque: TaskDeque<Task>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) rng: std::cell::RefCell<XorShift64>,
}

impl WorkerCtx {
    #[inline]
    pub(crate) fn counters(&self) -> &WorkerCounters {
        &self.shared.counters[self.index]
    }

    /// Pops a local task according to the configured discipline.
    pub(crate) fn pop_local(&self) -> Option<NonNull<Task>> {
        match self.shared.config.local_order {
            LocalOrder::Lifo => self.deque.pop(),
            LocalOrder::Fifo => self.deque.pop_fifo(),
        }
    }

    /// Pops from the LIFO end regardless of policy (used by tied taskwaits,
    /// where the bottom of the deque is where descendants live).
    pub(crate) fn pop_local_lifo(&self) -> Option<NonNull<Task>> {
        self.deque.pop()
    }

    /// Takes a region root from the injector.
    pub(crate) fn pop_injector(&self) -> Option<NonNull<Task>> {
        self.shared.injector.lock().pop_front()
    }

    /// One round of stealing: probes every other worker once, starting at a
    /// random victim.
    pub(crate) fn try_steal(&self) -> Option<NonNull<Task>> {
        let n = self.shared.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.rng.borrow_mut().below(n);
        let counters = self.counters();
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            loop {
                match self.shared.stealers[victim].steal() {
                    Steal::Success(t) => {
                        WorkerCounters::bump(&counters.stolen);
                        return Some(t);
                    }
                    Steal::Retry => {
                        WorkerCounters::bump(&counters.steal_misses);
                        std::hint::spin_loop();
                    }
                    Steal::Empty => {
                        WorkerCounters::bump(&counters.steal_misses);
                        break;
                    }
                }
            }
        }
        None
    }

    /// Is any work visible anywhere? Used to re-check before parking.
    pub(crate) fn work_visible(&self) -> bool {
        if !self.deque.is_empty() {
            return true;
        }
        if !self.shared.injector.lock().is_empty() {
            return true;
        }
        self.shared
            .stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != self.index && !s.is_empty())
    }

    /// Executes a deferred task to completion and performs end-of-task
    /// bookkeeping (parent child-count, region live count, wake-ups).
    pub(crate) fn execute(&self, ptr: NonNull<Task>) {
        let shared = &*self.shared;
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        let mut task = unsafe { Task::from_ptr(ptr) };
        let run = task.run.take().expect("task executed twice");
        let counters = self.counters();
        WorkerCounters::bump(&counters.executed);

        let ec = ExecCtx {
            worker: self,
            node: task.node.clone(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run(&ec)));
        if let Err(payload) = outcome {
            let mut slot = shared.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }

        // Completion: a task does *not* wait for its children (that is what
        // taskwait is for); it only reports its own termination.
        if let Some(parent) = &task.node.parent {
            parent.child_done();
        }
        if let Some(group) = &task.node.group {
            group.leave();
        }
        shared.live.fetch_sub(1, Ordering::AcqRel);
        shared.event.notify();
    }
}

/// Execution context handed to a task's shim closure: enough to rebuild a
/// [`Scope`] on the executing worker.
pub(crate) struct ExecCtx<'w> {
    pub(crate) worker: &'w WorkerCtx,
    pub(crate) node: Arc<TaskNode>,
}

/// A raw pointer that asserts `Send`, for smuggling a stack slot into the
/// lifetime-erased root shim. Sound because `Runtime::parallel` blocks until
/// the shim has run.
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper, not the raw pointer field.
    fn get(&self) -> *const T {
        self.0
    }
}

/// A team of worker threads implementing the OpenMP 3.0 task execution
/// model. See the [crate docs](crate) for an overview and
/// [`Runtime::parallel`] for the entry point.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serialises concurrent `parallel()` calls: one region at a time.
    region_lock: Mutex<()>,
}

impl Runtime {
    /// Builds a team from an explicit configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        let n = config.num_threads;
        let mut owners = Vec::with_capacity(n);
        let mut stealers = Vec::with_capacity(n);
        for _ in 0..n {
            let (owner, stealer) = deque::<Task>();
            owners.push(owner);
            stealers.push(stealer);
        }
        let shared = Arc::new(Shared {
            config,
            stealers,
            injector: Mutex::new(VecDeque::new()),
            event: EventCount::new(),
            live: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            adaptive_serializing: AtomicBool::new(false),
            panic: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            counters: (0..n).map(|_| WorkerCounters::default()).collect(),
        });

        let mut handles = Vec::with_capacity(n);
        for (index, owner) in owners.into_iter().enumerate() {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("bots-worker-{index}"))
                .stack_size(WORKER_STACK)
                .spawn(move || {
                    let ctx = WorkerCtx {
                        index,
                        deque: owner,
                        shared,
                        rng: std::cell::RefCell::new(XorShift64::new(
                            0x9E37_79B9 ^ ((index as u64 + 1) << 17),
                        )),
                    };
                    worker_loop(&ctx);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }

        Runtime {
            shared,
            handles,
            region_lock: Mutex::new(()),
        }
    }

    /// Team with `n` threads and default policy.
    pub fn with_threads(n: usize) -> Self {
        Runtime::new(RuntimeConfig::new(n))
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.shared.config.num_threads
    }

    /// The configuration this team was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Aggregated statistics since the team started (monotonic; diff
    /// snapshots with [`RuntimeStats::since`] to scope them to a region).
    pub fn stats(&self) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        for w in &self.shared.counters {
            s.accumulate(w);
        }
        s
    }

    /// Runs `f` as the root task of a parallel region (OpenMP
    /// `parallel` + `single`) and returns its result once the region has
    /// quiesced — i.e. after every task spawned inside, transitively, has
    /// completed. Panics from any task are re-raised here.
    ///
    /// Must not be called from inside a task of the same runtime.
    pub fn parallel<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R + Send + 'env,
        R: Send + 'env,
    {
        let _region = self.region_lock.lock();
        let shared = &self.shared;
        debug_assert_eq!(shared.live.load(Ordering::Acquire), 0);

        let result: Mutex<Option<R>> = Mutex::new(None);
        let root_node = TaskNode::root();

        {
            // Shim: run the user closure, stash the result. Lifetime-erased;
            // sound because this function blocks until the region quiesces,
            // so the stack slot behind `result_ptr` outlives the root task.
            let result_ptr = SendPtr(&result as *const Mutex<Option<R>>);
            let shim: Box<dyn FnOnce(&ExecCtx<'_>) + Send + 'env> = Box::new(move |ec| {
                let scope = Scope::from_exec(ec);
                let r = f(&scope);
                *unsafe { &*result_ptr.get() }.lock() = Some(r);
            });
            let shim: Box<dyn FnOnce(&ExecCtx<'_>) + Send + 'static> =
                unsafe { std::mem::transmute(shim) };

            let task = Box::new(Task {
                run: Some(shim),
                node: root_node,
            });
            shared.live.store(1, Ordering::Release);
            shared.queued.fetch_add(1, Ordering::Relaxed);
            shared.injector.lock().push_back(task.into_ptr());
            shared.event.notify();

            // Wait for quiescence.
            loop {
                let epoch = shared.event.prepare();
                if shared.live.load(Ordering::Acquire) == 0 {
                    break;
                }
                shared.event.wait(epoch);
            }
        }

        if let Some(payload) = shared.panic.lock().take() {
            resume_unwind(payload);
        }
        result
            .into_inner()
            .expect("root task did not record a result")
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.event.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for Runtime {
    /// Team sized by `BOTS_NUM_THREADS` or the machine's parallelism.
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

/// The worker main loop: local pop → injector → steal rounds → park.
fn worker_loop(ctx: &WorkerCtx) {
    let shared = &*ctx.shared;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = ctx.pop_local().or_else(|| ctx.pop_injector()) {
            ctx.execute(task);
            continue;
        }
        let mut found = false;
        for _ in 0..shared.config.steal_rounds {
            if let Some(task) = ctx.try_steal() {
                ctx.execute(task);
                found = true;
                break;
            }
            for _ in 0..shared.config.spin_before_park {
                std::hint::spin_loop();
            }
        }
        if found {
            continue;
        }
        // Nothing anywhere: park until an event or the safety timeout.
        let epoch = shared.event.prepare();
        if shared.shutdown.load(Ordering::Acquire) || ctx.work_visible() {
            continue;
        }
        WorkerCounters::bump(&ctx.counters().parks);
        shared.event.wait_timeout(epoch, PARK_TIMEOUT);
    }
}
